//! Emits `BENCH_service.json`: the service runtime under a self-driving
//! load generator.
//!
//! Sweeps offered load (requests/second) against a fresh service per
//! level and records, for each level: admitted/shed counts, answered
//! throughput, client-observed p50/p99 latency, and the degradation
//! machinery's activity (degraded replies, retries, hedges, cache
//! hits). The interesting shape is the knee: below saturation the
//! service answers everything at full quality; past it, backpressure
//! sheds load with `retry_after` hints and the answers that remain
//! degrade gracefully instead of timing out.
//!
//! The request mix deliberately repeats 30% of the seeds so the moment
//! cache participates, and carries a deadline so overload converts to
//! typed sheds/degrades rather than unbounded queueing.
//!
//! ```text
//! bench_service_json [--nx N] [--ny N] [--nz N] [--workers W]
//!                    [--millis MS] [--out FILE] [--check BASELINE.json]
//! ```
//!
//! `--check BASELINE.json` turns the run into a regression gate: after
//! the sweep, the lowest-load (pre-saturation) p99 is compared against
//! the committed baseline. The process exits nonzero if it regressed
//! by more than 25% (plus a 1 ms absolute floor, so microsecond jitter
//! on a fast host cannot trip the gate). Baselines recorded on a
//! different host profile (`host_cores` mismatch) are skipped, not
//! compared — a laptop cannot fail CI against a server's numbers.

use std::fmt::Write as _;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use kpm_bench::{arg_usize, benchmark_matrix, median};
use kpm_core::kernels::Kernel;
use kpm_obs::json::num;
use kpm_service::{
    Admission, Outcome, QueryKind, Request, Service, ServiceConfig, ShutdownMode, Ticket,
};
use kpm_sparse::KpmMatrix;

/// Everything measured at one offered-load level.
struct LoadPoint {
    offered_rps: usize,
    submitted: usize,
    shed: usize,
    answered: usize,
    degraded: u64,
    retried: u64,
    hedged: u64,
    cache_hits: u64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Drives one load level against a fresh service: paced submission on
/// this thread, client-observed completion latency on a collector
/// thread polling every outstanding ticket.
fn drive(
    h: &kpm_sparse::CrsMatrix,
    sf: kpm_topo::ScaleFactors,
    workers: usize,
    offered_rps: usize,
    window: Duration,
) -> LoadPoint {
    let svc = Service::start(ServiceConfig {
        workers,
        queue_capacity: 32,
        default_deadline: Duration::from_millis(250),
        ..ServiceConfig::default()
    });
    let fp = svc.register_matrix(KpmMatrix::crs(h.clone()), sf);

    // Collector: polls outstanding tickets and timestamps each reply as
    // it lands, giving client-side latency rather than drain-time.
    let (tx, rx) = mpsc::channel::<(Ticket, Instant)>();
    let collector = std::thread::spawn(move || {
        let mut pending: Vec<(Ticket, Instant)> = Vec::new();
        let mut latencies_ms: Vec<f64> = Vec::new();
        let mut answered = 0usize;
        let mut open = true;
        while open || !pending.is_empty() {
            while let Ok(item) = rx.try_recv() {
                pending.push(item);
            }
            if let Err(mpsc::TryRecvError::Disconnected) = rx.try_recv() {
                open = false;
            }
            pending.retain(|(ticket, submitted)| match ticket.rx.try_recv() {
                Ok(resp) => {
                    latencies_ms.push(submitted.elapsed().as_secs_f64() * 1e3);
                    if !matches!(resp.outcome, Outcome::Failed(_)) {
                        answered += 1;
                    }
                    false
                }
                Err(mpsc::TryRecvError::Empty) => true,
                Err(mpsc::TryRecvError::Disconnected) => false,
            });
            std::thread::sleep(Duration::from_micros(100));
        }
        (latencies_ms, answered)
    });

    let gap = Duration::from_secs_f64(1.0 / offered_rps as f64);
    let t0 = Instant::now();
    let mut submitted = 0usize;
    let mut shed = 0usize;
    let mut next_at = t0;
    while t0.elapsed() < window {
        // 30% of requests repeat a hot seed so the cache participates.
        let seed = if submitted % 10 < 3 {
            7
        } else {
            1000 + submitted as u64
        };
        let req = Request {
            matrix: fp,
            kind: QueryKind::Dos {
                seed,
                num_random: 1,
            },
            num_moments: 64,
            kernel: Kernel::Jackson,
            points: 64,
            deadline: None,
        };
        submitted += 1;
        match svc.submit(req) {
            Admission::Admitted(t) => {
                let _ = tx.send((t, Instant::now()));
            }
            Admission::Rejected { .. } => shed += 1,
        }
        next_at += gap;
        let now = Instant::now();
        if next_at > now {
            std::thread::sleep(next_at - now);
        }
    }
    let elapsed = t0.elapsed();
    let ledger = svc.shutdown(ShutdownMode::Drain);
    drop(tx);
    let (mut latencies_ms, answered) = collector.join().expect("collector");
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    LoadPoint {
        offered_rps,
        submitted,
        shed,
        answered,
        degraded: ledger.degraded,
        retried: ledger.retried,
        hedged: ledger.hedged,
        cache_hits: ledger.cache_hits,
        throughput_rps: answered as f64 / elapsed.as_secs_f64(),
        p50_ms: quantile(&latencies_ms, 0.50),
        p99_ms: quantile(&latencies_ms, 0.99),
    }
}

/// The host profile stamped into the output: comparisons across
/// different core counts are meaningless, so the regression gate keys
/// on this.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Compares this run's pre-saturation p99 against a committed baseline.
/// Returns `Err` on a >25% regression, `Ok(false)` when the baseline is
/// not comparable (different host profile or missing fields).
fn check_baseline(baseline_path: &str, current_p99_ms: f64) -> Result<bool, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let doc = kpm_obs::json::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    use kpm_obs::json::Value;
    let base_cores = doc.get("host_cores").and_then(Value::as_f64);
    if base_cores != Some(host_cores() as f64) {
        eprintln!(
            "check: baseline host_cores {:?} != this host ({}); skipping comparison",
            base_cores,
            host_cores()
        );
        return Ok(false);
    }
    let base_p99 = doc
        .get("points")
        .and_then(Value::as_arr)
        .and_then(|pts| pts.first())
        .and_then(|p| p.get("p99_ms"))
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{baseline_path}: no points[0].p99_ms"))?;
    let limit = base_p99 * 1.25 + 1.0;
    eprintln!(
        "check: pre-saturation p99 {current_p99_ms:.3} ms vs baseline {base_p99:.3} ms \
         (limit {limit:.3} ms)"
    );
    if current_p99_ms > limit {
        return Err(format!(
            "p99 regression: {current_p99_ms:.3} ms > 1.25 x baseline {base_p99:.3} ms + 1 ms"
        ));
    }
    Ok(true)
}

fn main() {
    let nx = arg_usize("--nx", 8);
    let ny = arg_usize("--ny", 8);
    let nz = arg_usize("--nz", 4);
    let workers = arg_usize("--workers", 2);
    let millis = arg_usize("--millis", 400);
    let argv: Vec<String> = std::env::args().collect();
    let out = argv
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_service.json".to_string());
    let check = argv
        .windows(2)
        .find(|w| w[0] == "--check")
        .map(|w| w[1].clone());

    let (h, sf) = benchmark_matrix(nx, ny, nz);
    let window = Duration::from_millis(millis as u64);

    // Calibrate the sweep to this host: a quick unpaced burst bounds
    // the sustainable rate, then the sweep brackets it from well below
    // saturation to well past it.
    let base = drive(&h, sf, workers, 10_000, window / 2);
    let sustainable = base.throughput_rps.max(20.0);
    let mut sweep: Vec<usize> = [0.25, 0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|f| ((sustainable * f).round() as usize).max(5))
        .collect();
    sweep.dedup();
    eprintln!("calibration: ~{sustainable:.0} answered/s sustainable");

    let mut points: Vec<LoadPoint> = Vec::new();
    for rps in sweep {
        let p = drive(&h, sf, workers, rps, window);
        eprintln!(
            "offered {:>6}/s  answered {:>6.0}/s  shed {:>5}  degraded {:>4}  p50 {:>7.2} ms  p99 {:>7.2} ms",
            p.offered_rps, p.throughput_rps, p.shed, p.degraded, p.p50_ms, p.p99_ms
        );
        points.push(p);
    }

    // Sanity: the sweep must show real work at every level.
    let mut rates: Vec<f64> = points.iter().map(|p| p.throughput_rps).collect();
    assert!(median(&mut rates) > 0.0, "service answered nothing");

    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"schema\": \"kpm-bench-service-v3\",");
    let _ = writeln!(
        body,
        "  \"matrix\": {{\"nx\": {nx}, \"ny\": {ny}, \"nz\": {nz}, \"rows\": {}, \"nnz\": {}}},",
        h.nrows(),
        h.nnz()
    );
    let _ = writeln!(body, "  \"workers\": {workers},");
    let _ = writeln!(body, "  \"host_cores\": {},", host_cores());
    let _ = writeln!(body, "  \"window_ms\": {millis},");
    let _ = writeln!(body, "  \"moments\": 64,");
    let _ = writeln!(
        body,
        "  \"simd_compiled\": {},",
        kpm_sparse::simd::compiled()
    );
    let _ = writeln!(body, "  \"simd_lanes\": {},", kpm_sparse::simd::lanes());
    let _ = writeln!(body, "  \"first_touch\": false,");
    let _ = writeln!(body, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            body,
            "    {{\"offered_rps\": {}, \"submitted\": {}, \"shed\": {}, \"answered\": {}, \
             \"degraded\": {}, \"retried\": {}, \"hedged\": {}, \"cache_hits\": {}, \
             \"throughput_rps\": {}, \"p50_ms\": {}, \"p99_ms\": {}}}{comma}",
            p.offered_rps,
            p.submitted,
            p.shed,
            p.answered,
            p.degraded,
            p.retried,
            p.hedged,
            p.cache_hits,
            num(p.throughput_rps),
            num(p.p50_ms),
            num(p.p99_ms),
        );
    }
    let _ = writeln!(body, "  ]");
    let _ = writeln!(body, "}}");

    kpm_obs::json::parse(&body).expect("generated JSON must parse");
    std::fs::write(&out, &body).expect("write output file");
    eprintln!("wrote {out}");

    if let Some(baseline) = check {
        match check_baseline(&baseline, points[0].p99_ms) {
            Ok(true) => eprintln!("check: OK, within 25% of {baseline}"),
            Ok(false) => {}
            Err(msg) => {
                eprintln!("check: FAIL: {msg}");
                std::process::exit(1);
            }
        }
    }
}
