//! Regenerates paper Fig. 10: measured bandwidth per memory-system
//! component on the K20m for the three kernels: (a) simple SpMMV,
//! (b) augmented SpMMV without on-the-fly dots, (c) fully augmented
//! SpMMV.
//!
//! Reproduced shape: at R = 1 all kernels draw full DRAM bandwidth
//! (~150 GB/s); with growing R the DRAM bandwidth falls while L2/TEX
//! saturate — the bottleneck moves into the cache hierarchy. The fused
//! kernel (c) runs all levels at a significantly lower level
//! (instruction latency), yet still beats separate dot computation.

use kpm_bench::{arg_usize, benchmark_matrix, print_header};
use kpm_simgpu::{simulate, GpuDevice, GpuKernel};

fn main() {
    let nx = arg_usize("--nx", 64);
    let ny = arg_usize("--ny", 64);
    let nz = arg_usize("--nz", 24);
    let (h, _sf) = benchmark_matrix(nx, ny, nz);
    eprintln!("matrix: N = {}, Nnz = {}", h.nrows(), h.nnz());
    let dev = GpuDevice::k20m();
    let kernels = [
        ("(a) spmmv", GpuKernel::PlainSpmmv),
        ("(b) aug_nodot", GpuKernel::AugNoDot),
        ("(c) aug_full", GpuKernel::AugFull),
    ];
    for (label, k) in kernels {
        print_header(
            &format!("Fig. 10 {label} on K20m: bandwidth [GB/s]"),
            &["R", "TEX", "L2", "DRAM", "bottleneck", "Gflop/s"],
        );
        for r in [1usize, 8, 16, 32, 64] {
            let rep = simulate(&dev, &h, r, k);
            println!(
                "{r}\t{:.0}\t{:.0}\t{:.0}\t{:?}\t{:.1}",
                rep.timing.tex_gbs,
                rep.timing.l2_gbs,
                rep.timing.dram_gbs,
                rep.timing.bottleneck,
                rep.gflops()
            );
            println!(
                "csv,fig10,{label},{r},{},{},{},{}",
                rep.timing.tex_gbs,
                rep.timing.l2_gbs,
                rep.timing.dram_gbs,
                rep.gflops()
            );
        }
    }
}
