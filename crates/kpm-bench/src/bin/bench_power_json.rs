//! Emits `BENCH_power.json`: the memory-wall ablation of the blocked
//! augmented kernels — storage format × matrix-power depth × block
//! width. Each candidate runs `p` Chebyshev iterations per kernel call
//! (`aug_spmmv_power`), so CRS and the matrix-free stencil take the
//! level-blocked wavefront where the sliding window fits the power
//! budget, while SELL (no row view) always falls back to `p` plain
//! sweeps — the flat SELL rows are the control group.
//!
//! Every point also carries the roofline model's predicted
//! seconds-per-iteration for that (format, p) — the same score
//! [`kpm_sparse::autotune_formats`] minimizes — so the artifact shows
//! the achieved-vs-modeled gap directly: on a bandwidth-starved host
//! the `1/p` matrix-traffic divisor is worth its modeled factor, on a
//! compute-bound host the measured rates collapse onto the flop roof
//! and `model_gap` says by how much the model over-promises.
//!
//! All candidates are timed **round-robin** (one call each per rep
//! after a warm-up round; median of reps) so throughput drift hits
//! every candidate alike. The default lattice is elongated along z —
//! deep level sets keep the p = 4 window inside the power budget.
//!
//! ```text
//! bench_power_json [--nx N] [--ny N] [--nz N] [--reps K]
//!                  [--threads T] [--power-budget-mb M] [--out FILE]
//! ```
//!
//! Like the other baseline-gating artifacts, the committed
//! `BENCH_power.json` may not be stamped from a single-core host: the
//! parallel power kernels' level-blocked scheduling (and its
//! interaction with the cache budget) is exactly what the artifact
//! claims to measure, and a one-core run degenerates every candidate
//! to the serial wavefront. Scratch `--out` paths stay allowed, as
//! does `KPM_BENCH_ALLOW_SINGLE_CORE=1`.

use std::fmt::Write as _;
use std::time::Instant;

use kpm_bench::{arg_usize, guard_baseline_stamp, median};
use kpm_num::accounting::aug_spmmv_flops;
use kpm_num::BlockVector;
use kpm_obs::json::num;
use kpm_sparse::autotune::model_seconds_fmt;
use kpm_sparse::power::power_feasible;
use kpm_sparse::{autotune, autotune_formats, AutotuneEnv, FormatSpec, KpmMatrix, SparseKernels};
use kpm_topo::TopoHamiltonian;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One (format, power) pair under test.
struct Candidate {
    format: &'static str,
    p: usize,
    baseline: bool,
    m: KpmMatrix,
}

/// Median seconds per *iteration* of the parallel power kernel at
/// width `r` for every candidate, round-robin. Each candidate owns its
/// (v, w) pair — the power kernel advances the iterate in place.
fn measure_all(
    cands: &mut [Candidate],
    a: f64,
    b: f64,
    r: usize,
    threads: usize,
    reps: usize,
) -> Vec<f64> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let n = cands[0].m.nrows();
    let mut states: Vec<(BlockVector, BlockVector)> = cands
        .iter()
        .map(|_| {
            let mut rng = StdRng::seed_from_u64(44);
            (
                BlockVector::random(n, r, &mut rng),
                BlockVector::random(n, r, &mut rng),
            )
        })
        .collect();
    let mut times: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); cands.len()];
    for rep in 0..=reps {
        for (i, cand) in cands.iter().enumerate() {
            let (v, w) = &mut states[i];
            let p = cand.p;
            let secs = pool.install(|| {
                let t0 = Instant::now();
                cand.m.aug_spmmv_power_par(p, a, b, v, w);
                t0.elapsed().as_secs_f64()
            });
            if rep > 0 {
                times[i].push(secs / p as f64); // rep 0 is the warm-up round
            }
        }
    }
    times.iter_mut().map(|t| median(t)).collect()
}

fn main() {
    let nx = arg_usize("--nx", 32);
    let ny = arg_usize("--ny", 32);
    let nz = arg_usize("--nz", 160);
    let reps = arg_usize("--reps", 5).max(1);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = arg_usize("--threads", host_cores).max(1);
    let budget = arg_usize("--power-budget-mb", 8).max(1) * 1024 * 1024;
    let out = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_power.json".to_string());
    guard_baseline_stamp(&out, "BENCH_power.json", host_cores);

    let ham = TopoHamiltonian::clean(nx, ny, nz);
    let h = ham.assemble();
    let sf = kpm_topo::ScaleFactors::from_gershgorin(&h, 0.01);
    let st = ham.stencil_matrix();
    eprintln!(
        "matrix: N = {}, Nnz = {} ({:.0} MB stored), T = {threads}, host cores = {host_cores}, reps = {reps}",
        h.nrows(),
        h.nnz(),
        h.nnz() as f64 * 20.0 / 1e6
    );

    // The p = 1 baseline is the pre-existing tuner's CRS/SELL pick —
    // the bar every stencil / power candidate has to clear.
    let env = AutotuneEnv::generic(threads).with_probe_reps(3);
    let baseline = autotune(&h, &env);
    let (bc, bsigma) = match baseline.format {
        FormatSpec::Sell {
            chunk_height,
            sigma,
        } => (chunk_height, sigma),
        _ => (1, 1),
    };
    eprintln!(
        "baseline autotune (p = 1): {} (probed = {})",
        baseline.format, baseline.probed
    );

    let powers = [1usize, 2, 4];
    let mut cands: Vec<Candidate> = Vec::new();
    for &p in &powers {
        cands.push(Candidate {
            format: "crs",
            p,
            baseline: baseline.format == FormatSpec::Crs && p == 1,
            m: KpmMatrix::crs(h.clone()).with_power_budget_bytes(budget),
        });
        let spec = if bc > 1 {
            FormatSpec::Sell {
                chunk_height: bc,
                sigma: bsigma,
            }
        } else {
            FormatSpec::Sell {
                chunk_height: 8,
                sigma: 32,
            }
        };
        cands.push(Candidate {
            format: "sell",
            p,
            baseline: matches!(baseline.format, FormatSpec::Sell { .. }) && p == 1,
            m: KpmMatrix::try_with_format(h.clone(), &spec).expect("valid SELL spec"),
        });
        cands.push(Candidate {
            format: "stencil",
            p,
            baseline: false,
            m: KpmMatrix::stencil(st.clone()).with_power_budget_bytes(budget),
        });
    }

    // Per-depth predicted winner over the full three-format field, with
    // the empirical probe on — `winners` records whether the model's
    // pick matches the measured one at each (p, r).
    let predicted: Vec<(usize, &'static str)> = powers
        .iter()
        .map(|&p| {
            let c = autotune_formats(&h, &env, Some(&st), p);
            (p, c.format.name())
        })
        .collect();

    let mut lines: Vec<String> = Vec::new();
    let mut winner_lines: Vec<String> = Vec::new();
    for r in [1usize, 8] {
        let secs = measure_all(&mut cands, sf.a, sf.b, r, threads, reps);
        let flops = aug_spmmv_flops(h.nrows(), h.nnz(), r) as f64;
        for (cand, s) in cands.iter().zip(&secs) {
            let engaged = cand
                .m
                .level_set()
                .is_some_and(|l| power_feasible(l, cand.p, r, budget));
            let (stored, regen) = match cand.format {
                "stencil" => (0, 2.0),
                _ => (cand.m.stored_elements(), 1.0),
            };
            // SELL has no level-blocked kernels: it streams the matrix
            // every iteration regardless of the requested depth.
            let model_p = if cand.format == "sell" { 1 } else { cand.p };
            let modeled =
                model_seconds_fmt(h.nrows(), h.nnz(), stored, &env, bc.max(1), model_p, regen);
            let gflops = flops / s / 1e9;
            eprintln!(
                "{:<8} p={} R={r}  {:>7.2} GF/s  model_gap={:>5.2}x  wavefront={}",
                cand.format,
                cand.p,
                gflops,
                s / modeled,
                engaged
            );
            lines.push(format!(
                "    {{\"format\": \"{}\", \"p\": {}, \"r\": {}, \"beta\": {}, \"seconds_per_iter\": {}, \"gflops\": {}, \"modeled_seconds_per_iter\": {}, \"model_gap\": {}, \"wavefront\": {}, \"baseline\": {}}}",
                cand.format,
                cand.p,
                r,
                num(cand.m.beta()),
                num(*s),
                num(gflops),
                num(modeled),
                num(s / modeled),
                engaged,
                cand.baseline
            ));
        }
        for &(p, pred) in &predicted {
            let measured = cands
                .iter()
                .zip(&secs)
                .filter(|(c, _)| c.p == p)
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(c, _)| c.format)
                .unwrap_or("crs");
            winner_lines.push(format!(
                "    {{\"p\": {p}, \"r\": {r}, \"predicted\": \"{pred}\", \"measured\": \"{measured}\", \"matched\": {}}}",
                pred == measured
            ));
        }
    }

    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"schema\": \"kpm-bench-power-v3\",");
    let _ = writeln!(
        body,
        "  \"matrix\": {{\"nx\": {nx}, \"ny\": {ny}, \"nz\": {nz}, \"rows\": {}, \"nnz\": {}}},",
        h.nrows(),
        h.nnz()
    );
    let _ = writeln!(body, "  \"threads\": {threads},");
    let _ = writeln!(body, "  \"host_cores\": {host_cores},");
    let _ = writeln!(body, "  \"reps\": {reps},");
    let _ = writeln!(
        body,
        "  \"simd_compiled\": {},",
        kpm_sparse::simd::compiled()
    );
    let _ = writeln!(body, "  \"simd_lanes\": {},", kpm_sparse::simd::lanes());
    let _ = writeln!(body, "  \"first_touch\": false,");
    let _ = writeln!(body, "  \"power_budget_bytes\": {budget},");
    let _ = writeln!(
        body,
        "  \"baseline\": {{\"format\": \"{}\", \"c\": {bc}, \"sigma\": {bsigma}, \"probed\": {}}},",
        baseline.format.name(),
        baseline.probed
    );
    let _ = writeln!(body, "  \"points\": [");
    for (i, line) in lines.iter().enumerate() {
        let comma = if i + 1 < lines.len() { "," } else { "" };
        let _ = writeln!(body, "{line}{comma}");
    }
    let _ = writeln!(body, "  ],");
    let _ = writeln!(body, "  \"winners\": [");
    for (i, line) in winner_lines.iter().enumerate() {
        let comma = if i + 1 < winner_lines.len() { "," } else { "" };
        let _ = writeln!(body, "{line}{comma}");
    }
    let _ = writeln!(body, "  ]");
    let _ = writeln!(body, "}}");

    kpm_obs::json::parse(&body).expect("generated JSON must parse");
    std::fs::write(&out, &body).expect("write output file");
    eprintln!("wrote {out}");
}
