//! A loom-style deterministic schedule explorer for the hetsim
//! runtime model.
//!
//! The real `kpm-hetsim::runtime` spawns OS threads; its races cannot
//! be exhaustively tested by running it. This module re-expresses the
//! runtime's communication skeleton — channel send/recv (with
//! timeout), the out-of-order stash, the exactly-once dedup set, and
//! checkpoint version writes — as a handful of atomic operations over
//! virtual threads, then explores *every* interleaving by depth-first
//! search with state cloning, checking the protocol invariants at
//! each completed schedule:
//!
//! - **deadlock freedom**: some thread can always run until all are done;
//! - **no lost message**: every channel drains by the end;
//! - **exactly-once**: each `(from, seq)` pair sent is delivered
//!   exactly once, even when fault injection duplicates the send;
//! - **checkpoint monotonicity**: the persisted version never regresses.
//!
//! The search is deterministic: a seeded LCG shuffles the choice order
//! (so different seeds walk the tree in different orders without
//! changing the set of leaves), and an optional preemption bound
//! restricts context switches the way loom's does.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One atomic operation of a virtual thread's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push `(from, tag, seq)` into rank `to`'s inbox.
    Send { to: usize, tag: u32, seq: u64 },
    /// Blocking receive of the first inbox message with `tag`;
    /// delivers unconditionally (no dedup).
    Recv { tag: u32 },
    /// Receive with a timeout: if no matching message is queued the
    /// thread may take the timeout branch and move on. When a match
    /// *is* queued, both outcomes (deliver, spurious timeout) are
    /// explored, as in the real runtime where the message may arrive
    /// just after the deadline.
    RecvTimeout { tag: u32 },
    /// Blocking receive that runs the exactly-once filter: the
    /// message is consumed, but delivered only if `(from, seq)` was
    /// not seen before (when the dedup model is enabled).
    DedupRecv { tag: u32 },
    /// Push a copy of the thread's own `(tag, seq)` onto the shared
    /// out-of-order stash.
    StashPush { tag: u32, seq: u64 },
    /// Pop one stashed entry (blocks while the stash is empty) and
    /// deliver it through the dedup filter.
    StashPop,
    /// Write `version` to the shared checkpoint register.
    CkptWrite { version: u64 },
    /// Read the shared checkpoint register.
    CkptRead,
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Stop after this many completed interleavings (the report's
    /// `truncated` flag records whether the budget was hit).
    pub max_interleavings: usize,
    /// loom-style bound on preemptive context switches per schedule;
    /// `None` explores all schedules.
    pub preemption_bound: Option<usize>,
    /// Seed for the choice-order shuffle.
    pub seed: u64,
    /// Model the runtime's `(from, seq)` dedup set. Disabling it
    /// models a runtime without exactly-once filtering, which the
    /// checker must catch as double delivery.
    pub model_dedup: bool,
    /// Assert every sent `(from, seq)` is delivered exactly once.
    pub check_exactly_once: bool,
    /// Assert all inboxes and the stash drain by the end.
    pub check_no_lost: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_interleavings: 100_000,
            preemption_bound: None,
            seed: 0x5eed_cafe,
            model_dedup: true,
            check_exactly_once: true,
            check_no_lost: true,
        }
    }
}

/// A protocol violation found on some schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// No thread can run but some have not finished.
    Deadlock,
    /// `(from, seq)` delivered more than once.
    DoubleDelivery { from: usize, seq: u64 },
    /// `(from, seq)` sent but never delivered, or left in a queue.
    LostMessage { from: usize, seq: u64 },
    /// The checkpoint register went backwards.
    VersionRegression { prev: u64, next: u64 },
}

/// A violation plus the schedule (thread, op) steps that produced it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// What went wrong.
    pub violation: Violation,
    /// The schedule as `rank<i>: <op>` strings, in execution order.
    pub trace: Vec<String>,
}

/// Aggregate result of an exploration.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Completed schedules explored (including deadlocked ones).
    pub interleavings: usize,
    /// True when `max_interleavings` cut the search short.
    pub truncated: bool,
    /// Deadlocked schedules seen.
    pub deadlocks: usize,
    /// Schedules with a double delivery.
    pub double_deliveries: usize,
    /// Schedules with a lost message.
    pub lost_messages: usize,
    /// Checkpoint version regressions seen (counted per write).
    pub version_regressions: usize,
    /// Up to [`MAX_COUNTEREXAMPLES`] sample traces.
    pub counterexamples: Vec<Counterexample>,
}

impl Report {
    /// True when no invariant was violated on any explored schedule.
    pub fn clean(&self) -> bool {
        self.deadlocks == 0
            && self.double_deliveries == 0
            && self.lost_messages == 0
            && self.version_regressions == 0
    }
}

/// Cap on recorded counterexample traces (counters keep exact totals).
pub const MAX_COUNTEREXAMPLES: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Msg {
    from: usize,
    tag: u32,
    seq: u64,
}

/// The full model state; cloned at each branch point.
#[derive(Debug, Clone)]
struct State {
    pc: Vec<usize>,
    inbox: Vec<VecDeque<Msg>>,
    stash: VecDeque<Msg>,
    dedup: BTreeSet<(usize, u64)>,
    delivered: BTreeMap<(usize, u64), u32>,
    sent: BTreeSet<(usize, u64)>,
    ckpt: u64,
    last_thread: Option<usize>,
    preemptions: usize,
}

impl State {
    fn new(nthreads: usize) -> Self {
        State {
            pc: vec![0; nthreads],
            inbox: vec![VecDeque::new(); nthreads],
            stash: VecDeque::new(),
            dedup: BTreeSet::new(),
            delivered: BTreeMap::new(),
            sent: BTreeSet::new(),
            ckpt: 0,
            last_thread: None,
            preemptions: 0,
        }
    }
}

/// One schedulable step: run thread `t`'s next op, or take its
/// timeout branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Choice {
    Run(usize),
    Timeout(usize),
}

/// Explores every interleaving of `threads` under `cfg`.
pub fn explore(threads: &[Vec<Op>], cfg: &Config) -> Report {
    let mut report = Report::default();
    let mut state = State::new(threads.len());
    let mut trace = Vec::new();
    let mut rng = cfg.seed | 1;
    dfs(threads, cfg, &mut state, &mut trace, &mut rng, &mut report);
    report
}

fn lcg(rng: &mut u64) -> u64 {
    // Numerical Recipes LCG; quality is irrelevant, determinism is not.
    *rng = rng
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    *rng >> 33
}

fn dfs(
    threads: &[Vec<Op>],
    cfg: &Config,
    state: &mut State,
    trace: &mut Vec<String>,
    rng: &mut u64,
    report: &mut Report,
) {
    if report.interleavings >= cfg.max_interleavings {
        report.truncated = true;
        return;
    }

    let mut choices = enabled_choices(threads, state);
    if let Some(bound) = cfg.preemption_bound {
        // A switch away from a still-enabled previous thread is a
        // preemption; once at the bound, only non-preemptive choices
        // remain (the previous thread itself, or any thread when the
        // previous one is blocked/finished).
        if state.preemptions >= bound {
            if let Some(prev) = state.last_thread {
                let prev_enabled = choices.iter().any(|c| choice_thread(*c) == prev);
                if prev_enabled {
                    choices.retain(|c| choice_thread(*c) == prev);
                }
            }
        }
    }

    if choices.is_empty() {
        let done = state.pc.iter().zip(threads).all(|(&pc, p)| pc >= p.len());
        report.interleavings += 1;
        if !done {
            report.deadlocks += 1;
            record(report, Violation::Deadlock, trace);
        } else {
            check_leaf(cfg, state, trace, report);
        }
        return;
    }

    // Seeded shuffle: the leaf set is order-independent, but different
    // seeds surface counterexamples from different regions first.
    let mut order: Vec<usize> = (0..choices.len()).collect();
    for i in (1..order.len()).rev() {
        let j = (lcg(rng) as usize) % (i + 1);
        order.swap(i, j);
    }

    for &ci in &order {
        let choice = choices[ci];
        let mut next = state.clone();
        let t = choice_thread(choice);
        if let Some(prev) = state.last_thread {
            if prev != t && choices.iter().any(|c| choice_thread(*c) == prev) {
                next.preemptions += 1;
            }
        }
        let desc = step(threads, cfg, &mut next, choice, report, trace);
        trace.push(desc);
        dfs(threads, cfg, &mut next, trace, rng, report);
        trace.pop();
        if report.truncated {
            return;
        }
    }
}

fn choice_thread(c: Choice) -> usize {
    match c {
        Choice::Run(t) | Choice::Timeout(t) => t,
    }
}

/// All steps some thread can take from `state`.
fn enabled_choices(threads: &[Vec<Op>], state: &State) -> Vec<Choice> {
    let mut out = Vec::new();
    for (t, prog) in threads.iter().enumerate() {
        let Some(op) = prog.get(state.pc[t]) else {
            continue;
        };
        match op {
            Op::Send { .. } | Op::CkptWrite { .. } | Op::CkptRead | Op::StashPush { .. } => {
                out.push(Choice::Run(t));
            }
            Op::Recv { tag } | Op::DedupRecv { tag } => {
                if state.inbox[t].iter().any(|m| m.tag == *tag) {
                    out.push(Choice::Run(t));
                }
            }
            Op::RecvTimeout { tag } => {
                if state.inbox[t].iter().any(|m| m.tag == *tag) {
                    out.push(Choice::Run(t));
                }
                // The timeout branch is always enabled: the deadline
                // can fire even when a message is queued.
                out.push(Choice::Timeout(t));
            }
            Op::StashPop => {
                if !state.stash.is_empty() {
                    out.push(Choice::Run(t));
                }
            }
        }
    }
    out
}

/// Executes one step and returns its trace line.
fn step(
    threads: &[Vec<Op>],
    cfg: &Config,
    state: &mut State,
    choice: Choice,
    report: &mut Report,
    trace: &[String],
) -> String {
    let t = choice_thread(choice);
    let op = threads[t][state.pc[t]];
    state.pc[t] += 1;
    state.last_thread = Some(t);

    if let Choice::Timeout(_) = choice {
        if let Op::RecvTimeout { tag } = op {
            return format!("rank{t}: recv_timeout(tag={tag}) -> timed out");
        }
    }

    match op {
        Op::Send { to, tag, seq } => {
            state.inbox[to].push_back(Msg { from: t, tag, seq });
            state.sent.insert((t, seq));
            format!("rank{t}: send(to={to}, tag={tag}, seq={seq})")
        }
        Op::Recv { tag } | Op::RecvTimeout { tag } => {
            let msg = take_matching(&mut state.inbox[t], tag);
            deliver(cfg, state, report, trace, msg, false);
            format!(
                "rank{t}: recv(tag={tag}) -> from={} seq={}",
                msg.from, msg.seq
            )
        }
        Op::DedupRecv { tag } => {
            let msg = take_matching(&mut state.inbox[t], tag);
            deliver(cfg, state, report, trace, msg, cfg.model_dedup);
            format!(
                "rank{t}: dedup_recv(tag={tag}) -> from={} seq={}",
                msg.from, msg.seq
            )
        }
        Op::StashPush { tag, seq } => {
            state.stash.push_back(Msg { from: t, tag, seq });
            state.sent.insert((t, seq));
            format!("rank{t}: stash_push(tag={tag}, seq={seq})")
        }
        Op::StashPop => {
            // enabled_choices guarantees the stash is non-empty.
            let msg = state.stash.pop_front().unwrap_or(Msg {
                from: t,
                tag: 0,
                seq: 0,
            });
            deliver(cfg, state, report, trace, msg, cfg.model_dedup);
            format!("rank{t}: stash_pop -> from={} seq={}", msg.from, msg.seq)
        }
        Op::CkptWrite { version } => {
            if version < state.ckpt {
                report.version_regressions += 1;
                record(
                    report,
                    Violation::VersionRegression {
                        prev: state.ckpt,
                        next: version,
                    },
                    trace,
                );
            }
            state.ckpt = version;
            format!("rank{t}: ckpt_write(version={version})")
        }
        Op::CkptRead => format!("rank{t}: ckpt_read -> {}", state.ckpt),
    }
}

/// Removes and returns the first inbox message with `tag`.
/// enabled_choices guarantees one exists.
fn take_matching(inbox: &mut VecDeque<Msg>, tag: u32) -> Msg {
    let pos = inbox.iter().position(|m| m.tag == tag).unwrap_or(0);
    inbox.remove(pos).unwrap_or(Msg {
        from: usize::MAX,
        tag,
        seq: u64::MAX,
    })
}

/// Runs the delivery path, applying the dedup filter when modeled.
fn deliver(
    cfg: &Config,
    state: &mut State,
    report: &mut Report,
    trace: &[String],
    msg: Msg,
    dedup: bool,
) {
    if dedup && !state.dedup.insert((msg.from, msg.seq)) {
        return; // duplicate filtered: consumed, not delivered
    }
    let count = state.delivered.entry((msg.from, msg.seq)).or_insert(0);
    *count += 1;
    if cfg.check_exactly_once && *count == 2 {
        report.double_deliveries += 1;
        record(
            report,
            Violation::DoubleDelivery {
                from: msg.from,
                seq: msg.seq,
            },
            trace,
        );
    }
}

/// Invariant checks on a fully completed schedule.
fn check_leaf(cfg: &Config, state: &State, trace: &[String], report: &mut Report) {
    if cfg.check_no_lost {
        let leftover = state
            .inbox
            .iter()
            .flat_map(|q| q.iter())
            .chain(state.stash.iter())
            .next()
            .copied();
        let undelivered = state
            .sent
            .iter()
            .find(|key| state.delivered.get(key).copied().unwrap_or(0) == 0);
        if let Some(m) = leftover {
            report.lost_messages += 1;
            record(
                report,
                Violation::LostMessage {
                    from: m.from,
                    seq: m.seq,
                },
                trace,
            );
        } else if let Some(&(from, seq)) = undelivered {
            report.lost_messages += 1;
            record(report, Violation::LostMessage { from, seq }, trace);
        }
    }
}

fn record(report: &mut Report, violation: Violation, trace: &[String]) {
    if report.counterexamples.len() < MAX_COUNTEREXAMPLES {
        report.counterexamples.push(Counterexample {
            violation,
            trace: trace.to_vec(),
        });
    }
}

// ---------------------------------------------------------------------
// Standard models of the hetsim runtime protocol.
// ---------------------------------------------------------------------

/// Tag used for moment-exchange messages in the standard models.
pub const TAG_MOMENTS: u32 = 1;

/// The 2-rank exactly-once model: rank 0 sends `n_msgs` sequenced
/// messages to rank 1 (fault injection duplicates `dup_seq` when
/// given, as the real runtime's resend path does), rank 1 consumes
/// every physical copy through the dedup filter.
pub fn two_rank_dedup_model(n_msgs: u64, dup_seq: Option<u64>) -> Vec<Vec<Op>> {
    let mut sender = Vec::new();
    for seq in 0..n_msgs {
        sender.push(Op::Send {
            to: 1,
            tag: TAG_MOMENTS,
            seq,
        });
        if dup_seq == Some(seq) {
            sender.push(Op::Send {
                to: 1,
                tag: TAG_MOMENTS,
                seq,
            });
        }
    }
    let receiver = vec![Op::DedupRecv { tag: TAG_MOMENTS }; sender.len()];
    vec![sender, receiver]
}

/// The 3-rank pipeline: rank 0 and rank 1 each send two sequenced
/// messages to rank 2 (rank 1's first is duplicated), rank 2 consumes
/// all five physical copies through the dedup filter and checkpoints
/// after each logical delivery round.
pub fn three_rank_pipeline_model() -> Vec<Vec<Op>> {
    let r0 = vec![
        Op::Send {
            to: 2,
            tag: TAG_MOMENTS,
            seq: 0,
        },
        Op::Send {
            to: 2,
            tag: TAG_MOMENTS,
            seq: 1,
        },
    ];
    let r1 = vec![
        Op::Send {
            to: 2,
            tag: TAG_MOMENTS,
            seq: 10,
        },
        Op::Send {
            to: 2,
            tag: TAG_MOMENTS,
            seq: 10,
        }, // injected duplicate
        Op::Send {
            to: 2,
            tag: TAG_MOMENTS,
            seq: 11,
        },
    ];
    let r2 = vec![
        Op::DedupRecv { tag: TAG_MOMENTS },
        Op::DedupRecv { tag: TAG_MOMENTS },
        Op::CkptWrite { version: 1 },
        Op::DedupRecv { tag: TAG_MOMENTS },
        Op::DedupRecv { tag: TAG_MOMENTS },
        Op::DedupRecv { tag: TAG_MOMENTS },
        Op::CkptWrite { version: 2 },
    ];
    vec![r0, r1, r2]
}

/// A deadlocking protocol: both ranks receive before sending.
pub fn deadlock_model() -> Vec<Vec<Op>> {
    let r0 = vec![
        Op::Recv { tag: TAG_MOMENTS },
        Op::Send {
            to: 1,
            tag: TAG_MOMENTS,
            seq: 0,
        },
    ];
    let r1 = vec![
        Op::Recv { tag: TAG_MOMENTS },
        Op::Send {
            to: 0,
            tag: TAG_MOMENTS,
            seq: 0,
        },
    ];
    vec![r0, r1]
}

/// A lossy protocol: the receiver polls with a timeout and gives up,
/// so schedules exist where the message is never consumed.
pub fn lost_message_model() -> Vec<Vec<Op>> {
    let r0 = vec![Op::Send {
        to: 1,
        tag: TAG_MOMENTS,
        seq: 0,
    }];
    let r1 = vec![Op::RecvTimeout { tag: TAG_MOMENTS }];
    vec![r0, r1]
}

/// Two ranks racing unguarded checkpoint writes: rank 0 writes
/// versions 1 then 2, rank 1 writes version 3; interleavings exist
/// where the register regresses from 3 to 1.
pub fn racing_checkpoint_model() -> Vec<Vec<Op>> {
    let r0 = vec![Op::CkptWrite { version: 1 }, Op::CkptWrite { version: 2 }];
    let r1 = vec![Op::CkptWrite { version: 3 }];
    vec![r0, r1]
}
