//! Finding baseline ("ratchet"): a committed snapshot of accepted
//! findings that the verify gate subtracts before failing. New
//! findings — anything not in the snapshot — fail the build, so the
//! count can only ratchet down: fixing a finding and leaving its stale
//! entry behind is surfaced too, as the entry no longer matches
//! anything.
//!
//! Format is line-oriented and diff-friendly: one `rule<TAB>file<TAB>
//! message` entry per line, `#` comments and blank lines ignored.
//! Line *numbers* are deliberately excluded from the match key so an
//! unrelated edit shifting code downward does not invalidate the
//! baseline; two identical findings in one file consume two entries
//! (multiset semantics).

use std::collections::HashMap;

use crate::diag::Diagnostic;

/// One accepted finding, matched by rule + file + message.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Entry {
    /// Rule name, e.g. `panic_path`.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// The finding's message text, verbatim.
    pub message: String,
}

/// The outcome of subtracting a baseline from a scan.
#[derive(Debug)]
pub struct Applied {
    /// Findings not covered by the baseline — these fail the gate.
    pub fresh: Vec<Diagnostic>,
    /// Number of findings the baseline absorbed.
    pub matched: usize,
    /// Baseline entries that matched nothing: the underlying finding
    /// was fixed, so the entry should be deleted (ratchet down).
    pub stale: Vec<Entry>,
}

/// Parses baseline `text`; returns `Err` with a 1-based line number
/// on a malformed entry so the gate fails loudly instead of silently
/// accepting everything.
pub fn parse(text: &str) -> Result<Vec<Entry>, u32> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = raw.splitn(3, '\t');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(file), Some(message)) if !rule.trim().is_empty() => {
                entries.push(Entry {
                    rule: rule.trim().to_string(),
                    file: file.trim().to_string(),
                    message: message.to_string(),
                });
            }
            _ => return Err(i as u32 + 1),
        }
    }
    Ok(entries)
}

/// Renders `diags` as baseline text, with a header explaining the
/// contract to whoever opens the file.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "# kpm-analyze finding baseline (ratchet). One accepted finding per line:\n\
         #   rule<TAB>file<TAB>message\n\
         # The verify gate fails on any finding NOT listed here, and reports\n\
         # entries that no longer match anything so they can be deleted.\n\
         # Regenerate with: cargo run -p kpm-analyze -- --write-baseline ANALYZE_BASELINE.txt\n",
    );
    for d in diags {
        out.push_str(d.rule);
        out.push('\t');
        out.push_str(&d.file);
        out.push('\t');
        // Tabs/newlines inside a message would split the entry; the
        // renderer flattens them to spaces (parse trims nothing from
        // the message, so round-tripping such a finding still matches
        // because apply() normalizes the same way).
        out.push_str(&normalize(&d.message));
        out.push('\n');
    }
    out
}

fn normalize(msg: &str) -> String {
    msg.replace(['\t', '\n'], " ")
}

/// Subtracts `baseline` from `diags` with multiset semantics.
pub fn apply(diags: &[Diagnostic], baseline: &[Entry]) -> Applied {
    let mut budget: HashMap<&Entry, usize> = HashMap::new();
    for e in baseline {
        *budget.entry(e).or_insert(0) += 1;
    }
    let mut fresh = Vec::new();
    let mut matched = 0;
    for d in diags {
        let key = Entry {
            rule: d.rule.to_string(),
            file: d.file.clone(),
            message: normalize(&d.message),
        };
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                matched += 1;
            }
            _ => fresh.push(d.clone()),
        }
    }
    let mut stale = Vec::new();
    for (e, n) in budget {
        for _ in 0..n {
            stale.push(e.clone());
        }
    }
    stale.sort_by(|a, b| (&a.file, &a.rule, &a.message).cmp(&(&b.file, &b.rule, &b.message)));
    Applied {
        fresh,
        matched,
        stale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, line: u32, message: &str) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.into(),
            line,
            message: message.into(),
            hint: String::new(),
        }
    }

    #[test]
    fn round_trip_absorbs_findings() {
        let diags = vec![
            diag("no_panic", "a.rs", 3, "call to `.unwrap()`"),
            diag("lock_order", "b.rs", 9, "lock cycle"),
        ];
        let entries = parse(&render(&diags)).expect("parses");
        assert_eq!(entries.len(), 2);
        let applied = apply(&diags, &entries);
        assert!(applied.fresh.is_empty());
        assert_eq!(applied.matched, 2);
        assert!(applied.stale.is_empty());
    }

    #[test]
    fn line_drift_still_matches() {
        let before = diag("no_panic", "a.rs", 3, "call to `.unwrap()`");
        let entries = parse(&render(std::slice::from_ref(&before))).expect("parses");
        let after = diag("no_panic", "a.rs", 57, "call to `.unwrap()`");
        assert!(apply(&[after], &entries).fresh.is_empty());
    }

    #[test]
    fn fresh_finding_survives_and_stale_entry_reported() {
        let entries = parse("no_panic\ta.rs\tgone finding\n").expect("parses");
        let fresh = diag("det_reduce", "c.rs", 2, "non-deterministic sum");
        let applied = apply(std::slice::from_ref(&fresh), &entries);
        assert_eq!(applied.fresh.len(), 1);
        assert_eq!(applied.fresh[0].rule, "det_reduce");
        assert_eq!(applied.stale.len(), 1);
        assert_eq!(applied.stale[0].message, "gone finding");
    }

    #[test]
    fn multiset_counts_duplicates() {
        let d = diag("no_panic", "a.rs", 1, "call to `.unwrap()`");
        let entries = parse(&render(std::slice::from_ref(&d))).expect("parses");
        // Two identical findings, one baseline entry: one stays fresh.
        let applied = apply(&[d.clone(), d], &entries);
        assert_eq!(applied.matched, 1);
        assert_eq!(applied.fresh.len(), 1);
    }

    #[test]
    fn comments_and_blanks_ignored_malformed_rejected() {
        assert!(parse("# header\n\n  # more\n").expect("parses").is_empty());
        assert_eq!(parse("no tabs here\n"), Err(1));
        assert_eq!(parse("# ok\nrule_only\tfile\n"), Err(2));
    }
}
