//! A spanned AST for the Rust subset the workspace uses, produced by a
//! hand-rolled recursive-descent parser over [`crate::lexer`] tokens.
//!
//! The dataflow passes need *flow*, not token adjacency: which function
//! calls which, what runs inside a loop body or a `par_*` closure,
//! which lock is held when another is acquired. The parser therefore
//! recovers exactly that structure — items (functions, with their
//! enclosing `impl`/`trait` type), statements, and an expression tree
//! of calls, method chains, field paths, macros, closures, loops, and
//! branches — and deliberately flattens everything else (operators,
//! types, patterns) into skipped trivia.
//!
//! Tolerance is a design requirement: the lints must degrade
//! gracefully on code rustc would reject. Unknown constructs are
//! skipped token by token; delimited groups are always descended into,
//! so a call buried in an unrecognized expression is still seen.

use crate::lexer::{lex, TokKind};

/// All functions found in one source file, flattened: methods carry
/// their `impl`/`trait` type in [`FnDef::self_type`], nested `fn`
/// items appear as their own entries.
#[derive(Debug, Default)]
pub struct File {
    /// Every function with a body, in source order.
    pub fns: Vec<FnDef>,
}

/// One function definition with a parsed body.
#[derive(Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The enclosing `impl`/`trait` type, when the fn is a method.
    pub self_type: Option<String>,
    /// Whether the fn is `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace.
    pub end_line: u32,
    /// The parsed body.
    pub body: Block,
}

/// A brace-delimited block of statements.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Line of the opening brace.
    pub line: u32,
    /// Line of the closing brace.
    pub end_line: u32,
}

/// One statement: an optional `let` binding name plus the expression
/// atoms of the statement in source order. Operators between atoms are
/// dropped, so `f(x) + g(y)` is two sibling atoms.
#[derive(Debug)]
pub struct Stmt {
    /// `Some(name)` for `let name = ...` (simple lowercase bindings
    /// only; destructuring patterns yield `None`).
    pub binding: Option<String>,
    /// The statement's expression atoms.
    pub exprs: Vec<Expr>,
    /// Line on which the statement starts.
    pub line: u32,
}

/// An expression atom. Chains associate leftward: `a.b.c()` is
/// `MethodCall { recv: Field { recv: Path(a), name: b }, name: c }`.
#[derive(Debug)]
pub enum Expr {
    /// A path call `foo(..)` / `Type::foo(..)` / `a::b::foo(..)`.
    Call {
        /// Path segments, last one the called name.
        path: Vec<String>,
        /// Argument atoms (flattened across commas).
        args: Vec<Expr>,
        /// Line of the called name.
        line: u32,
    },
    /// A method call `recv.name(..)`.
    MethodCall {
        /// The receiver chain.
        recv: Box<Expr>,
        /// The method name.
        name: String,
        /// Argument atoms.
        args: Vec<Expr>,
        /// Line of the method name.
        line: u32,
    },
    /// A field access `recv.name` (also `recv[..]` as name `[]` and
    /// tuple fields as their index).
    Field {
        /// The receiver chain.
        recv: Box<Expr>,
        /// The field name.
        name: String,
        /// Line of the field name.
        line: u32,
    },
    /// A bare path `foo` / `a::b::C`.
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// Line of the first segment.
        line: u32,
    },
    /// A macro invocation `name!(..)` / `name![..]` / `name!{..}`.
    MacroCall {
        /// The macro name (last path segment).
        name: String,
        /// Atoms parsed from the macro's token stream.
        args: Vec<Expr>,
        /// Line of the macro name.
        line: u32,
    },
    /// A closure `|..| body` / `move |..| body`.
    Closure {
        /// The closure body (expression bodies are wrapped in a
        /// single-statement block).
        body: Block,
        /// Line of the opening `|`.
        line: u32,
    },
    /// A `for`/`while`/`loop` loop.
    Loop {
        /// Atoms of the loop head (iterable / condition), if any.
        head: Vec<Expr>,
        /// The loop body.
        body: Block,
        /// Line of the loop keyword.
        line: u32,
    },
    /// An `if`/`else if`/`else` chain.
    If {
        /// `(condition atoms, branch body)` per `if`/`else if` arm.
        arms: Vec<(Vec<Expr>, Block)>,
        /// The trailing `else` body, if any.
        else_arm: Option<Block>,
        /// Line of the `if` keyword.
        line: u32,
    },
    /// A `match` expression. Arms are parsed permissively: each arm's
    /// pattern, guard, and body atoms land in one block.
    Match {
        /// Scrutinee atoms.
        head: Vec<Expr>,
        /// One block per arm.
        arms: Vec<Block>,
        /// Line of the `match` keyword.
        line: u32,
    },
    /// A plain `{ .. }` / `unsafe { .. }` block in expression position
    /// (struct-literal bodies also parse as this).
    BlockExpr(Block),
    /// A parenthesized / bracketed composite `(..)` / `[..]`.
    Group {
        /// Interior atoms.
        items: Vec<Expr>,
        /// Line of the opening delimiter.
        line: u32,
    },
    /// `return`.
    Ret(u32),
    /// `break`.
    Brk(u32),
    /// `continue`.
    Cont(u32),
    /// A literal (string/char/number) — kept only so method chains on
    /// literals have a receiver.
    Lit(u32),
}

impl Expr {
    /// The atom's source line.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Path { line, .. }
            | Expr::MacroCall { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Loop { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::Group { line, .. }
            | Expr::Ret(line)
            | Expr::Brk(line)
            | Expr::Cont(line)
            | Expr::Lit(line) => *line,
            Expr::BlockExpr(b) => b.line,
        }
    }

    /// Pre-order walk over this atom and everything nested in it,
    /// including closure and loop bodies.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Call { args, .. } | Expr::MacroCall { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Field { recv, .. } => recv.walk(f),
            Expr::Closure { body, .. } => body.walk(f),
            Expr::Loop { head, body, .. } => {
                for h in head {
                    h.walk(f);
                }
                body.walk(f);
            }
            Expr::If { arms, else_arm, .. } => {
                for (cond, arm) in arms {
                    for c in cond {
                        c.walk(f);
                    }
                    arm.walk(f);
                }
                if let Some(e) = else_arm {
                    e.walk(f);
                }
            }
            Expr::Match { head, arms, .. } => {
                for h in head {
                    h.walk(f);
                }
                for a in arms {
                    a.walk(f);
                }
            }
            Expr::BlockExpr(b) => b.walk(f),
            Expr::Group { items, .. } => {
                for i in items {
                    i.walk(f);
                }
            }
            Expr::Path { .. } | Expr::Ret(_) | Expr::Brk(_) | Expr::Cont(_) | Expr::Lit(_) => {}
        }
    }

    /// Renders a receiver chain as a dotted path (`self.ledger.sent`),
    /// used to identify locks and atomics across call sites. Unknown
    /// links render as `?`.
    pub fn chain_path(&self) -> String {
        match self {
            Expr::Path { segs, .. } => segs.join("."),
            Expr::Field { recv, name, .. } => format!("{}.{}", recv.chain_path(), name),
            Expr::MethodCall { recv, name, .. } => {
                format!("{}.{}()", recv.chain_path(), name)
            }
            Expr::Call { path, .. } => path.join("::"),
            Expr::Group { .. } => "(..)".to_string(),
            _ => "?".to_string(),
        }
    }

    /// The last meaningful identifier of a receiver chain — the
    /// approximate *identity* of the lock/atomic the chain denotes
    /// (`self.inner.queue` and `inner.queue` both yield `queue`).
    pub fn chain_key(&self) -> String {
        match self {
            Expr::Path { segs, .. } => segs.last().cloned().unwrap_or_default(),
            Expr::Field { name, .. } => name.clone(),
            Expr::MethodCall { recv, .. } => recv.chain_key(),
            Expr::Call { path, .. } => path.last().cloned().unwrap_or_default(),
            _ => String::new(),
        }
    }
}

impl Block {
    /// Pre-order walk over every atom in the block.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        for s in &self.stmts {
            for e in &s.exprs {
                e.walk(f);
            }
        }
    }
}

/// Parses `src` into its flattened function list.
pub fn parse(src: &str) -> File {
    let toks = lex(src);
    let code: Vec<(TokKind, u32)> = toks
        .into_iter()
        .filter_map(|t| match t.kind {
            TokKind::LineComment(_) | TokKind::BlockComment(_) | TokKind::DocComment(_) => None,
            k => Some((k, t.line)),
        })
        .collect();
    let tree = build_tree(&code);
    let mut p = Parser { fns: Vec::new() };
    p.items(&tree, None);
    File { fns: p.fns }
}

// ---------------------------------------------------------------------
// Token tree: nesting by (), [], {} with tolerant matching.
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Node {
    Tok(TokKind, u32),
    Group(char, Vec<Node>, u32, u32),
}

impl Node {
    fn line(&self) -> u32 {
        match self {
            Node::Tok(_, l) | Node::Group(_, _, l, _) => *l,
        }
    }

    fn ident(&self) -> Option<&str> {
        match self {
            Node::Tok(TokKind::Ident(s), _) => Some(s),
            _ => None,
        }
    }

    fn is_punct(&self, c: char) -> bool {
        matches!(self, Node::Tok(TokKind::Punct(p), _) if *p == c)
    }

    fn group(&self, open: char) -> Option<(&[Node], u32, u32)> {
        match self {
            Node::Group(o, children, l, e) if *o == open => Some((children, *l, *e)),
            _ => None,
        }
    }
}

fn close_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

fn build_tree(code: &[(TokKind, u32)]) -> Vec<Node> {
    // Stack of open groups; the bottom is the top level.
    let mut stack: Vec<(char, u32, Vec<Node>)> = Vec::new();
    let mut top: Vec<Node> = Vec::new();
    for (kind, line) in code {
        match kind {
            TokKind::Punct(c @ ('(' | '[' | '{')) => {
                stack.push((*c, *line, Vec::new()));
            }
            TokKind::Punct(c @ (')' | ']' | '}')) => {
                // Close the innermost group whose delimiter matches;
                // mismatched closers are dropped (tolerance).
                if stack.last().is_some_and(|(o, _, _)| close_of(*o) == *c) {
                    let (o, l, children) = stack.pop().expect("guarded by last()");
                    let node = Node::Group(o, children, l, *line);
                    match stack.last_mut() {
                        Some((_, _, parent)) => parent.push(node),
                        None => top.push(node),
                    }
                }
            }
            k => {
                let node = Node::Tok(k.clone(), *line);
                match stack.last_mut() {
                    Some((_, _, children)) => children.push(node),
                    None => top.push(node),
                }
            }
        }
    }
    // Unterminated groups: close them all (tolerance).
    while let Some((o, l, children)) = stack.pop() {
        let end = children.last().map_or(l, Node::line);
        let node = Node::Group(o, children, l, end);
        match stack.last_mut() {
            Some((_, _, parent)) => parent.push(node),
            None => top.push(node),
        }
    }
    top
}

// ---------------------------------------------------------------------
// Item parsing.
// ---------------------------------------------------------------------

struct Parser {
    fns: Vec<FnDef>,
}

/// Skips a balanced `<...>` region starting at `i` (which points at the
/// `<`); returns the index just past the matching `>`. `>>` closes two
/// levels because the lexer emits single-char puncts.
fn skip_angles(nodes: &[Node], i: usize) -> usize {
    let mut depth = 0isize;
    let mut j = i;
    while j < nodes.len() {
        if nodes[j].is_punct('<') {
            depth += 1;
        } else if nodes[j].is_punct('>') {
            depth -= 1;
            if depth <= 0 {
                return j + 1;
            }
        } else if nodes[j].is_punct(';') {
            // Tolerance: a stray `;` means we misread a less-than.
            return j;
        }
        j += 1;
    }
    j
}

impl Parser {
    fn items(&mut self, nodes: &[Node], self_type: Option<&str>) {
        let mut i = 0;
        while i < nodes.len() {
            // Attributes: `#` [`!`] `[...]`.
            if nodes[i].is_punct('#') {
                let mut j = i + 1;
                if j < nodes.len() && nodes[j].is_punct('!') {
                    j += 1;
                }
                if j < nodes.len() && nodes[j].group('[').is_some() {
                    i = j + 1;
                    continue;
                }
            }
            let item_start = i;
            let mut is_pub = false;
            if nodes[i].ident() == Some("pub") {
                i += 1;
                if i < nodes.len() && nodes[i].group('(').is_some() {
                    i += 1; // pub(crate) / pub(super): not public API
                } else {
                    is_pub = true;
                }
            }
            let mut saw_const = false;
            while let Some(q) = nodes.get(i).and_then(Node::ident) {
                match q {
                    "const" => {
                        saw_const = true;
                        i += 1;
                    }
                    "async" | "unsafe" | "default" => i += 1,
                    "extern" => {
                        i += 1;
                        if matches!(nodes.get(i), Some(Node::Tok(TokKind::Str, _))) {
                            i += 1;
                        }
                    }
                    _ => break,
                }
            }
            match nodes.get(i).and_then(Node::ident) {
                Some("fn") => {
                    i = self.parse_fn(nodes, i, self_type, is_pub);
                }
                Some("impl") => {
                    i = self.parse_impl(nodes, i);
                }
                Some("trait") => {
                    // `trait Name: Super + Bounds { items }`
                    let name = nodes.get(i + 1).and_then(Node::ident).map(str::to_string);
                    let mut j = i + 2;
                    while j < nodes.len() {
                        if let Some((children, _, _)) = nodes[j].group('{') {
                            self.items(children, name.as_deref());
                            break;
                        }
                        if nodes[j].is_punct(';') {
                            break;
                        }
                        j += 1;
                    }
                    i = j + 1;
                }
                Some("mod") => {
                    let mut j = i + 2;
                    while j < nodes.len() {
                        if let Some((children, _, _)) = nodes[j].group('{') {
                            self.items(children, None);
                            break;
                        }
                        if nodes[j].is_punct(';') {
                            break;
                        }
                        j += 1;
                    }
                    i = j + 1;
                }
                Some("struct" | "enum" | "union") => {
                    // Skip to the body or the terminating `;`.
                    let mut j = i + 1;
                    while j < nodes.len() {
                        if nodes[j].group('{').is_some() || nodes[j].is_punct(';') {
                            break;
                        }
                        j += 1;
                    }
                    i = j + 1;
                }
                Some("macro_rules") => {
                    // `macro_rules! name { ... }`
                    let mut j = i + 1;
                    while j < nodes.len() && nodes[j].group('{').is_none() {
                        j += 1;
                    }
                    i = j + 1;
                }
                _ if saw_const || i > item_start => {
                    // A non-fn item behind qualifiers (`const X: ... = ...;`,
                    // `pub use ...;`): skip to the top-level `;`.
                    let mut j = i;
                    while j < nodes.len() && !nodes[j].is_punct(';') {
                        j += 1;
                    }
                    i = j + 1;
                }
                _ => {
                    // `static`/`type`/`use`/stray tokens with no
                    // qualifiers: same skip for item keywords, single
                    // step otherwise.
                    if matches!(
                        nodes.get(i).and_then(Node::ident),
                        Some("static" | "type" | "use")
                    ) {
                        let mut j = i;
                        while j < nodes.len() && !nodes[j].is_punct(';') {
                            j += 1;
                        }
                        i = j + 1;
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// Parses `fn name<..>(params) -> Ret where .. { body }` starting
    /// at the `fn` keyword; returns the index past the item.
    fn parse_fn(
        &mut self,
        nodes: &[Node],
        fn_kw: usize,
        self_type: Option<&str>,
        is_pub: bool,
    ) -> usize {
        let line = nodes[fn_kw].line();
        let Some(name) = nodes.get(fn_kw + 1).and_then(Node::ident) else {
            return fn_kw + 1;
        };
        let name = name.to_string();
        let mut j = fn_kw + 2;
        if nodes.get(j).is_some_and(|n| n.is_punct('<')) {
            j = skip_angles(nodes, j);
        }
        // Parameter list.
        while j < nodes.len() && nodes[j].group('(').is_none() {
            if nodes[j].is_punct(';') || nodes[j].group('{').is_some() {
                return j + 1; // malformed; tolerate
            }
            j += 1;
        }
        j += 1;
        // Signature tail: the body brace or a `;` (trait signature).
        while j < nodes.len() {
            if let Some((children, bl, el)) = nodes[j].group('{') {
                let body = self.block(children, bl, el);
                self.fns.push(FnDef {
                    name,
                    self_type: self_type.map(str::to_string),
                    is_pub,
                    line,
                    end_line: el,
                    body,
                });
                return j + 1;
            }
            if nodes[j].is_punct(';') {
                return j + 1;
            }
            j += 1;
        }
        j
    }

    /// Parses `impl<..> Type { .. }` / `impl<..> Trait for Type { .. }`
    /// starting at the `impl` keyword; returns the index past the item.
    fn parse_impl(&mut self, nodes: &[Node], impl_kw: usize) -> usize {
        let mut j = impl_kw + 1;
        if nodes.get(j).is_some_and(|n| n.is_punct('<')) {
            j = skip_angles(nodes, j);
        }
        // Collect the self type: the first path-head ident after `for`
        // if present, else the first after the generics.
        let mut ty: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut k = j;
        while k < nodes.len() {
            if let Some((children, _, _)) = nodes[k].group('{') {
                let self_type = after_for.or(ty);
                self.items(children, self_type.as_deref());
                return k + 1;
            }
            if nodes[k].is_punct(';') {
                return k + 1;
            }
            if nodes[k].is_punct('<') {
                k = skip_angles(nodes, k);
                continue;
            }
            match nodes[k].ident() {
                Some("for") => saw_for = true,
                Some("where") => {}
                Some("dyn") => {}
                Some(id) => {
                    if saw_for && after_for.is_none() {
                        after_for = Some(id.to_string());
                    } else if !saw_for && ty.is_none() {
                        ty = Some(id.to_string());
                    }
                }
                None => {}
            }
            k += 1;
        }
        k
    }

    // -----------------------------------------------------------------
    // Statement and expression parsing.
    // -----------------------------------------------------------------

    fn block(&mut self, children: &[Node], line: u32, end_line: u32) -> Block {
        let mut stmts = Vec::new();
        let mut start = 0;
        for (idx, n) in children.iter().enumerate() {
            if n.is_punct(';') {
                if idx > start {
                    stmts.push(self.stmt(&children[start..idx]));
                }
                start = idx + 1;
            }
        }
        if start < children.len() {
            stmts.push(self.stmt(&children[start..]));
        }
        Block {
            stmts,
            line,
            end_line,
        }
    }

    fn stmt(&mut self, nodes: &[Node]) -> Stmt {
        let line = nodes.first().map_or(0, Node::line);
        let mut binding = None;
        if nodes.first().and_then(Node::ident) == Some("let") {
            let mut j = 1;
            if nodes.get(j).and_then(Node::ident) == Some("mut") {
                j += 1;
            }
            if let Some(name) = nodes.get(j).and_then(Node::ident) {
                let simple = name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_lowercase() || c == '_');
                let followed = nodes
                    .get(j + 1)
                    .is_some_and(|n| n.is_punct('=') || n.is_punct(':'));
                if simple && followed {
                    binding = Some(name.to_string());
                }
            }
        }
        Stmt {
            binding,
            exprs: self.atoms(nodes),
            line,
        }
    }

    /// Parses a run of nodes into expression atoms.
    fn atoms(&mut self, nodes: &[Node]) -> Vec<Expr> {
        let mut out: Vec<Expr> = Vec::new();
        // True right after an atom completes: decides whether `|` opens
        // a closure and whether `[` indexes the previous atom.
        let mut atom_done = false;
        let mut i = 0;
        while i < nodes.len() {
            match &nodes[i] {
                Node::Tok(TokKind::Ident(id), line) => {
                    let line = *line;
                    match id.as_str() {
                        "if" => {
                            i = self.parse_if(nodes, i, line, &mut out);
                            atom_done = true;
                        }
                        "match" => {
                            i = self.parse_match(nodes, i, line, &mut out);
                            atom_done = true;
                        }
                        "for" => {
                            if nodes.get(i + 1).is_some_and(|n| n.is_punct('<')) {
                                i += 1; // HRTB `for<'a>`: type position
                            } else {
                                i = self.parse_for(nodes, i, line, &mut out);
                            }
                            atom_done = true;
                        }
                        "while" => {
                            i = self.parse_while(nodes, i, line, &mut out);
                            atom_done = true;
                        }
                        "loop" => {
                            if let Some((children, bl, el)) =
                                nodes.get(i + 1).and_then(|n| n.group('{'))
                            {
                                let body = self.block(children, bl, el);
                                out.push(Expr::Loop {
                                    head: Vec::new(),
                                    body,
                                    line,
                                });
                                i += 2;
                            } else {
                                i += 1;
                            }
                            atom_done = true;
                        }
                        "return" => {
                            out.push(Expr::Ret(line));
                            atom_done = false;
                            i += 1;
                        }
                        "break" => {
                            out.push(Expr::Brk(line));
                            atom_done = false;
                            i += 1;
                        }
                        "continue" => {
                            out.push(Expr::Cont(line));
                            atom_done = false;
                            i += 1;
                        }
                        "fn" => {
                            // Nested function item inside a body.
                            i = self.parse_fn(nodes, i, None, false);
                            atom_done = false;
                        }
                        "let" | "mut" | "ref" | "move" | "unsafe" | "as" | "dyn" | "in"
                        | "else" | "impl" | "where" | "struct" | "enum" | "trait" | "mod"
                        | "use" | "static" | "type" | "pub" | "crate" | "super" | "await" => {
                            atom_done = false;
                            i += 1;
                        }
                        _ => {
                            i = self.parse_path_like(nodes, i, &mut out);
                            atom_done = true;
                        }
                    }
                }
                Node::Tok(TokKind::Punct('.'), _) => {
                    // Chain link: method call, field, or tuple index.
                    let link = nodes.get(i + 1);
                    match link {
                        Some(Node::Tok(TokKind::Ident(name), nline)) => {
                            let nline = *nline;
                            let recv = Box::new(out.pop().unwrap_or(Expr::Lit(nline)));
                            // Turbofish between name and args.
                            let mut j = i + 2;
                            if nodes.get(j).is_some_and(|n| n.is_punct(':'))
                                && nodes.get(j + 1).is_some_and(|n| n.is_punct(':'))
                                && nodes.get(j + 2).is_some_and(|n| n.is_punct('<'))
                            {
                                j = skip_angles(nodes, j + 2);
                            }
                            if let Some((children, _, _)) = nodes.get(j).and_then(|n| n.group('('))
                            {
                                let args = self.atoms(children);
                                out.push(Expr::MethodCall {
                                    recv,
                                    name: name.clone(),
                                    args,
                                    line: nline,
                                });
                                i = j + 1;
                            } else {
                                out.push(Expr::Field {
                                    recv,
                                    name: name.clone(),
                                    line: nline,
                                });
                                i += 2;
                            }
                            atom_done = true;
                        }
                        Some(Node::Tok(TokKind::Num, nline)) => {
                            let nline = *nline;
                            let recv = Box::new(out.pop().unwrap_or(Expr::Lit(nline)));
                            out.push(Expr::Field {
                                recv,
                                name: "0".to_string(),
                                line: nline,
                            });
                            i += 2;
                            atom_done = true;
                        }
                        _ => {
                            // `..` range or stray dot.
                            atom_done = false;
                            i += 1;
                        }
                    }
                }
                Node::Tok(TokKind::Punct('|'), line) => {
                    if atom_done {
                        // Binary bit-or / pattern alternation.
                        atom_done = false;
                        i += 1;
                    } else {
                        i = self.parse_closure(nodes, i, *line, &mut out);
                        atom_done = true;
                    }
                }
                Node::Tok(TokKind::Punct('#'), _) => {
                    // Statement-level attribute: `#` [`!`] `[...]`.
                    let mut j = i + 1;
                    if nodes.get(j).is_some_and(|n| n.is_punct('!')) {
                        j += 1;
                    }
                    if nodes.get(j).is_some_and(|n| n.group('[').is_some()) {
                        i = j + 1;
                    } else {
                        i += 1;
                    }
                }
                Node::Tok(TokKind::Punct('?'), _) => {
                    i += 1; // keeps atom_done as-is: `x.f()?.g()`
                }
                Node::Tok(TokKind::Str | TokKind::Char | TokKind::Num, line) => {
                    out.push(Expr::Lit(*line));
                    atom_done = true;
                    i += 1;
                }
                Node::Tok(TokKind::Lifetime, _) => {
                    // Loop labels / bounds; a following `:` is consumed
                    // with it by the generic punct arm below.
                    atom_done = false;
                    i += 1;
                }
                Node::Tok(TokKind::Punct(_), _) => {
                    // Operator or type punctuation: atom boundary.
                    atom_done = false;
                    i += 1;
                }
                Node::Tok(_, _) => {
                    i += 1;
                }
                Node::Group('(', children, l, _) => {
                    let items = self.atoms(children);
                    out.push(Expr::Group { items, line: *l });
                    atom_done = true;
                    i += 1;
                }
                Node::Group('[', children, l, _) => {
                    let l = *l;
                    let items = self.atoms(children);
                    if atom_done {
                        // Indexing the previous atom.
                        let recv = Box::new(out.pop().unwrap_or(Expr::Lit(l)));
                        out.push(Expr::MethodCall {
                            recv,
                            name: "[]".to_string(),
                            args: items,
                            line: l,
                        });
                    } else {
                        out.push(Expr::Group { items, line: l });
                    }
                    atom_done = true;
                    i += 1;
                }
                Node::Group('{', children, l, e) => {
                    out.push(Expr::BlockExpr(self.block(children, *l, *e)));
                    atom_done = true;
                    i += 1;
                }
                Node::Group(..) => {
                    i += 1;
                }
            }
        }
        out
    }

    /// Parses a path head at `i` (`foo`, `a::b::c`, turbofish) and its
    /// call/macro continuation; returns the index past it.
    fn parse_path_like(&mut self, nodes: &[Node], i: usize, out: &mut Vec<Expr>) -> usize {
        let line = nodes[i].line();
        let mut segs = vec![nodes[i].ident().unwrap_or_default().to_string()];
        let mut j = i + 1;
        loop {
            if nodes.get(j).is_some_and(|n| n.is_punct(':'))
                && nodes.get(j + 1).is_some_and(|n| n.is_punct(':'))
            {
                if let Some(seg) = nodes.get(j + 2).and_then(Node::ident) {
                    segs.push(seg.to_string());
                    j += 3;
                    continue;
                }
                if nodes.get(j + 2).is_some_and(|n| n.is_punct('<')) {
                    j = skip_angles(nodes, j + 2);
                    continue;
                }
            }
            break;
        }
        // Macro?
        if nodes.get(j).is_some_and(|n| n.is_punct('!')) {
            let group = nodes.get(j + 1).and_then(|n| match n {
                Node::Group(_, children, _, _) => Some(children),
                _ => None,
            });
            if let Some(children) = group {
                let args = self.atoms(children);
                out.push(Expr::MacroCall {
                    name: segs.last().cloned().unwrap_or_default(),
                    args,
                    line,
                });
                return j + 2;
            }
        }
        // Call?
        if let Some((children, _, _)) = nodes.get(j).and_then(|n| n.group('(')) {
            let args = self.atoms(children);
            out.push(Expr::Call {
                path: segs,
                args,
                line,
            });
            return j + 1;
        }
        out.push(Expr::Path { segs, line });
        j
    }

    /// Parses `if cond { .. } else if cond { .. } else { .. }` at `i`.
    fn parse_if(&mut self, nodes: &[Node], i: usize, line: u32, out: &mut Vec<Expr>) -> usize {
        let mut arms = Vec::new();
        let mut else_arm = None;
        let mut j = i;
        loop {
            // At the `if` keyword: condition runs to the first
            // top-level `{` (struct literals need parens here, so this
            // matches real Rust).
            j += 1;
            let cond_start = j;
            while j < nodes.len() && nodes[j].group('{').is_none() {
                j += 1;
            }
            let cond = self.atoms(&nodes[cond_start..j.min(nodes.len())]);
            let Some((children, bl, el)) = nodes.get(j).and_then(|n| n.group('{')) else {
                out.push(Expr::If {
                    arms,
                    else_arm,
                    line,
                });
                return j;
            };
            arms.push((cond, self.block(children, bl, el)));
            j += 1;
            if nodes.get(j).and_then(Node::ident) == Some("else") {
                j += 1;
                if nodes.get(j).and_then(Node::ident) == Some("if") {
                    continue; // else-if: loop parses the next cond+arm
                }
                if let Some((children, bl, el)) = nodes.get(j).and_then(|n| n.group('{')) {
                    else_arm = Some(self.block(children, bl, el));
                    j += 1;
                }
            }
            break;
        }
        out.push(Expr::If {
            arms,
            else_arm,
            line,
        });
        j
    }

    /// Parses `match scrutinee { arms }` at `i`. Arms split at
    /// top-level commas; pattern, guard, and body atoms all land in
    /// the arm's block.
    fn parse_match(&mut self, nodes: &[Node], i: usize, line: u32, out: &mut Vec<Expr>) -> usize {
        let mut j = i + 1;
        let head_start = j;
        while j < nodes.len() && nodes[j].group('{').is_none() {
            j += 1;
        }
        let head = self.atoms(&nodes[head_start..j.min(nodes.len())]);
        let Some((children, bl, el)) = nodes.get(j).and_then(|n| n.group('{')) else {
            out.push(Expr::Match {
                head,
                arms: Vec::new(),
                line,
            });
            return j;
        };
        let mut arms = Vec::new();
        let mut start = 0;
        for (idx, n) in children.iter().enumerate() {
            if n.is_punct(',') {
                if idx > start {
                    let exprs = self.atoms(&children[start..idx]);
                    arms.push(Block {
                        stmts: vec![Stmt {
                            binding: None,
                            exprs,
                            line: children[start].line(),
                        }],
                        line: bl,
                        end_line: el,
                    });
                }
                start = idx + 1;
            }
        }
        if start < children.len() {
            let exprs = self.atoms(&children[start..]);
            arms.push(Block {
                stmts: vec![Stmt {
                    binding: None,
                    exprs,
                    line: children[start].line(),
                }],
                line: bl,
                end_line: el,
            });
        }
        out.push(Expr::Match { head, arms, line });
        j + 1
    }

    /// Parses `for pat in iterable { body }` at `i`.
    fn parse_for(&mut self, nodes: &[Node], i: usize, line: u32, out: &mut Vec<Expr>) -> usize {
        // Skip the pattern: everything up to the top-level `in`.
        let mut j = i + 1;
        while j < nodes.len() {
            if nodes[j].ident() == Some("in") {
                break;
            }
            if nodes[j].group('{').is_some() {
                // Malformed (or not actually a loop): bail out.
                out.push(Expr::Path {
                    segs: vec!["for".to_string()],
                    line,
                });
                return i + 1;
            }
            j += 1;
        }
        j += 1; // past `in`
        let head_start = j;
        while j < nodes.len() && nodes[j].group('{').is_none() {
            j += 1;
        }
        let head = self.atoms(&nodes[head_start..j.min(nodes.len())]);
        if let Some((children, bl, el)) = nodes.get(j).and_then(|n| n.group('{')) {
            let body = self.block(children, bl, el);
            out.push(Expr::Loop { head, body, line });
            return j + 1;
        }
        out.push(Expr::Loop {
            head,
            body: Block::default(),
            line,
        });
        j
    }

    /// Parses `while cond { body }` (including `while let`) at `i`.
    fn parse_while(&mut self, nodes: &[Node], i: usize, line: u32, out: &mut Vec<Expr>) -> usize {
        let mut j = i + 1;
        let head_start = j;
        while j < nodes.len() && nodes[j].group('{').is_none() {
            j += 1;
        }
        let head = self.atoms(&nodes[head_start..j.min(nodes.len())]);
        if let Some((children, bl, el)) = nodes.get(j).and_then(|n| n.group('{')) {
            let body = self.block(children, bl, el);
            out.push(Expr::Loop { head, body, line });
            return j + 1;
        }
        out.push(Expr::Loop {
            head,
            body: Block::default(),
            line,
        });
        j
    }

    /// Parses a closure starting at the opening `|` at `i`.
    fn parse_closure(&mut self, nodes: &[Node], i: usize, line: u32, out: &mut Vec<Expr>) -> usize {
        // Parameter region: to the matching top-level `|` (the lexer
        // emits `||` as two puncts, so the empty list falls out).
        let mut j = i + 1;
        while j < nodes.len() && !nodes[j].is_punct('|') {
            j += 1;
        }
        if j >= nodes.len() {
            // No closing `|`: a bitwise-or or pattern alternative, not
            // a closure. Skip the punct and let the caller continue.
            return i + 1;
        }
        j += 1; // past the closing `|`
                // Optional return type `-> T` before a block body.
        if nodes.get(j).is_some_and(|n| n.is_punct('-'))
            && nodes.get(j + 1).is_some_and(|n| n.is_punct('>'))
        {
            let mut k = j + 2;
            while k < nodes.len() && nodes[k].group('{').is_none() {
                k += 1;
            }
            j = k;
        }
        if let Some((children, bl, el)) = nodes.get(j).and_then(|n| n.group('{')) {
            let body = self.block(children, bl, el);
            out.push(Expr::Closure { body, line });
            return j + 1;
        }
        // Expression body: runs to the next top-level `,` (argument
        // separator) or the end of this node run.
        let body_start = j;
        while j < nodes.len() && !nodes[j].is_punct(',') {
            j += 1;
        }
        let exprs = self.atoms(&nodes[body_start..j.min(nodes.len())]);
        let body_line = nodes.get(body_start).map_or(line, Node::line);
        out.push(Expr::Closure {
            body: Block {
                stmts: vec![Stmt {
                    binding: None,
                    exprs,
                    line: body_line,
                }],
                line: body_line,
                end_line: nodes.get(j.saturating_sub(1)).map_or(body_line, Node::line),
            },
            line,
        });
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn first_fn(src: &str) -> FnDef {
        let mut file = parse(src);
        assert!(!file.fns.is_empty(), "no fn parsed from: {src}");
        file.fns.remove(0)
    }

    fn collect_method_names(f: &FnDef) -> Vec<String> {
        let mut names = Vec::new();
        f.body.walk(&mut |e| {
            if let Expr::MethodCall { name, .. } = e {
                names.push(name.clone());
            }
        });
        names
    }

    #[test]
    fn parses_free_fn_and_method() {
        let file = parse(
            "pub fn free(x: u32) -> u32 { x }\n\
             impl Foo { fn method(&self) {} }\n\
             impl Iterator for Bar { fn next(&mut self) -> Option<u32> { None } }",
        );
        let names: Vec<(String, Option<String>, bool)> = file
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.self_type.clone(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None, true),
                ("method".into(), Some("Foo".into()), false),
                ("next".into(), Some("Bar".into()), false),
            ]
        );
    }

    #[test]
    fn method_chains_associate_leftward() {
        let f = first_fn("fn f(xs: &[f64]) -> f64 { xs.par_iter().map(|x| x * x).sum() }");
        let names = collect_method_names(&f);
        assert!(names.contains(&"par_iter".to_string()));
        assert!(names.contains(&"map".to_string()));
        assert!(names.contains(&"sum".to_string()));
        // sum's receiver chain reaches par_iter.
        let mut found = false;
        f.body.walk(&mut |e| {
            if let Expr::MethodCall { name, recv, .. } = e {
                if name == "sum" {
                    let mut r: &Expr = recv;
                    while let Expr::MethodCall { name, recv, .. } = r {
                        if name == "par_iter" {
                            found = true;
                            break;
                        }
                        r = recv;
                    }
                }
            }
        });
        assert!(found, "sum's receiver chain should reach par_iter");
    }

    #[test]
    fn loops_and_closures_nest() {
        let f = first_fn(
            "fn f(h: &M, v: &[f64]) { for r in 0..h.n() { let acc = h.row(r); } \
             v.iter().for_each(|x| { sink(x); }); }",
        );
        let mut loops = 0;
        let mut closures = 0;
        let mut calls = Vec::new();
        f.body.walk(&mut |e| match e {
            Expr::Loop { .. } => loops += 1,
            Expr::Closure { .. } => closures += 1,
            Expr::Call { path, .. } => calls.push(path.join("::")),
            _ => {}
        });
        assert_eq!(loops, 1);
        assert_eq!(closures, 1);
        assert!(calls.contains(&"sink".to_string()));
    }

    #[test]
    fn let_bindings_and_chain_paths() {
        let f = first_fn("fn f(&self) { let g = self.inner.queue.lock(); g.push(1); }");
        assert_eq!(f.body.stmts[0].binding.as_deref(), Some("g"));
        let mut key = String::new();
        f.body.walk(&mut |e| {
            if let Expr::MethodCall { name, recv, .. } = e {
                if name == "lock" {
                    key = recv.chain_key();
                }
            }
        });
        assert_eq!(key, "queue");
    }

    #[test]
    fn if_match_while_structure() {
        let f = first_fn(
            "fn f(x: u32) -> u32 { if x > 1 { a(); } else if x == 0 { b(); } else { c(); } \
             match x { 0 => d(), _ => { e(); } } while x < 3 { g(); } x }",
        );
        let mut ifs = 0;
        let mut matches = 0;
        let mut loops = 0;
        let mut calls = Vec::new();
        f.body.walk(&mut |e| match e {
            Expr::If { arms, else_arm, .. } => {
                ifs += 1;
                assert_eq!(arms.len(), 2);
                assert!(else_arm.is_some());
            }
            Expr::Match { arms, .. } => {
                matches += 1;
                assert_eq!(arms.len(), 2);
            }
            Expr::Loop { .. } => loops += 1,
            Expr::Call { path, .. } => calls.push(path.join("::")),
            _ => {}
        });
        assert_eq!((ifs, matches, loops), (1, 1, 1));
        for c in ["a", "b", "c", "d", "e", "g"] {
            assert!(calls.contains(&c.to_string()), "missing call {c}");
        }
    }

    #[test]
    fn macros_and_path_calls() {
        let f = first_fn(
            "fn f() { let v = vec![compute(1), 2]; SellMatrix::from_crs(&v); \
             assert_eq!(helper(v), 3); }",
        );
        let mut macros = Vec::new();
        let mut calls = Vec::new();
        f.body.walk(&mut |e| match e {
            Expr::MacroCall { name, .. } => macros.push(name.clone()),
            Expr::Call { path, .. } => calls.push(path.join("::")),
            _ => {}
        });
        assert_eq!(macros, vec!["vec", "assert_eq"]);
        assert!(calls.contains(&"compute".to_string()));
        assert!(calls.contains(&"SellMatrix::from_crs".to_string()));
        assert!(calls.contains(&"helper".to_string()));
    }

    #[test]
    fn nested_fns_and_generics_tolerated() {
        let file = parse(
            "fn outer<T: Into<Vec<u8>>>(x: T) -> Result<(), E> where T: Clone {\n\
                 fn inner(y: u32) -> u32 { y.helper() }\n\
                 Ok(())\n\
             }",
        );
        let names: Vec<&str> = file.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["inner", "outer"]);
    }

    #[test]
    fn trait_default_methods_have_bodies() {
        let file =
            parse("pub trait Kernels { fn spmv(&self); fn tuned(&self) -> bool { self.probe() } }");
        assert_eq!(file.fns.len(), 1);
        assert_eq!(file.fns[0].name, "tuned");
        assert_eq!(file.fns[0].self_type.as_deref(), Some("Kernels"));
    }
}
