//! CLI for the workspace lint engine.
//!
//! ```text
//! cargo run -p kpm-analyze --              # human-readable findings
//! cargo run -p kpm-analyze -- --json       # machine-readable report
//! cargo run -p kpm-analyze -- --list-rules # rule names + summaries
//! cargo run -p kpm-analyze -- --root PATH  # scan another workspace
//! ```
//!
//! Exit status: 0 = clean, 1 = diagnostics found, 2 = usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use kpm_analyze::{lints, render_json, run_workspace};

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut root = PathBuf::from(".");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("kpm-analyze: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: kpm-analyze [--json] [--list-rules] [--root PATH]\n\
                     exit status: 0 clean, 1 diagnostics found, 2 usage/IO error"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("kpm-analyze: unknown flag `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in lints::RULES {
            println!("{:<20} {}", rule.name, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    // The scan root must look like the workspace (it needs Cargo.toml
    // at minimum) so a typo'd --root fails loudly instead of
    // reporting a clean empty scan.
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "kpm-analyze: `{}` does not contain a Cargo.toml; pass the workspace root via --root",
            root.display()
        );
        return ExitCode::from(2);
    }

    match run_workspace(&root) {
        Ok((diags, files_scanned)) => {
            if json {
                print!("{}", render_json(&diags, files_scanned));
            } else {
                for d in &diags {
                    println!("{}", d.render());
                }
                println!(
                    "kpm-analyze: {} file(s) scanned, {} diagnostic(s)",
                    files_scanned,
                    diags.len()
                );
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("kpm-analyze: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}
