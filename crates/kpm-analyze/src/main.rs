//! CLI for the workspace lint engine.
//!
//! ```text
//! cargo run -p kpm-analyze --                    # human-readable findings
//! cargo run -p kpm-analyze -- --json             # machine-readable report
//! cargo run -p kpm-analyze -- --list-rules       # rule names + summaries
//! cargo run -p kpm-analyze -- --root PATH        # scan another workspace
//! cargo run -p kpm-analyze -- --sarif PATH       # also write SARIF 2.1.0
//! cargo run -p kpm-analyze -- --baseline PATH    # subtract accepted findings
//! cargo run -p kpm-analyze -- --write-baseline PATH  # snapshot current findings
//! ```
//!
//! With `--baseline`, only findings *not* in the baseline fail the
//! gate (exit 1); entries in the baseline that no longer match any
//! finding are reported so the file ratchets down. `--sarif` writes
//! the (post-baseline) findings as a SARIF 2.1.0 document for standard
//! viewers.
//!
//! Exit status: 0 = clean, 1 = diagnostics found, 2 = usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use kpm_analyze::workspace::Report;
use kpm_analyze::{analyze_workspace, baseline, lints, render_json_report, render_sarif};

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut root = PathBuf::from(".");
    let mut sarif_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--root" | "--sarif" | "--baseline" | "--write-baseline" => {
                let Some(p) = args.next() else {
                    eprintln!("kpm-analyze: {arg} requires a path");
                    return ExitCode::from(2);
                };
                let p = PathBuf::from(p);
                match arg.as_str() {
                    "--root" => root = p,
                    "--sarif" => sarif_path = Some(p),
                    "--baseline" => baseline_path = Some(p),
                    _ => write_baseline = Some(p),
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: kpm-analyze [--json] [--list-rules] [--root PATH]\n\
                     \x20                  [--sarif PATH] [--baseline PATH] [--write-baseline PATH]\n\
                     exit status: 0 clean, 1 diagnostics found, 2 usage/IO error"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("kpm-analyze: unknown flag `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in lints::RULES {
            println!("{:<20} {}", rule.name, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    // The scan root must look like the workspace (it needs Cargo.toml
    // at minimum) so a typo'd --root fails loudly instead of
    // reporting a clean empty scan.
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "kpm-analyze: `{}` does not contain a Cargo.toml; pass the workspace root via --root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let mut report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kpm-analyze: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = write_baseline {
        let text = baseline::render(&report.diags);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("kpm-analyze: writing baseline `{}`: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "kpm-analyze: wrote {} baseline entr{} to {}",
            report.diags.len(),
            if report.diags.len() == 1 { "y" } else { "ies" },
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut stale: Vec<baseline::Entry> = Vec::new();
    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("kpm-analyze: reading baseline `{}`: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let entries = match baseline::parse(&text) {
            Ok(es) => es,
            Err(line) => {
                eprintln!(
                    "kpm-analyze: malformed baseline entry at {}:{line} \
                     (expected rule<TAB>file<TAB>message)",
                    path.display()
                );
                return ExitCode::from(2);
            }
        };
        let applied = baseline::apply(&report.diags, &entries);
        let rule_counts = lints::RULES
            .iter()
            .map(|r| {
                (
                    r.name,
                    applied.fresh.iter().filter(|d| d.rule == r.name).count(),
                )
            })
            .collect();
        report = Report {
            diags: applied.fresh,
            rule_counts,
            ..report
        };
        stale = applied.stale;
    }

    if let Some(path) = &sarif_path {
        if let Err(e) = std::fs::write(path, render_sarif(&report)) {
            eprintln!("kpm-analyze: writing SARIF `{}`: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if json {
        print!("{}", render_json_report(&report));
    } else {
        for d in &report.diags {
            println!("{}", d.render());
        }
        for e in &stale {
            println!(
                "kpm-analyze: stale baseline entry (finding fixed — delete the line): \
                 [{}] {}: {}",
                e.rule, e.file, e.message
            );
        }
        println!(
            "kpm-analyze: {} file(s) scanned, {} diagnostic(s)",
            report.files_scanned,
            report.diags.len()
        );
    }
    if report.diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
