//! A workspace-wide call graph over parsed [`crate::ast`] files.
//!
//! Resolution is name-based and deliberately over-approximate: a
//! `Type::method(..)` call links to every workspace method of that
//! name on that type, a free call links to free functions by name
//! (same file, then same crate, then workspace-wide), and a
//! `recv.method(..)` call links to every workspace method of that
//! name. Over-approximation is the safe direction for the reachability
//! passes (`panic_path`, `blocking_in_hot`); the blocklist below keeps
//! ubiquitous std names from wiring the whole workspace together.
//!
//! Test functions are never resolution targets: non-test code does not
//! call test helpers, and a name collision with one would otherwise
//! fabricate edges into `#[cfg(test)]` modules.

use std::collections::HashMap;

use crate::ast;
use crate::lints::FileClass;

/// Method names too generic to resolve by name alone — std trait
/// methods and container operations that would connect unrelated
/// types.
const METHOD_RESOLVE_BLOCKLIST: &[&str] = &[
    "abs",
    "add",
    "and_then",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "borrow",
    "borrow_mut",
    "build",
    "clamp",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "default",
    "drain",
    "drop",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "filter_map",
    "find",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_finite",
    "is_nan",
    "is_some",
    "is_none",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lock",
    "map",
    "map_err",
    "max",
    "min",
    "new",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or",
    "or_default",
    "or_else",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "powi",
    "powf",
    "push",
    "push_str",
    "read",
    "remove",
    "resize",
    "rev",
    "reverse",
    "send",
    "set",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "sqrt",
    "starts_with",
    "step_by",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "window",
    "windows",
    "write",
    "zip",
];

/// Per-file input to call-graph construction.
pub struct FileFns<'a> {
    /// Index of the file in the workspace scan order.
    pub file_idx: usize,
    /// Crate directory name (e.g. `kpm-num`).
    pub crate_name: String,
    /// The file's class.
    pub class: FileClass,
    /// Workspace-relative path, for messages.
    pub path: String,
    /// Parsed functions.
    pub ast: &'a ast::File,
    /// Per-line test flags (1-based line `l` at index `l - 1`).
    pub test_lines: &'a [bool],
}

/// One function in the workspace, flattened across files.
pub struct FnNode {
    /// Index of the owning file (into the `FileFns` slice order).
    pub file_idx: usize,
    /// Index into that file's [`ast::File::fns`].
    pub fn_idx: usize,
    /// Crate directory name.
    pub crate_name: String,
    /// Workspace-relative path of the owning file.
    pub path: String,
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type for methods.
    pub self_type: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// True for functions inside `#[cfg(test)]`/`#[test]` regions or
    /// test-class files.
    pub is_test: bool,
    /// The owning file's class.
    pub class: FileClass,
}

impl FnNode {
    /// Display name: `Type::name` for methods, `name` otherwise.
    pub fn display(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A resolved call site.
pub struct CallEdge {
    /// Index of the callee in [`CallGraph::fns`].
    pub to: usize,
    /// Line of the call site in the caller's file.
    pub line: u32,
}

/// The workspace call graph.
pub struct CallGraph {
    /// Every function, in file order.
    pub fns: Vec<FnNode>,
    /// Outgoing edges per function (parallel to `fns`).
    pub edges: Vec<Vec<CallEdge>>,
}

impl CallGraph {
    /// Builds the graph from every parsed file in the workspace.
    pub fn build(files: &[FileFns<'_>]) -> CallGraph {
        let mut fns: Vec<FnNode> = Vec::new();
        for f in files {
            for (fn_idx, d) in f.ast.fns.iter().enumerate() {
                let in_test_region = f
                    .test_lines
                    .get(d.line as usize - 1)
                    .copied()
                    .unwrap_or(false);
                fns.push(FnNode {
                    file_idx: f.file_idx,
                    fn_idx,
                    crate_name: f.crate_name.clone(),
                    path: f.path.clone(),
                    name: d.name.clone(),
                    self_type: d.self_type.clone(),
                    line: d.line,
                    is_test: f.class == FileClass::Test || in_test_region,
                    class: f.class,
                });
            }
        }

        // Resolution index: only non-test Lib/Bin functions are
        // targets — bench/example helpers are never called by product
        // code, and a name collision with one would fabricate edges.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, n) in fns.iter().enumerate() {
            if !n.is_test && matches!(n.class, FileClass::Lib | FileClass::Bin) {
                by_name.entry(n.name.as_str()).or_default().push(i);
            }
        }

        let file_of: HashMap<usize, &FileFns<'_>> = files.iter().map(|f| (f.file_idx, f)).collect();
        let crate_names: Vec<String> = files
            .iter()
            .map(|f| f.crate_name.replace('-', "_"))
            .collect();

        let mut edges: Vec<Vec<CallEdge>> = (0..fns.len()).map(|_| Vec::new()).collect();
        for (caller, node) in fns.iter().enumerate() {
            let file = file_of[&node.file_idx];
            let def = &file.ast.fns[node.fn_idx];
            let mut out: Vec<CallEdge> = Vec::new();
            def.body.walk(&mut |e| {
                resolve_site(e, node, &fns, &by_name, &crate_names, &mut out);
            });
            // Dedup (to) keeping the first (earliest) site.
            out.sort_by_key(|e| (e.to, e.line));
            out.dedup_by_key(|e| e.to);
            edges[caller] = out;
        }

        CallGraph { fns, edges }
    }

    /// Breadth-first reachability from the seed functions.
    pub fn reachable(&self, seeds: impl IntoIterator<Item = usize>) -> Vec<bool> {
        let mut seen = vec![false; self.fns.len()];
        let mut queue: Vec<usize> = seeds.into_iter().collect();
        for &s in &queue {
            seen[s] = true;
        }
        while let Some(f) = queue.pop() {
            for e in &self.edges[f] {
                if !seen[e.to] {
                    seen[e.to] = true;
                    queue.push(e.to);
                }
            }
        }
        seen
    }

    /// Index of the function defined at `(file_idx, fn_idx)`.
    pub fn find(&self, file_idx: usize, fn_idx: usize) -> Option<usize> {
        self.fns
            .iter()
            .position(|n| n.file_idx == file_idx && n.fn_idx == fn_idx)
    }
}

/// Resolves one expression atom into call edges, if it is a call.
fn resolve_site(
    e: &ast::Expr,
    caller: &FnNode,
    fns: &[FnNode],
    by_name: &HashMap<&str, Vec<usize>>,
    crate_names: &[String],
    out: &mut Vec<CallEdge>,
) {
    match e {
        ast::Expr::Call { path, line, .. } => {
            let Some(name) = path.last() else { return };
            let Some(cands) = by_name.get(name.as_str()) else {
                return;
            };
            let qual = path.len().checked_sub(2).map(|i| path[i].as_str());
            match qual {
                // `Type::method(..)` — an uppercase qualifier names the
                // impl type exactly.
                Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                    for &c in cands {
                        if fns[c].self_type.as_deref() == Some(q) {
                            out.push(CallEdge { to: c, line: *line });
                        }
                    }
                }
                // `self::f` / `crate::f` / `module::f` / `kpm_num::f` —
                // free functions; a crate-name qualifier restricts to
                // that crate, `crate`/`self`/`super` to the caller's.
                Some(q) => {
                    let target_crate = if q == "crate" || q == "self" || q == "super" {
                        Some(caller.crate_name.replace('-', "_"))
                    } else if crate_names.iter().any(|c| c == q) {
                        Some(q.to_string())
                    } else {
                        None
                    };
                    for &c in cands {
                        let n = &fns[c];
                        if n.self_type.is_some() {
                            continue;
                        }
                        if let Some(tc) = &target_crate {
                            if n.crate_name.replace('-', "_") != *tc {
                                continue;
                            }
                        }
                        out.push(CallEdge { to: c, line: *line });
                    }
                }
                // Unqualified `f(..)` — same file, then same crate,
                // then any free fn (covers `use`-imported names).
                None => {
                    let free: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&c| fns[c].self_type.is_none())
                        .collect();
                    let same_file: Vec<usize> = free
                        .iter()
                        .copied()
                        .filter(|&c| fns[c].file_idx == caller.file_idx)
                        .collect();
                    let same_crate: Vec<usize> = free
                        .iter()
                        .copied()
                        .filter(|&c| fns[c].crate_name == caller.crate_name)
                        .collect();
                    let tier = if !same_file.is_empty() {
                        same_file
                    } else if !same_crate.is_empty() {
                        same_crate
                    } else {
                        free
                    };
                    for c in tier {
                        out.push(CallEdge { to: c, line: *line });
                    }
                }
            }
        }
        ast::Expr::MethodCall { name, line, .. } => {
            if METHOD_RESOLVE_BLOCKLIST.contains(&name.as_str()) {
                return;
            }
            let Some(cands) = by_name.get(name.as_str()) else {
                return;
            };
            let methods: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| fns[c].self_type.is_some())
                .collect();
            let same_crate: Vec<usize> = methods
                .iter()
                .copied()
                .filter(|&c| fns[c].crate_name == caller.crate_name)
                .collect();
            let tier = if !same_crate.is_empty() {
                same_crate
            } else {
                methods
            };
            for c in tier {
                out.push(CallEdge { to: c, line: *line });
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;

    fn graph_one(src: &str) -> CallGraph {
        let file = parse(src);
        let test_lines = vec![false; 512];
        let files = vec![FileFns {
            file_idx: 0,
            crate_name: "kpm-num".to_string(),
            class: FileClass::Lib,
            path: "crates/kpm-num/src/x.rs".to_string(),
            ast: &file,
            test_lines: &test_lines,
        }];
        CallGraph::build(&files)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn free_calls_link_within_file() {
        let g = graph_one("fn a() { b(); }\nfn b() {}\n");
        let (a, b) = (idx(&g, "a"), idx(&g, "b"));
        assert!(g.edges[a].iter().any(|e| e.to == b));
        assert!(g.edges[b].is_empty());
    }

    #[test]
    fn qualified_type_calls_resolve_to_methods() {
        let g = graph_one(
            "struct S;\nimpl S { fn go(&self) { helper(); } }\nfn helper() {}\nfn top() { S::go(); }\n",
        );
        let (top, go, helper) = (idx(&g, "top"), idx(&g, "go"), idx(&g, "helper"));
        assert!(g.edges[top].iter().any(|e| e.to == go));
        assert!(g.edges[go].iter().any(|e| e.to == helper));
        let reach = g.reachable([top]);
        assert!(reach[helper]);
    }

    #[test]
    fn blocklisted_method_names_do_not_link() {
        let g = graph_one("struct S;\nimpl S { fn clone(&self) { danger(); } }\nfn danger() {}\nfn top(s: S) { s.clone(); }\n");
        let top = idx(&g, "top");
        assert!(g.edges[top].is_empty(), "clone must not resolve by name");
    }

    #[test]
    fn method_calls_resolve_by_name() {
        let g =
            graph_one("struct S;\nimpl S { fn solve(&self) {} }\nfn top(s: S) { s.solve(); }\n");
        let (top, solve) = (idx(&g, "top"), idx(&g, "solve"));
        assert!(g.edges[top].iter().any(|e| e.to == solve));
    }

    #[test]
    fn test_fns_are_not_targets() {
        let file = parse("fn a() { helper(); }\nfn helper() {}\n");
        let mut test_lines = vec![false; 8];
        test_lines[1] = true; // line 2: helper is in a test region
        let files = vec![FileFns {
            file_idx: 0,
            crate_name: "kpm-num".to_string(),
            class: FileClass::Lib,
            path: "x.rs".to_string(),
            ast: &file,
            test_lines: &test_lines,
        }];
        let g = CallGraph::build(&files);
        let a = g.fns.iter().position(|f| f.name == "a").unwrap();
        assert!(g.edges[a].is_empty());
    }

    #[test]
    fn crate_qualified_calls_restrict_to_that_crate() {
        let f1 = parse("fn shared() {}\n");
        let f2 = parse("fn shared() {}\nfn top() { kpm_num::shared(); }\n");
        let t = vec![false; 16];
        let files = vec![
            FileFns {
                file_idx: 0,
                crate_name: "kpm-num".to_string(),
                class: FileClass::Lib,
                path: "a.rs".to_string(),
                ast: &f1,
                test_lines: &t,
            },
            FileFns {
                file_idx: 1,
                crate_name: "kpm-core".to_string(),
                class: FileClass::Lib,
                path: "b.rs".to_string(),
                ast: &f2,
                test_lines: &t,
            },
        ];
        let g = CallGraph::build(&files);
        let top = g.fns.iter().position(|f| f.name == "top").unwrap();
        assert_eq!(g.edges[top].len(), 1);
        let callee = &g.fns[g.edges[top][0].to];
        assert_eq!(callee.crate_name, "kpm-num");
    }
}
