//! Per-function control-flow graphs over the [`crate::ast`] tree.
//!
//! The lock-order pass needs path sensitivity the AST alone cannot
//! give: a `MutexGuard` bound by `let` lives until its lexical scope
//! ends, branch arms must not leak held-lock facts into each other,
//! and loop bodies feed back into themselves. The CFG models exactly
//! that and nothing more — straight-line blocks of expression atoms,
//! branch/loop/return edges, and explicit [`Node::ScopeEnd`] markers
//! where `let`-bound values (lock guards) die.
//!
//! Nested control flow *inside* a single atom (e.g. an `if` buried in
//! a call argument) is not split into blocks; passes walk the atom and
//! treat it as one step. That over-approximates ordering within a
//! statement, which is the conservative direction for deadlock
//! detection.

use crate::ast::{Block, Expr, FnDef};

/// One step inside a basic block.
pub enum Node<'a> {
    /// Evaluate an expression atom.
    Expr {
        /// The atom (passes walk into it for nested calls/chains).
        expr: &'a Expr,
        /// Lexical scope owning any value the atom produces.
        scope: u32,
        /// True when the enclosing statement `let`-binds the value —
        /// a lock guard acquired here is held until the scope ends;
        /// unbound guards are temporaries dropped at statement end.
        bound: bool,
        /// The `let` binding's name when it is a simple identifier,
        /// so an explicit `drop(name)` can release the value early.
        name: Option<&'a str>,
    },
    /// The given lexical scope ends; `let`-bound values it owns die.
    ScopeEnd(u32),
}

/// A basic block: straight-line nodes plus successor edges.
#[derive(Default)]
pub struct BasicBlock<'a> {
    /// Steps executed in order.
    pub nodes: Vec<Node<'a>>,
    /// Indices of successor blocks.
    pub succs: Vec<usize>,
}

/// A function CFG. Block `0` is the entry, block `1` the single exit.
pub struct Cfg<'a> {
    /// All basic blocks; unreachable blocks may exist after `return`.
    pub blocks: Vec<BasicBlock<'a>>,
}

/// Index of the entry block.
pub const ENTRY: usize = 0;
/// Index of the exit block.
pub const EXIT: usize = 1;

impl<'a> Cfg<'a> {
    /// Builds the CFG for one function body.
    pub fn build(f: &'a FnDef) -> Cfg<'a> {
        let mut b = Builder {
            blocks: vec![BasicBlock::default(), BasicBlock::default()],
            next_scope: 0,
            loops: Vec::new(),
        };
        let last = b.block(&f.body, ENTRY);
        b.edge(last, EXIT);
        Cfg { blocks: b.blocks }
    }

    /// Blocks in reverse postorder from the entry — a good iteration
    /// order for forward dataflow fixpoints.
    pub fn rpo(&self) -> Vec<usize> {
        let n = self.blocks.len();
        let mut seen = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with an explicit edge cursor per frame.
        let mut stack = vec![(ENTRY, 0usize)];
        seen[ENTRY] = true;
        while let Some(&mut (bb, ref mut cursor)) = stack.last_mut() {
            if let Some(&s) = self.blocks[bb].succs.get(*cursor) {
                *cursor += 1;
                if !seen[s] {
                    seen[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(bb);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

struct Builder<'a> {
    blocks: Vec<BasicBlock<'a>>,
    next_scope: u32,
    /// Stack of enclosing loops as `(continue_target, break_target)`.
    loops: Vec<(usize, usize)>,
}

impl<'a> Builder<'a> {
    fn fresh(&mut self) -> usize {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn scope(&mut self) -> u32 {
        self.next_scope += 1;
        self.next_scope
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Lowers a `{ .. }` block: opens a fresh scope, lowers each
    /// statement, ends the scope. Returns the block the control flow
    /// falls out of.
    fn block(&mut self, b: &'a Block, mut cur: usize) -> usize {
        let sc = self.scope();
        for stmt in &b.stmts {
            let bound = stmt.binding.is_some();
            let name = stmt.binding.as_deref();
            for e in &stmt.exprs {
                cur = self.expr(e, cur, sc, bound, name);
            }
        }
        self.blocks[cur].nodes.push(Node::ScopeEnd(sc));
        cur
    }

    /// Lowers one expression atom, splitting blocks at control flow.
    fn expr(
        &mut self,
        e: &'a Expr,
        cur: usize,
        scope: u32,
        bound: bool,
        name: Option<&'a str>,
    ) -> usize {
        match e {
            Expr::If { arms, else_arm, .. } => {
                // Conditions evaluate before the branch; an `if let`
                // that acquires a lock in its condition holds it
                // across the arms, so condition values live in a
                // scope that ends at the join.
                let head_sc = self.scope();
                let mut pre = cur;
                for (cond, _) in arms {
                    for c in cond {
                        pre = self.expr(c, pre, head_sc, true, None);
                    }
                }
                let join = self.fresh();
                for (_, arm) in arms {
                    let entry = self.fresh();
                    self.edge(pre, entry);
                    let out = self.block(arm, entry);
                    self.edge(out, join);
                }
                if let Some(arm) = else_arm {
                    let entry = self.fresh();
                    self.edge(pre, entry);
                    let out = self.block(arm, entry);
                    self.edge(out, join);
                } else {
                    self.edge(pre, join);
                }
                self.blocks[join].nodes.push(Node::ScopeEnd(head_sc));
                join
            }
            Expr::Match { head, arms, .. } => {
                let head_sc = self.scope();
                let mut pre = cur;
                for h in head {
                    pre = self.expr(h, pre, head_sc, true, None);
                }
                let join = self.fresh();
                if arms.is_empty() {
                    self.edge(pre, join);
                }
                for arm in arms {
                    let entry = self.fresh();
                    self.edge(pre, entry);
                    let out = self.block(arm, entry);
                    self.edge(out, join);
                }
                self.blocks[join].nodes.push(Node::ScopeEnd(head_sc));
                join
            }
            Expr::Loop { head, body, .. } => {
                // head block <-> body, with a break target after.
                let head_bb = self.fresh();
                let exit_bb = self.fresh();
                let head_sc = self.scope();
                self.edge(cur, head_bb);
                // A `while let Ok(g) = m.lock()` head re-binds (and so
                // re-acquires) each iteration: the previous iteration's
                // head values die when control returns to the head.
                self.blocks[head_bb].nodes.push(Node::ScopeEnd(head_sc));
                let mut h = head_bb;
                for e in head {
                    h = self.expr(e, h, head_sc, true, None);
                }
                let body_entry = self.fresh();
                self.edge(h, body_entry);
                self.edge(h, exit_bb); // condition false / iterator done
                self.loops.push((head_bb, exit_bb));
                let body_out = self.block(body, body_entry);
                self.loops.pop();
                self.edge(body_out, head_bb); // back edge
                self.blocks[exit_bb].nodes.push(Node::ScopeEnd(head_sc));
                exit_bb
            }
            Expr::BlockExpr(b) => self.block(b, cur),
            Expr::Closure { body, .. } => {
                // Inline the body: workspace closures are iterator and
                // scope bodies that run where they are written; for
                // lock analysis, executing "here" is the conservative
                // assumption.
                self.block(body, cur)
            }
            Expr::Ret(_) => {
                self.edge(cur, EXIT);
                self.fresh() // unreachable continuation
            }
            Expr::Brk(_) => {
                let target = self.loops.last().map_or(EXIT, |&(_, brk)| brk);
                self.edge(cur, target);
                self.fresh()
            }
            Expr::Cont(_) => {
                let target = self.loops.last().map_or(EXIT, |&(cont, _)| cont);
                self.edge(cur, target);
                self.fresh()
            }
            _ => {
                self.blocks[cur].nodes.push(Node::Expr {
                    expr: e,
                    scope,
                    bound,
                    name,
                });
                cur
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;

    fn cfg_of(src: &str) -> (crate::ast::File, usize) {
        let file = parse(src);
        assert_eq!(file.fns.len(), 1, "fixture must define one fn");
        (file, 0)
    }

    #[test]
    fn straight_line_fn_is_entry_to_exit() {
        let (file, i) = cfg_of("fn f() { a(); b(); }");
        let cfg = Cfg::build(&file.fns[i]);
        assert!(cfg.blocks[ENTRY].succs.contains(&EXIT));
        let exprs = cfg.blocks[ENTRY]
            .nodes
            .iter()
            .filter(|n| matches!(n, Node::Expr { .. }))
            .count();
        assert_eq!(exprs, 2);
    }

    #[test]
    fn if_else_branches_and_rejoins() {
        let (file, i) = cfg_of("fn f() { if c() { a(); } else { b(); } d(); }");
        let cfg = Cfg::build(&file.fns[i]);
        // Entry must have two successors (two arms) and both arms must
        // rejoin at a block that eventually reaches EXIT.
        assert_eq!(cfg.blocks[ENTRY].succs.len(), 2);
        let rpo = cfg.rpo();
        assert!(rpo.contains(&EXIT));
    }

    #[test]
    fn loop_has_back_edge_and_break_target() {
        let (file, i) = cfg_of("fn f() { while c() { if d() { break; } a(); } b(); }");
        let cfg = Cfg::build(&file.fns[i]);
        // Some block must loop back to an earlier block.
        let back = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(b, blk)| blk.succs.iter().any(|&s| s != EXIT && s <= b));
        assert!(back, "expected a back edge");
        assert!(cfg.rpo().contains(&EXIT));
    }

    #[test]
    fn return_edges_to_exit_block() {
        let (file, i) = cfg_of("fn f() { if c() { return; } a(); }");
        let cfg = Cfg::build(&file.fns[i]);
        // The return arm's block must list EXIT as successor.
        let ret_edges = cfg
            .blocks
            .iter()
            .filter(|b| b.succs.contains(&EXIT))
            .count();
        assert!(ret_edges >= 2, "return arm and fall-through both exit");
    }

    #[test]
    fn let_bound_atoms_are_marked_bound() {
        let (file, i) = cfg_of("fn f() { let g = m.lock(); use_it(g); }");
        let cfg = Cfg::build(&file.fns[i]);
        let mut bound_seen = false;
        let mut unbound_seen = false;
        for blk in &cfg.blocks {
            for n in &blk.nodes {
                if let Node::Expr { bound, .. } = n {
                    if *bound {
                        bound_seen = true;
                    } else {
                        unbound_seen = true;
                    }
                }
            }
        }
        assert!(bound_seen && unbound_seen);
    }

    #[test]
    fn scopes_end_in_innermost_block() {
        let (file, i) = cfg_of("fn f() { { let g = m.lock(); } a(); }");
        let cfg = Cfg::build(&file.fns[i]);
        let scope_ends = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.nodes)
            .filter(|n| matches!(n, Node::ScopeEnd(_)))
            .count();
        // Inner block scope + fn body scope.
        assert!(scope_ends >= 2);
    }
}
