//! SARIF 2.1.0 export: renders a [`crate::workspace::Report`] as a
//! Static Analysis Results Interchange Format document so findings
//! plug into standard viewers (GitHub code scanning, VS Code SARIF
//! panels) without a bespoke adapter. Hand-rolled like the rest of the
//! crate's JSON — the workspace is offline, so no serde.
//!
//! The document carries one run: the tool driver lists every
//! registered rule (id + short description) and each diagnostic
//! becomes an error-level `result` with a single physical location.
//! `scripts/verify.sh` writes this to `target/kpm-analyze.sarif` on
//! every gate run.

use std::fmt::Write as _;

use crate::diag::json_escape;
use crate::lints::RULES;
use crate::workspace::Report;

/// Renders `report` as a complete SARIF 2.1.0 document.
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"kpm-analyze\",\n");
    out.push_str("          \"rules\": [");
    for (i, rule) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            json_escape(rule.name),
            json_escape(rule.summary)
        );
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, d) in report.diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \
             \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            \
             {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}\n          ]\n        }}",
            json_escape(d.rule),
            json_escape(&d.message),
            json_escape(&d.file),
            d.line.max(1)
        );
    }
    if !report.diags.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    fn report(diags: Vec<Diagnostic>) -> Report {
        Report {
            diags,
            files_scanned: 1,
            rule_counts: Vec::new(),
            passes: Vec::new(),
        }
    }

    #[test]
    fn sarif_document_shape() {
        let doc = render_sarif(&report(vec![Diagnostic {
            rule: "lock_order",
            file: "crates/x/src/lib.rs".into(),
            line: 12,
            message: "lock cycle \"a\" -> \"b\"".into(),
            hint: String::new(),
        }]));
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("sarif-2.1.0.json"));
        assert!(doc.contains("\"ruleId\": \"lock_order\""));
        assert!(doc.contains("\"startLine\": 12"));
        assert!(doc.contains("\"uri\": \"crates/x/src/lib.rs\""));
        // Escaped message survives round-tripping through the writer.
        assert!(doc.contains("lock cycle \\\"a\\\" -> \\\"b\\\""));
        // Every registered rule is described in the driver block.
        for rule in RULES {
            assert!(doc.contains(&format!("\"id\": \"{}\"", rule.name)));
        }
    }

    #[test]
    fn empty_results_array_is_valid() {
        let doc = render_sarif(&report(Vec::new()));
        assert!(doc.contains("\"results\": []"));
    }
}
