//! A minimal hand-rolled Rust lexer, sufficient for token-level lints.
//!
//! The lint engine does not need a full grammar — it needs to walk the
//! token stream without being fooled by the places where naive text
//! matching breaks: string literals (`"// not a comment"`), raw strings
//! (`r#".unwrap()"#`), char literals vs. lifetimes (`'a'` vs. `'a`),
//! nested block comments, and doc comments. This lexer handles exactly
//! those, and records line spans so the rules can reason about comment
//! adjacency (`// SAFETY:` placement, suppression markers).

/// What a token is. Literal payloads are dropped — the rules only care
/// about identifiers, punctuation, and comment text.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// A single punctuation character (`.`, `!`, `{`, ...).
    Punct(char),
    /// Any string-like literal (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// A numeric literal.
    Num,
    /// A non-doc `//` comment; payload is the text after the slashes.
    LineComment(String),
    /// A non-doc `/* */` comment; payload is the interior text.
    BlockComment(String),
    /// A doc comment (`///`, `//!`, `/** */`, `/*! */`).
    DocComment(String),
}

/// One lexed token with its (1-based) line span.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token kind (and payload where the rules need it).
    pub kind: TokKind,
    /// 1-based line on which the token starts.
    pub line: u32,
    /// 1-based line on which the token ends (differs from `line` only
    /// for multi-line block comments and string literals).
    pub end_line: u32,
}

/// Lexes `src` into a token stream. Unterminated literals or comments
/// are tolerated (the remainder of the file becomes one token): the
/// lints must degrade gracefully, not crash, on code rustc would
/// reject anyway.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking the line counter.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, start_line: u32) {
        self.out.push(Token {
            kind,
            line: start_line,
            end_line: self.line,
        });
    }

    fn run(mut self) -> Vec<Token> {
        // A shebang (`#!/usr/bin/env ...`) is only special as the very
        // first bytes of the file, and only when it is not the start of
        // an inner attribute (`#![...]`). Skip the whole line so the
        // token table starts in sync on line 2.
        if self.peek(0) == Some('#') && self.peek(1) == Some('!') && self.peek(2) != Some('[') {
            while let Some(c) = self.bump() {
                if c == '\n' {
                    break;
                }
            }
        }
        while let Some(c) = self.peek(0) {
            let start = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(start),
                '/' if self.peek(1) == Some('*') => self.block_comment(start),
                '"' => self.string_literal(start),
                '\'' => self.char_or_lifetime(start),
                c if c.is_ascii_digit() => self.number(start),
                c if c.is_alphabetic() || c == '_' => self.ident(start),
                c => {
                    self.bump();
                    self.push(TokKind::Punct(c), start);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, start: u32) {
        self.bump();
        self.bump(); // consume `//`
                     // `///` (but not `////...`) and `//!` are doc comments.
        let doc = match (self.peek(0), self.peek(1)) {
            (Some('/'), Some('/')) => false,
            (Some('/'), _) | (Some('!'), _) => true,
            _ => false,
        };
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        let kind = if doc {
            TokKind::DocComment(text)
        } else {
            TokKind::LineComment(text)
        };
        self.push(kind, start);
    }

    fn block_comment(&mut self, start: u32) {
        self.bump();
        self.bump(); // consume `/*`
                     // `/**` (but not `/***` or the degenerate `/**/`) and `/*!`.
        let doc = match (self.peek(0), self.peek(1)) {
            (Some('*'), Some('*')) | (Some('*'), Some('/')) => false,
            (Some('*'), _) | (Some('!'), _) => true,
            _ => false,
        };
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        let kind = if doc {
            TokKind::DocComment(text)
        } else {
            TokKind::BlockComment(text)
        };
        self.push(kind, start);
    }

    /// A plain `"…"` string with escape handling.
    fn string_literal(&mut self, start: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, start);
    }

    /// A raw string `r"…"` / `r#"…"#` with `hashes` leading `#`s; the
    /// `r` (or `br`/`cr`) prefix and the hashes are already consumed.
    fn raw_string_tail(&mut self, start: u32, hashes: usize) {
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Str, start);
    }

    /// Distinguishes `'a'` (char) from `'a` (lifetime): after the
    /// quote, an escape or a `<char>'` pair is a char literal; an
    /// identifier head without a closing quote is a lifetime.
    fn char_or_lifetime(&mut self, start: u32) {
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: skip the escape, then scan to
                // the closing quote (covers \u{…} and \x…).
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, start);
            }
            Some(c) if (c.is_alphanumeric() || c == '_') && self.peek(1) != Some('\'') => {
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, start);
            }
            _ => {
                // `'x'`, `'0'`, `' '`, `'('`, ...
                self.bump();
                self.bump(); // closing quote
                self.push(TokKind::Char, start);
            }
        }
    }

    fn number(&mut self, start: u32) {
        // Integer part (also covers 0x/0b/0o and suffixes like u64).
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        // Fraction — only when followed by a digit, so `0..n` stays
        // three tokens and `x.0.clone()` keeps its dots.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent sign (`1e-3`): the trailing `e` was consumed above.
        if (self.peek(0) == Some('-') || self.peek(0) == Some('+'))
            && self
                .chars
                .get(self.pos.wrapping_sub(1))
                .is_some_and(|c| *c == 'e' || *c == 'E')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.push(TokKind::Num, start);
    }

    fn ident(&mut self, start: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String-literal prefixes: r"…", r#"…"#, b"…", br#"…"#, c"…",
        // and the byte-char b'…'.
        let is_prefix = matches!(name.as_str(), "r" | "b" | "br" | "c" | "cr" | "rb");
        if is_prefix {
            match self.peek(0) {
                Some('"') => {
                    self.string_literal(start);
                    return;
                }
                // Raw identifier `r#type`: keep the `r#` in the payload
                // so rules never confuse it with the bare keyword
                // (`r#loop` is a variable, not a loop head).
                Some('#')
                    if name == "r"
                        && self.peek(1).is_some_and(|c| c.is_alphabetic() || c == '_') =>
                {
                    self.bump(); // the `#`
                    name.push('#');
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            name.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Ident(name), start);
                    return;
                }
                Some('#') => {
                    let mut hashes = 0;
                    while self.peek(hashes) == Some('#') {
                        hashes += 1;
                    }
                    if self.peek(hashes) == Some('"') {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        self.raw_string_tail(start, hashes);
                        return;
                    }
                }
                Some('\'') if name == "b" => {
                    self.char_or_lifetime(start);
                    return;
                }
                _ => {}
            }
        }
        self.push(TokKind::Ident(name), start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn code_inside_strings_is_not_tokenized() {
        let toks = idents(r#"let x = "foo.unwrap()"; y.unwrap();"#);
        assert_eq!(toks, vec!["let", "x", "y", "unwrap"]);
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let toks = idents(r##"let s = r#"contains "quotes" and .unwrap()"#; done();"##);
        assert_eq!(toks, vec!["let", "s", "done"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn escaped_char_literals() {
        let toks = lex(r"let a = '\''; let b = '\n'; let c = '\u{1F600}';");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 3);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still outer */ code()");
        assert!(matches!(toks[0].kind, TokKind::BlockComment(_)));
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t.kind, TokKind::Ident(_)))
                .count(),
            1
        );
    }

    #[test]
    fn doc_vs_plain_comments() {
        let toks = lex("/// doc\n//! inner doc\n// plain\n//// not doc\nx");
        let docs = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::DocComment(_)))
            .count();
        let plain = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::LineComment(_)))
            .count();
        assert_eq!(docs, 2);
        assert_eq!(plain, 2);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_field_access() {
        let toks = lex("for i in 0..n { x.0.clone(); let y = 1.5e-3; }");
        let dots = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct('.'))
            .count();
        // `0..n` has two, `x.0.clone()` has two; `1.5e-3` has none left.
        assert_eq!(dots, 4);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = idents(r#"let a = b"bytes"; let c = b'x'; end()"#);
        assert_eq!(toks, vec!["let", "a", "let", "c", "end"]);
    }

    // ------------------------------------------------ edge-case fixtures
    //
    // Each fixture is a token-table desync hazard: if the lexer loses
    // its place inside the construct, the trailing sentinel tokens
    // come out wrong and the assertion fails.

    #[test]
    fn nested_block_comment_markers_inside_raw_strings_do_not_desync() {
        // The `/* /* */` inside the raw string must stay literal text:
        // the comment-nesting counter must never see it.
        let toks = lex(r###"let s = r##"/* /* unbalanced "# */ "##; sentinel()"###);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1,
            "raw string swallowed or split"
        );
        let toks = idents(r###"let s = r##"/* /* unbalanced "# */ "##; sentinel()"###);
        assert_eq!(toks, vec!["let", "s", "sentinel"]);
    }

    #[test]
    fn raw_identifiers_lex_as_single_idents() {
        let toks = idents("let r#type = r#match; r#loop.f(); sentinel()");
        assert_eq!(
            toks,
            vec!["let", "r#type", "r#match", "r#loop", "f", "sentinel"]
        );
        // `r#loop` must NOT look like the `loop` keyword, and the `#`
        // must not leak out as punctuation (which would desync
        // attribute-span detection).
        let toks = lex("let r#loop = 1;");
        assert!(!toks.iter().any(|t| t.kind == TokKind::Punct('#')));
    }

    #[test]
    fn byte_string_escapes_do_not_terminate_early() {
        // `\"` and `\\` inside byte strings must not close the literal.
        let toks = idents(r#"let a = b"quote \" backslash \\ tail"; sentinel()"#);
        assert_eq!(toks, vec!["let", "a", "sentinel"]);
        let toks = idents(r#"let a = b"\x00\xff"; let b = c"nul \u{0}"; sentinel()"#);
        assert_eq!(toks, vec!["let", "a", "let", "b", "sentinel"]);
    }

    #[test]
    fn shebang_first_line_is_skipped_without_desync() {
        let toks = lex("#!/usr/bin/env run-cargo-script\nfn main() {}");
        let names: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["fn", "main"]);
        // Line numbers still track: `fn` is on line 2.
        assert_eq!(toks[0].line, 2);
        // An inner attribute `#![...]` on line 1 is NOT a shebang.
        let toks = lex("#![allow(dead_code)]\nfn main() {}");
        assert!(toks.iter().any(|t| t.kind == TokKind::Punct('#')));
    }
}
