//! Workspace discovery and the two-phase analysis driver: walks the
//! repository, classifies every Rust source file by owning crate and
//! target class, runs the token rules per file, then builds the
//! workspace call graph and runs the AST/CFG dataflow passes
//! ([`crate::passes`]) across all files at once. Raw pass findings are
//! filtered through each file's `kpm::allow` markers, and markers that
//! silenced nothing are themselves reported (`unused_suppression`).

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::callgraph::{CallGraph, FileFns};
use crate::diag::Diagnostic;
use crate::lints::{analyze_file, FileAnalysis, FileClass, FileInput};
use crate::passes;

/// Directories under the workspace root that are never scanned: build
/// output and the vendored dependency shims (external API surface, not
/// ours to lint).
const SKIP_DIRS: &[&str] = &["target", "shims", ".git"];

/// The full result of a workspace analysis.
#[derive(Debug)]
pub struct Report {
    /// All diagnostics, sorted by file, line, rule.
    pub diags: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Per-rule finding counts, in rule registration order (every
    /// registered rule appears, including zero counts).
    pub rule_counts: Vec<(&'static str, usize)>,
    /// Elapsed milliseconds per analysis pass, in execution order.
    pub passes: Vec<(&'static str, f64)>,
}

/// Scans the workspace rooted at `root` and returns all diagnostics
/// plus the number of files scanned. Compatibility wrapper around
/// [`analyze_workspace`].
pub fn run_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let report = analyze_workspace(root)?;
    Ok((report.diags, report.files_scanned))
}

/// Scans the workspace rooted at `root` and runs the full analysis.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_crate(root, "kpm-repro", root, &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name().to_string_lossy().into_owned();
                collect_crate(&path, &name, root, &mut files)?;
            }
        }
    }
    files.sort_by(|a, b| a.0.path.cmp(&b.0.path));

    let mut inputs = Vec::with_capacity(files.len());
    for (input, abs) in files {
        let src = fs::read_to_string(&abs)?;
        inputs.push((input, src));
    }
    Ok(analyze_sources(inputs))
}

/// Runs the full analysis over in-memory sources: token rules per
/// file, then call-graph construction and the dataflow passes across
/// all files, suppression filtering, and the unused-suppression audit.
pub fn analyze_sources(inputs: Vec<(FileInput, String)>) -> Report {
    let mut passes_ms: Vec<(&'static str, f64)> = Vec::new();
    let files_scanned = inputs.len();

    // Phase 1: token rules + AST parse per file.
    let t0 = Instant::now();
    let analyses: Vec<FileAnalysis> = inputs
        .iter()
        .map(|(input, src)| analyze_file(input, src))
        .collect();
    passes_ms.push(("token_rules", ms_since(t0)));

    // Phase 2: workspace call graph.
    let t0 = Instant::now();
    let file_fns: Vec<FileFns<'_>> = analyses
        .iter()
        .enumerate()
        .map(|(i, fa)| FileFns {
            file_idx: i,
            crate_name: fa.input.crate_name.clone(),
            class: fa.input.class,
            path: fa.input.path.clone(),
            ast: &fa.ast,
            test_lines: &fa.test_lines,
        })
        .collect();
    let graph = CallGraph::build(&file_fns);
    passes_ms.push(("callgraph", ms_since(t0)));

    // Phase 3: the dataflow passes, individually timed.
    type PassFn = fn(&[FileAnalysis], &CallGraph) -> Vec<passes::Finding>;
    let mut findings: Vec<passes::Finding> = Vec::new();
    let timed: &[(&'static str, PassFn)] = &[
        ("lock_order", passes::lock_order),
        ("atomic_order", |f, _| passes::atomic_order(f)),
        ("det_reduce", |f, _| passes::det_reduce(f)),
        ("panic_path", passes::panic_path),
        ("blocking_in_hot", passes::blocking_in_hot),
    ];
    for (name, pass) in timed {
        let t0 = Instant::now();
        findings.extend(pass(&analyses, &graph));
        passes_ms.push((name, ms_since(t0)));
    }

    // Phase 4: suppression filtering + diagnostics assembly.
    let t0 = Instant::now();
    let mut diags: Vec<Diagnostic> = Vec::new();
    for fa in &analyses {
        diags.extend(fa.diags.iter().cloned());
    }
    for f in findings {
        let fa = &analyses[f.file_idx];
        if fa.sup.allows(f.rule, f.line) {
            continue;
        }
        diags.push(Diagnostic {
            rule: f.rule,
            file: fa.input.path.clone(),
            line: f.line,
            message: f.message,
            hint: Diagnostic::suppression_hint(f.rule),
        });
    }

    // Phase 5: the unused-suppression audit. A marker that silenced
    // nothing is stale and rots: delete it or fix the rule name. The
    // audit exempts its own markers (consulting them is their use).
    for fa in &analyses {
        for m in &fa.sup.markers {
            if m.hits.get() > 0 || m.rule == "unused_suppression" {
                continue;
            }
            if fa.sup.allows("unused_suppression", m.marker_line) {
                continue;
            }
            diags.push(Diagnostic {
                rule: "unused_suppression",
                file: fa.input.path.clone(),
                line: m.marker_line,
                message: format!(
                    "`kpm::allow({})` no longer silences any finding; delete the stale \
                     marker (or fix the rule name if it was meant for another line)",
                    m.rule
                ),
                hint: Diagnostic::suppression_hint("unused_suppression"),
            });
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    passes_ms.push(("suppression_audit", ms_since(t0)));

    let rule_counts = crate::lints::RULES
        .iter()
        .map(|r| (r.name, diags.iter().filter(|d| d.rule == r.name).count()))
        .collect();

    Report {
        diags,
        files_scanned,
        rule_counts,
        passes: passes_ms,
    }
}

fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// Collects the `.rs` files of one crate rooted at `crate_dir`.
fn collect_crate(
    crate_dir: &Path,
    crate_name: &str,
    ws_root: &Path,
    out: &mut Vec<(FileInput, PathBuf)>,
) -> std::io::Result<()> {
    for (sub, class) in [
        ("src", FileClass::Lib),
        ("tests", FileClass::Test),
        ("benches", FileClass::Bench),
        ("examples", FileClass::Example),
    ] {
        let dir = crate_dir.join(sub);
        if dir.is_dir() {
            walk(&dir, crate_name, class, ws_root, out)?;
        }
    }
    Ok(())
}

fn walk(
    dir: &Path,
    crate_name: &str,
    class: FileClass,
    ws_root: &Path,
    out: &mut Vec<(FileInput, PathBuf)>,
) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            // src/bin targets are binaries, not library code.
            let sub_class = if class == FileClass::Lib && name == "bin" {
                FileClass::Bin
            } else {
                class
            };
            walk(&path, crate_name, sub_class, ws_root, out)?;
        } else if name.ends_with(".rs") {
            let file_class = if class == FileClass::Lib && name == "main.rs" {
                FileClass::Bin
            } else {
                class
            };
            let rel = path
                .strip_prefix(ws_root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((
                FileInput {
                    path: rel,
                    crate_name: crate_name.to_string(),
                    class: file_class,
                },
                path,
            ));
        }
    }
    Ok(())
}
