//! Workspace discovery: walks the repository, classifies every Rust
//! source file by owning crate and target class, and runs the lint
//! engine over the result.

use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::Diagnostic;
use crate::lints::{analyze_source, FileClass, FileInput};

/// Directories under the workspace root that are never scanned: build
/// output and the vendored dependency shims (external API surface, not
/// ours to lint).
const SKIP_DIRS: &[&str] = &["target", "shims", ".git"];

/// Scans the workspace rooted at `root` and returns all diagnostics
/// plus the number of files scanned.
pub fn run_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let mut files = Vec::new();
    collect_crate(root, "kpm-repro", root, &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name().to_string_lossy().into_owned();
                collect_crate(&path, &name, root, &mut files)?;
            }
        }
    }
    files.sort_by(|a, b| a.0.path.cmp(&b.0.path));

    let mut diags = Vec::new();
    let files_scanned = files.len();
    for (input, abs) in files {
        let src = fs::read_to_string(&abs)?;
        diags.extend(analyze_source(&input, &src));
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok((diags, files_scanned))
}

/// Collects the `.rs` files of one crate rooted at `crate_dir`.
fn collect_crate(
    crate_dir: &Path,
    crate_name: &str,
    ws_root: &Path,
    out: &mut Vec<(FileInput, PathBuf)>,
) -> std::io::Result<()> {
    for (sub, class) in [
        ("src", FileClass::Lib),
        ("tests", FileClass::Test),
        ("benches", FileClass::Bench),
        ("examples", FileClass::Example),
    ] {
        let dir = crate_dir.join(sub);
        if dir.is_dir() {
            walk(&dir, crate_name, class, ws_root, out)?;
        }
    }
    Ok(())
}

fn walk(
    dir: &Path,
    crate_name: &str,
    class: FileClass,
    ws_root: &Path,
    out: &mut Vec<(FileInput, PathBuf)>,
) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            // src/bin targets are binaries, not library code.
            let sub_class = if class == FileClass::Lib && name == "bin" {
                FileClass::Bin
            } else {
                class
            };
            walk(&path, crate_name, sub_class, ws_root, out)?;
        } else if name.ends_with(".rs") {
            let file_class = if class == FileClass::Lib && name == "main.rs" {
                FileClass::Bin
            } else {
                class
            };
            let rel = path
                .strip_prefix(ws_root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((
                FileInput {
                    path: rel,
                    crate_name: crate_name.to_string(),
                    class: file_class,
                },
                path,
            ));
        }
    }
    Ok(())
}
