//! The workspace dataflow passes: lock-order cycles, atomic-ordering
//! discipline, deterministic reductions, interprocedural panic
//! reachability, and blocking operations in hot kernel loops.
//!
//! Every pass returns raw [`Finding`]s; the workspace driver filters
//! them through each file's `kpm::allow` suppressions and converts the
//! survivors to diagnostics. Passes consult suppressions directly only
//! where a marker changes *propagation* (a vetted `no_panic` site does
//! not make its function may-panic; a vetted `panic_path` call edge
//! does not taint the caller).

use std::collections::{HashMap, HashSet};

use crate::ast::Expr;
use crate::callgraph::CallGraph;
use crate::cfg::{Cfg, Node, ENTRY};
use crate::lints::{FileAnalysis, FileClass, HOT_KERNEL_FILES, KERNEL_CRATES};

/// One raw pass finding, prior to suppression filtering.
#[derive(Debug)]
pub struct Finding {
    /// Index of the file in the workspace scan order.
    pub file_idx: usize,
    /// The rule that produced the finding.
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

/// Runs all five passes and returns their combined findings.
pub fn run_all(files: &[FileAnalysis], graph: &CallGraph) -> Vec<Finding> {
    let mut out = lock_order(files, graph);
    out.extend(atomic_order(files));
    out.extend(det_reduce(files));
    out.extend(panic_path(files, graph));
    out.extend(blocking_in_hot(files, graph));
    out
}

fn kernel_lib(fa: &FileAnalysis) -> bool {
    fa.input.class == FileClass::Lib && KERNEL_CRATES.contains(&fa.input.crate_name.as_str())
}

fn hot_kernel_file(fa: &FileAnalysis) -> bool {
    fa.input.class == FileClass::Lib
        && fa.input.crate_name == "kpm-sparse"
        && HOT_KERNEL_FILES
            .iter()
            .any(|f| fa.input.path.ends_with(&format!("/{f}")))
}

/// True when some link of the method chain under `e` is a `par_*`
/// adaptor call.
fn chain_has_par(e: &Expr) -> bool {
    match e {
        Expr::MethodCall { name, recv, .. } => name.starts_with("par_") || chain_has_par(recv),
        Expr::Field { recv, .. } => chain_has_par(recv),
        _ => false,
    }
}

// ---------------------------------------------------------------------
// lock_order
// ---------------------------------------------------------------------

/// If the atom acquires a lock, returns the lock's chain key.
/// `.lock()` always acquires; zero-argument `.read()`/`.write()` are
/// the `RwLock` acquisition shapes.
fn acquire_key(e: &Expr) -> Option<String> {
    if let Expr::MethodCall {
        name, recv, args, ..
    } = e
    {
        let locks = name == "lock" || (args.is_empty() && (name == "read" || name == "write"));
        if locks {
            let k = recv.chain_key();
            if !k.is_empty() {
                return Some(k);
            }
        }
    }
    None
}

/// A held lock: qualified key, owning lexical scope, and the `let`
/// binding name (for explicit `drop(name)` release).
type Held = (String, u32, Option<String>);

/// A lock-order edge site: file index, line, enclosing fn display.
type LockSite = (usize, u32, String);

/// The lock graph: `(held, acquired)` key pairs with the first site.
type LockEdges = HashMap<(String, String), LockSite>;

/// Detects potential deadlocks: builds the workspace lock-acquisition
/// graph (an edge `a -> b` means `b` was acquired — directly or
/// transitively through a callee — while `a` was held) over
/// per-function CFG dataflow, then reports every cycle once.
pub fn lock_order(files: &[FileAnalysis], graph: &CallGraph) -> Vec<Finding> {
    let nfn = graph.fns.len();

    // 1. Direct lock sets per function, keyed `crate:field`.
    let mut direct: Vec<HashSet<String>> = vec![HashSet::new(); nfn];
    for (i, node) in graph.fns.iter().enumerate() {
        if node.is_test {
            continue;
        }
        let fa = &files[node.file_idx];
        let def = &fa.ast.fns[node.fn_idx];
        def.body.walk(&mut |e| {
            if let Some(k) = acquire_key(e) {
                if !fa.is_test_line(e.line()) {
                    direct[i].insert(format!("{}:{}", node.crate_name, k));
                }
            }
        });
    }

    // 2. Transitive closure over the call graph.
    let mut trans = direct;
    loop {
        let mut changed = false;
        for i in 0..nfn {
            for j in 0..graph.edges[i].len() {
                let to = graph.edges[i][j].to;
                if to == i {
                    continue;
                }
                let add: Vec<String> = trans[to].iter().cloned().collect();
                for k in add {
                    if trans[i].insert(k) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // 3. Per-function CFG dataflow recording acquisition-order edges.
    let mut lock_edges: LockEdges = LockEdges::new();
    for (i, node) in graph.fns.iter().enumerate() {
        if node.is_test {
            continue;
        }
        let fa = &files[node.file_idx];
        let def = &fa.ast.fns[node.fn_idx];
        let mut calls_at: HashMap<u32, Vec<usize>> = HashMap::new();
        for e in &graph.edges[i] {
            calls_at.entry(e.line).or_default().push(e.to);
        }
        let cfg = Cfg::build(def);
        let rpo = cfg.rpo();
        let mut entry: Vec<Option<HashSet<Held>>> = vec![None; cfg.blocks.len()];
        entry[ENTRY] = Some(HashSet::new());
        loop {
            let mut changed = false;
            for &b in &rpo {
                let Some(mut held) = entry[b].clone() else {
                    continue;
                };
                for n in &cfg.blocks[b].nodes {
                    match n {
                        Node::ScopeEnd(sc) => held.retain(|(_, s, _)| s != sc),
                        Node::Expr {
                            expr,
                            scope,
                            bound,
                            name,
                        } => {
                            atom_locks(
                                expr,
                                node,
                                fa,
                                *scope,
                                *bound,
                                *name,
                                &calls_at,
                                &trans,
                                &mut held,
                                &mut lock_edges,
                            );
                        }
                    }
                }
                for &s in &cfg.blocks[b].succs {
                    match &mut entry[s] {
                        Some(existing) => {
                            for h in &held {
                                if !existing.contains(h) {
                                    existing.insert(h.clone());
                                    changed = true;
                                }
                            }
                        }
                        slot @ None => {
                            *slot = Some(held.clone());
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    // 4. Cycle detection over the lock graph.
    report_lock_cycles(&lock_edges)
}

/// Processes one CFG atom for the lock pass: records order edges for
/// acquisitions and callee lock summaries, updates the held set.
#[allow(clippy::too_many_arguments)]
fn atom_locks(
    expr: &Expr,
    node: &crate::callgraph::FnNode,
    fa: &FileAnalysis,
    scope: u32,
    bound: bool,
    bind_name: Option<&str>,
    calls_at: &HashMap<u32, Vec<usize>>,
    trans: &[HashSet<String>],
    held: &mut HashSet<Held>,
    edges: &mut LockEdges,
) {
    // Locks acquired by this atom but not let-bound: temporaries that
    // die when the statement ends.
    let mut temp: Vec<String> = Vec::new();
    expr.walk(&mut |e| {
        let line = e.line();
        if fa.is_test_line(line) {
            return;
        }
        // Explicit `drop(name)` releases the binding early.
        if let Expr::Call { path, args, .. } = e {
            if path.last().is_some_and(|p| p == "drop") && args.len() == 1 {
                if let Expr::Path { segs, .. } = &args[0] {
                    if let [var] = segs.as_slice() {
                        held.retain(|(_, _, n)| n.as_deref() != Some(var.as_str()));
                    }
                }
            }
        }
        if let Some(k) = acquire_key(e) {
            let qk = format!("{}:{}", node.crate_name, k);
            for (h, _, _) in held.iter() {
                edges
                    .entry((h.clone(), qk.clone()))
                    .or_insert_with(|| (node.file_idx, line, node.display()));
            }
            for t in &temp {
                if *t != qk {
                    edges
                        .entry((t.clone(), qk.clone()))
                        .or_insert_with(|| (node.file_idx, line, node.display()));
                }
            }
            if bound {
                held.insert((qk, scope, bind_name.map(str::to_string)));
            } else {
                temp.push(qk);
            }
        }
        // Callee summaries: every lock the callee may acquire is
        // ordered after everything currently held.
        let is_call = matches!(e, Expr::Call { .. } | Expr::MethodCall { .. });
        if is_call {
            if let Some(callees) = calls_at.get(&line) {
                for &c in callees {
                    for k in &trans[c] {
                        for (h, _, _) in held.iter() {
                            edges
                                .entry((h.clone(), k.clone()))
                                .or_insert_with(|| (node.file_idx, line, node.display()));
                        }
                        for t in &temp {
                            if t != k {
                                edges
                                    .entry((t.clone(), k.clone()))
                                    .or_insert_with(|| (node.file_idx, line, node.display()));
                            }
                        }
                    }
                }
            }
        }
    });
}

/// Finds strongly-connected components (and self-loops) in the lock
/// graph and reports each once, at the lexically first edge site.
fn report_lock_cycles(edges: &LockEdges) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Self-loops: a lock acquired while already held.
    for ((a, b), (file_idx, line, fun)) in edges {
        if a == b {
            findings.push(Finding {
                file_idx: *file_idx,
                rule: "lock_order",
                line: *line,
                message: format!(
                    "lock `{}` acquired in `{fun}` while a guard for it may still be \
                     held — self-deadlock for a non-reentrant mutex",
                    display_key(a)
                ),
            });
        }
    }

    // Multi-lock cycles via SCCs (Kosaraju).
    let mut keys: Vec<&String> = edges
        .keys()
        .flat_map(|(a, b)| [a, b])
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    keys.sort();
    let index: HashMap<&String, usize> = keys.iter().enumerate().map(|(i, k)| (*k, i)).collect();
    let n = keys.len();
    let mut adj = vec![Vec::new(); n];
    let mut radj = vec![Vec::new(); n];
    for (a, b) in edges.keys() {
        if a != b {
            adj[index[a]].push(index[b]);
            radj[index[b]].push(index[a]);
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for s in 0..n {
        if seen[s] {
            continue;
        }
        // Iterative postorder DFS.
        let mut stack = vec![(s, 0usize)];
        seen[s] = true;
        while let Some(&mut (v, ref mut c)) = stack.last_mut() {
            if let Some(&w) = adj[v].get(*c) {
                *c += 1;
                if !seen[w] {
                    seen[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut ncomp = 0;
    for &s in order.iter().rev() {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        comp[s] = ncomp;
        while let Some(v) = stack.pop() {
            for &w in &radj[v] {
                if comp[w] == usize::MAX {
                    comp[w] = ncomp;
                    stack.push(w);
                }
            }
        }
        ncomp += 1;
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for (v, &c) in comp.iter().enumerate() {
        members[c].push(v);
    }
    for m in members.iter().filter(|m| m.len() >= 2) {
        let set: HashSet<usize> = m.iter().copied().collect();
        // All edges internal to the SCC, lexically ordered.
        let mut internal: Vec<(&(String, String), &LockSite)> = edges
            .iter()
            .filter(|((a, b), _)| a != b && set.contains(&index[a]) && set.contains(&index[b]))
            .collect();
        internal.sort_by_key(|(_, (f, l, _))| (*f, *l));
        let Some(((_, _), (file_idx, line, _))) = internal.first() else {
            continue;
        };
        let mut names: Vec<String> = m
            .iter()
            .map(|&v| display_key(keys[v]).to_string())
            .collect();
        names.sort();
        let detail: Vec<String> = internal
            .iter()
            .take(4)
            .map(|((a, b), (_, l, f))| {
                format!(
                    "`{}` -> `{}` in `{f}` (line {l})",
                    display_key(a),
                    display_key(b)
                )
            })
            .collect();
        findings.push(Finding {
            file_idx: *file_idx,
            rule: "lock_order",
            line: *line,
            message: format!(
                "lock-order cycle across {{{}}} — {}; a globally consistent \
                 acquisition order is required to rule out deadlock",
                names.join(", "),
                detail.join("; ")
            ),
        });
    }
    findings
}

/// Strips the `crate:` qualifier for display.
fn display_key(k: &str) -> &str {
    k.split_once(':').map_or(k, |(_, f)| f)
}

// ---------------------------------------------------------------------
// atomic_order
// ---------------------------------------------------------------------

const ORDER_NAMES: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
const ATOMIC_READS: &[&str] = &["load"];
const ATOMIC_WRITES: &[&str] = &["store", "swap"];
const ATOMIC_RMWS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

#[derive(Clone, Copy, PartialEq)]
enum AtomicOp {
    Read,
    Write,
    Rmw,
}

struct AtomicSite {
    file_idx: usize,
    line: u32,
    op: AtomicOp,
    method: String,
    orders: Vec<&'static str>,
}

/// Checks store/load ordering pairs per atomic (keyed by crate and
/// field name) and polices the SeqCst budget: a Relaxed publish under
/// an Acquire consumer synchronizes nothing, a Release publish read
/// with Relaxed is unordered, and SeqCst is reserved for the service
/// `Ledger` (cross-variable ordering in the exactly-once protocol).
pub fn atomic_order(files: &[FileAnalysis]) -> Vec<Finding> {
    let mut by_key: HashMap<String, Vec<AtomicSite>> = HashMap::new();
    for (file_idx, fa) in files.iter().enumerate() {
        if !matches!(fa.input.class, FileClass::Lib | FileClass::Bin) {
            continue;
        }
        for def in &fa.ast.fns {
            def.body.walk(&mut |e| {
                let Expr::MethodCall {
                    name,
                    recv,
                    args,
                    line,
                } = e
                else {
                    return;
                };
                if fa.is_test_line(*line) {
                    return;
                }
                let op = if ATOMIC_READS.contains(&name.as_str()) {
                    AtomicOp::Read
                } else if ATOMIC_WRITES.contains(&name.as_str()) {
                    AtomicOp::Write
                } else if ATOMIC_RMWS.contains(&name.as_str()) {
                    AtomicOp::Rmw
                } else {
                    return;
                };
                let mut orders = Vec::new();
                for a in args {
                    a.walk(&mut |x| {
                        if let Expr::Path { segs, .. } = x {
                            if let Some(last) = segs.last() {
                                if let Some(o) = ORDER_NAMES.iter().find(|o| *o == last) {
                                    orders.push(*o);
                                }
                            }
                        }
                    });
                }
                if orders.is_empty() {
                    return; // not an atomic op (e.g. `file.load(x)`)
                }
                let field = recv.chain_key();
                if field.is_empty() {
                    return;
                }
                // The Ledger's SeqCst budget: either the receiver
                // chain names the ledger or the op is inside the
                // Ledger impl itself.
                let in_ledger = fa.input.crate_name == "kpm-service"
                    && (recv.chain_path().to_lowercase().contains("ledger")
                        || def.self_type.as_deref() == Some("Ledger"));
                let key = format!(
                    "{}:{}{}",
                    fa.input.crate_name,
                    field,
                    if in_ledger { "@ledger" } else { "" }
                );
                by_key.entry(key).or_default().push(AtomicSite {
                    file_idx,
                    line: *line,
                    op,
                    method: name.clone(),
                    orders,
                });
            });
        }
    }

    let mut findings = Vec::new();
    let mut keys: Vec<&String> = by_key.keys().collect();
    keys.sort();
    for key in keys {
        let sites = &by_key[key];
        let field = display_key(key).trim_end_matches("@ledger").to_string();
        let in_ledger = key.ends_with("@ledger");
        let acquiring_read = sites.iter().find(|s| {
            s.op == AtomicOp::Read
                && s.orders
                    .iter()
                    .any(|o| matches!(*o, "Acquire" | "AcqRel" | "SeqCst"))
        });
        let releasing_write = sites.iter().find(|s| {
            matches!(s.op, AtomicOp::Write | AtomicOp::Rmw)
                && s.orders
                    .iter()
                    .any(|o| matches!(*o, "Release" | "AcqRel" | "SeqCst"))
        });
        for s in sites {
            let relaxed_only = s.orders.iter().all(|o| *o == "Relaxed");
            if s.op == AtomicOp::Write && relaxed_only {
                if let Some(r) = acquiring_read {
                    findings.push(Finding {
                        file_idx: s.file_idx,
                        rule: "atomic_order",
                        line: s.line,
                        message: format!(
                            "`.{}(…, Relaxed)` publishes `{field}`, but `{field}` is \
                             loaded with {} at {}:{} — the acquiring load synchronizes \
                             with nothing; store with Release",
                            s.method,
                            r.orders.first().unwrap_or(&"Acquire"),
                            files[r.file_idx].input.path,
                            r.line
                        ),
                    });
                }
            }
            if s.op == AtomicOp::Read && relaxed_only {
                if let Some(w) = releasing_write {
                    findings.push(Finding {
                        file_idx: s.file_idx,
                        rule: "atomic_order",
                        line: s.line,
                        message: format!(
                            "`.load(Relaxed)` reads `{field}`, but `{field}` is \
                             published with {} at {}:{} — acquire the load or the \
                             publish ordering is wasted",
                            w.orders.first().unwrap_or(&"Release"),
                            files[w.file_idx].input.path,
                            w.line
                        ),
                    });
                }
            }
            if !in_ledger && s.orders.contains(&"SeqCst") {
                findings.push(Finding {
                    file_idx: s.file_idx,
                    rule: "atomic_order",
                    line: s.line,
                    message: format!(
                        "`.{}(…, SeqCst)` on `{field}`: the workspace reserves SeqCst \
                         for the service Ledger's cross-variable protocol — use \
                         Release/Acquire pairs (or Relaxed for pure counters)",
                        s.method
                    ),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// det_reduce
// ---------------------------------------------------------------------

const NONDET_REDUCERS: &[&str] = &["sum", "product", "reduce", "fold"];

/// Flags floating-point reductions on `par_*` chains in kernel-crate
/// library code: the combination order depends on thread scheduling,
/// which breaks the bitwise-determinism contract of the kernels. The
/// sanctioned pattern collects fixed-size chunk partials and combines
/// them in index order with `kpm_num::pairwise_sum`.
pub fn det_reduce(files: &[FileAnalysis]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (file_idx, fa) in files.iter().enumerate() {
        if !kernel_lib(fa) {
            continue;
        }
        for def in &fa.ast.fns {
            def.body.walk(&mut |e| {
                let Expr::MethodCall {
                    name, recv, line, ..
                } = e
                else {
                    return;
                };
                if NONDET_REDUCERS.contains(&name.as_str())
                    && chain_has_par(recv)
                    && !fa.is_test_line(*line)
                {
                    findings.push(Finding {
                        file_idx,
                        rule: "det_reduce",
                        line: *line,
                        message: format!(
                            "`.{name}()` on a `par_*` chain combines partial results in \
                             scheduling order, which is not bitwise-deterministic; \
                             collect fixed-size chunk partials and combine them in index \
                             order (`kpm_num::pairwise_sum`)"
                        ),
                    });
                }
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// panic_path
// ---------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// If the atom is a direct panic construct, returns `(line, what)`.
/// The construct set matches the `no_panic` token rule, so a site
/// vetted with `kpm::allow(no_panic)` is also vetted for propagation.
fn panic_site(e: &Expr) -> Option<(u32, String)> {
    match e {
        Expr::MethodCall { name, line, .. } if name == "unwrap" || name == "expect" => {
            Some((*line, format!("`.{name}()`")))
        }
        Expr::MacroCall { name, line, .. } if PANIC_MACROS.contains(&name.as_str()) => {
            Some((*line, format!("`{name}!`")))
        }
        _ => None,
    }
}

/// Interprocedural panic reachability: flags kernel-crate library
/// calls whose callee may panic, directly or transitively. Sites
/// suppressed with `kpm::allow(no_panic)` (vetted) do not propagate,
/// and a call edge suppressed with `kpm::allow(panic_path)` does not
/// taint the caller.
pub fn panic_path(files: &[FileAnalysis], graph: &CallGraph) -> Vec<Finding> {
    let nfn = graph.fns.len();
    // Witness text per may-panic fn: the concrete panic this reaches.
    let mut witness: Vec<Option<String>> = vec![None; nfn];
    for (i, node) in graph.fns.iter().enumerate() {
        if node.is_test {
            continue;
        }
        let fa = &files[node.file_idx];
        let def = &fa.ast.fns[node.fn_idx];
        let mut first: Option<(u32, String)> = None;
        def.body.walk(&mut |e| {
            if first.is_some() {
                return;
            }
            if let Some((line, what)) = panic_site(e) {
                if fa.is_test_line(line)
                    || fa.sup.peek("no_panic", line)
                    || fa.sup.peek("panic_path", line)
                {
                    return;
                }
                first = Some((line, what));
            }
        });
        if let Some((line, what)) = first {
            witness[i] = Some(format!("{what} at {}:{line}", node.path));
        }
    }
    // Propagate backward over call edges until stable.
    loop {
        let mut changed = false;
        for i in 0..nfn {
            if witness[i].is_some() {
                continue;
            }
            for e in &graph.edges[i] {
                let Some(w) = witness[e.to].clone() else {
                    continue;
                };
                let fa = &files[graph.fns[i].file_idx];
                if fa.is_test_line(e.line) || fa.sup.allows("panic_path", e.line) {
                    continue;
                }
                let mut chain = format!("via `{}`: {w}", graph.fns[e.to].display());
                if chain.len() > 220 {
                    chain.truncate(217);
                    chain.push_str("...");
                }
                witness[i] = Some(chain);
                changed = true;
                break;
            }
        }
        if !changed {
            break;
        }
    }
    // Report kernel-crate library call sites into may-panic callees.
    let mut findings = Vec::new();
    for (i, node) in graph.fns.iter().enumerate() {
        if node.is_test
            || node.class != FileClass::Lib
            || !KERNEL_CRATES.contains(&node.crate_name.as_str())
        {
            continue;
        }
        let fa = &files[node.file_idx];
        for e in &graph.edges[i] {
            if fa.is_test_line(e.line) {
                continue;
            }
            if let Some(w) = &witness[e.to] {
                findings.push(Finding {
                    file_idx: node.file_idx,
                    rule: "panic_path",
                    line: e.line,
                    message: format!(
                        "call to `{}` can panic ({w}); kernel paths must return typed \
                         errors",
                        graph.fns[e.to].display()
                    ),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// blocking_in_hot
// ---------------------------------------------------------------------

const BLOCKING_MACROS: &[&str] = &["print", "println", "eprint", "eprintln"];

/// If the atom blocks (lock, channel receive, sleep, file/stdio IO),
/// returns `(line, what)`.
fn blocking_site(e: &Expr) -> Option<(u32, String)> {
    match e {
        Expr::MethodCall {
            name, args, line, ..
        } => match name.as_str() {
            "lock" => Some((*line, "`.lock()`".to_string())),
            "read" | "write" if args.is_empty() => Some((*line, format!("`.{name}()` (RwLock)"))),
            "recv" | "recv_timeout" => Some((*line, format!("`.{name}()` (channel receive)"))),
            "join" if args.is_empty() => Some((*line, "`.join()` (thread join)".to_string())),
            _ => None,
        },
        Expr::Call { path, line, .. } => {
            let last = path.last()?;
            let second_last = path.len().checked_sub(2).map(|i| path[i].as_str());
            match last.as_str() {
                "sleep" => Some((*line, "`thread::sleep`".to_string())),
                "open" | "create" if second_last == Some("File") => {
                    Some((*line, format!("`File::{last}`")))
                }
                "read_to_string" | "read_to_end" => Some((*line, format!("`{last}`"))),
                _ if path.first().is_some_and(|p| p == "fs") => {
                    Some((*line, format!("`fs::{last}`")))
                }
                _ => None,
            }
        }
        Expr::MacroCall { name, line, .. } if BLOCKING_MACROS.contains(&name.as_str()) => {
            Some((*line, format!("`{name}!` (stdio lock + write)")))
        }
        _ => None,
    }
}

/// Flags blocking operations — locks, channel receives, sleeps, IO —
/// inside loops and `par_*` closures of the hot kernel files, both
/// directly and reachable through the call graph.
pub fn blocking_in_hot(files: &[FileAnalysis], graph: &CallGraph) -> Vec<Finding> {
    let nfn = graph.fns.len();
    // may-block witness per fn, propagated like panic_path.
    let mut witness: Vec<Option<String>> = vec![None; nfn];
    for (i, node) in graph.fns.iter().enumerate() {
        if node.is_test {
            continue;
        }
        let fa = &files[node.file_idx];
        let def = &fa.ast.fns[node.fn_idx];
        let mut first: Option<(u32, String)> = None;
        def.body.walk(&mut |e| {
            if first.is_some() {
                return;
            }
            if let Some((line, what)) = blocking_site(e) {
                if fa.is_test_line(line) || fa.sup.peek("blocking_in_hot", line) {
                    return;
                }
                first = Some((line, what));
            }
        });
        if let Some((line, what)) = first {
            witness[i] = Some(format!("{what} at {}:{line}", node.path));
        }
    }
    loop {
        let mut changed = false;
        for i in 0..nfn {
            if witness[i].is_some() {
                continue;
            }
            for e in &graph.edges[i] {
                let Some(w) = witness[e.to].clone() else {
                    continue;
                };
                let fa = &files[graph.fns[i].file_idx];
                if fa.is_test_line(e.line) || fa.sup.allows("blocking_in_hot", e.line) {
                    continue;
                }
                let mut chain = format!("via `{}`: {w}", graph.fns[e.to].display());
                if chain.len() > 220 {
                    chain.truncate(217);
                    chain.push_str("...");
                }
                witness[i] = Some(chain);
                changed = true;
                break;
            }
        }
        if !changed {
            break;
        }
    }

    let mut findings = Vec::new();
    for (i, node) in graph.fns.iter().enumerate() {
        let fa = &files[node.file_idx];
        if node.is_test || !hot_kernel_file(fa) {
            continue;
        }
        let def = &fa.ast.fns[node.fn_idx];
        // Hot regions: loop bodies and closures running on the pool.
        let mut hot_blocks: Vec<&crate::ast::Block> = Vec::new();
        def.body.walk(&mut |e| match e {
            Expr::Loop { body, .. } => hot_blocks.push(body),
            Expr::MethodCall {
                name, recv, args, ..
            } if name.starts_with("par_") || chain_has_par(recv) => {
                for a in args {
                    if let Expr::Closure { body, .. } = a {
                        hot_blocks.push(body);
                    }
                }
            }
            _ => {}
        });
        if hot_blocks.is_empty() {
            continue;
        }
        // Direct blocking sites inside hot regions.
        let mut seen_lines: HashSet<u32> = HashSet::new();
        for b in &hot_blocks {
            b.walk(&mut |e| {
                if let Some((line, what)) = blocking_site(e) {
                    if !fa.is_test_line(line) && seen_lines.insert(line) {
                        findings.push(Finding {
                            file_idx: node.file_idx,
                            rule: "blocking_in_hot",
                            line,
                            message: format!(
                                "{what} inside a hot kernel loop; hoist it out of the \
                                 inner loop (the kernels must stay lock- and IO-free)"
                            ),
                        });
                    }
                }
            });
        }
        // Calls from hot regions into may-block functions.
        let ranges: Vec<(u32, u32)> = hot_blocks.iter().map(|b| (b.line, b.end_line)).collect();
        for e in &graph.edges[i] {
            if fa.is_test_line(e.line) || !ranges.iter().any(|&(s, t)| e.line >= s && e.line <= t) {
                continue;
            }
            if let Some(w) = &witness[e.to] {
                if seen_lines.insert(e.line) {
                    findings.push(Finding {
                        file_idx: node.file_idx,
                        rule: "blocking_in_hot",
                        line: e.line,
                        message: format!(
                            "call to `{}` inside a hot kernel loop reaches a blocking \
                             operation ({w})",
                            graph.fns[e.to].display()
                        ),
                    });
                }
            }
        }
    }
    findings
}
