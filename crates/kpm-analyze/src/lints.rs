//! The domain lint rules and the per-file analysis driver.
//!
//! Clippy cannot encode these rules (and this workspace is offline, so
//! a custom rustc driver is off the table too); each rule is a small
//! pass over the token stream of [`crate::lexer`], with shared context
//! for test-code regions (`#[cfg(test)]` items, `#[test]` fns) and
//! comment-based suppression markers.
//!
//! # Suppression syntax
//!
//! `// kpm::allow(rule_name): justification` silences `rule_name` on
//! the same line and on the next line that contains code. (rustc only
//! accepts `#[allow(tool::lint)]` attributes for *registered* tools,
//! which needs an unstable feature, so the markers live in comments —
//! the engine's lexer sees every comment anyway.) A marker naming an
//! unknown rule is itself a diagnostic, with a did-you-mean hint.

use std::cell::Cell;

use crate::diag::Diagnostic;
use crate::lexer::{lex, TokKind, Token};

/// Crates whose non-test library code must be panic-free (`no_panic`).
pub const KERNEL_CRATES: &[&str] = &[
    "kpm-sparse",
    "kpm-num",
    "kpm-core",
    "kpm-hetsim",
    "kpm-service",
];

/// Hot-kernel files checked for in-loop heap allocation.
pub const HOT_KERNEL_FILES: &[&str] = &[
    "spmv.rs",
    "aug.rs",
    "sell.rs",
    "aug_sell.rs",
    "aug_sell_simd.rs",
    "stencil.rs",
    "power.rs",
];

/// The crate holding the instrumentation gate; `relaxed_store` is
/// skipped there and `obs_gate` runs only there.
pub const OBS_CRATE: &str = "kpm-obs";

/// What kind of compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code (`src/**`, excluding `src/bin`).
    Lib,
    /// Binary code (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Integration tests (`tests/**`).
    Test,
    /// Benchmarks (`benches/**`).
    Bench,
    /// Examples (`examples/**`).
    Example,
}

/// One file to analyze: its workspace-relative path, owning crate, and
/// target class.
#[derive(Debug, Clone)]
pub struct FileInput {
    /// Workspace-relative path (used in diagnostics).
    pub path: String,
    /// Name of the owning crate (`kpm-core`, ...; the root package is
    /// `kpm-repro`).
    pub crate_name: String,
    /// Target class, which decides rule applicability.
    pub class: FileClass,
}

/// A lint rule's identity and one-line summary.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable machine name, used in suppressions and JSON output.
    pub name: &'static str,
    /// One-line human summary.
    pub summary: &'static str,
}

/// Every rule the engine knows, in evaluation order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "no_panic",
        summary: "no unwrap/expect/panic!/unreachable!/todo!/unimplemented! in non-test \
                  library code of the kernel crates",
    },
    Rule {
        name: "safety_comment",
        summary: "every `unsafe` block and `unsafe impl` is immediately preceded by a \
                  `// SAFETY:` comment",
    },
    Rule {
        name: "hot_loop_alloc",
        summary: "no heap allocation (vec!/Vec::new/to_vec/clone/collect/format!/...) \
                  inside loops of the hot kernel files",
    },
    Rule {
        name: "hot_loop_convert",
        summary: "no sparse-format conversion (SellMatrix::from_crs/try_from_crs) inside \
                  loops of the kernel crates — convert once up front and reuse the handle",
    },
    Rule {
        name: "par_lock",
        summary: "no Mutex/RwLock acquisition inside `par_*` iterator statements of the \
                  kernel crates — locks serialize the workers the statement just fanned out",
    },
    Rule {
        name: "relaxed_store",
        summary: "no `Ordering::Relaxed` store/swap outside the kpm-obs gate",
    },
    Rule {
        name: "doc_coverage",
        summary: "public fn/struct/enum/trait items in library code carry doc comments",
    },
    Rule {
        name: "obs_gate",
        summary: "kpm-obs recording entry points check `enabled()` before taking a lock \
                  or reading a clock",
    },
    Rule {
        name: "obs_label",
        summary: "metric and span names handed to the kpm-obs registries are \
                  dot-separated lowercase paths (`svc.queue.wait_ns`), so exports \
                  group by subsystem and the Prometheus mangling stays invertible",
    },
    Rule {
        name: "unknown_suppression",
        summary: "suppression markers must name an existing rule",
    },
    Rule {
        name: "lock_order",
        summary: "lock acquisition order is globally consistent — a cycle in the \
                  workspace lock graph (built over per-function CFGs and the call \
                  graph) is a potential deadlock",
    },
    Rule {
        name: "atomic_order",
        summary: "atomic store/load pairs agree on ordering (no Relaxed publish \
                  under an Acquire consumer and vice versa), and SeqCst stays \
                  reserved for the service Ledger",
    },
    Rule {
        name: "det_reduce",
        summary: "no `.sum()`/`.reduce()`/`.fold()`/`.product()` on `par_*` chains in \
                  kernel crates — combine fixed-chunk partials in index order \
                  (`kpm_num::pairwise_sum`) to keep reductions bitwise-deterministic",
    },
    Rule {
        name: "panic_path",
        summary: "kernel-crate library paths do not reach a panic transitively \
                  through callees (interprocedural extension of `no_panic`)",
    },
    Rule {
        name: "blocking_in_hot",
        summary: "no lock/channel-recv/IO reachable (directly or via the call \
                  graph) from loops and `par_*` closures of the hot kernel files",
    },
    Rule {
        name: "simd_scalar_tail",
        summary: "every `chunks_exact`/`chunks_exact_mut` lane split in the hot kernel \
                  files consumes its `remainder()`/`into_remainder()` in the same \
                  function body — a dropped tail silently skips the last partial group",
    },
    Rule {
        name: "unused_suppression",
        summary: "every `kpm::allow` marker still silences at least one finding; \
                  stale markers must be deleted",
    },
];

/// True if `name` is a known rule.
pub fn is_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// The known rule closest to `name` by edit distance (for the
/// did-you-mean hint on misspelled suppressions).
pub fn nearest_rule(name: &str) -> &'static str {
    RULES
        .iter()
        .map(|r| (edit_distance(name, r.name), r.name))
        .min_by_key(|(d, _)| *d)
        .map(|(_, n)| n)
        .unwrap_or("no_panic")
}

fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for i in 1..=a.len() {
        cur[0] = i;
        for j in 1..=b.len() {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Per-line facts derived from the token stream.
#[derive(Debug, Clone, Copy, Default)]
struct LineInfo {
    /// Line contains at least one non-comment, non-attribute token.
    has_code: bool,
    /// Line lies inside an attribute (`#[...]`) span.
    has_attr: bool,
    /// Line carries a doc comment.
    has_doc: bool,
    /// Line carries any comment.
    has_comment: bool,
    /// Line carries a comment whose text starts with `SAFETY:`.
    has_safety: bool,
}

/// A code token (comments stripped) with its line.
#[derive(Debug, Clone)]
struct CTok {
    kind: TokKind,
    line: u32,
}

impl CTok {
    fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One resolved `kpm::allow(rule)` marker with usage tracking.
#[derive(Debug)]
pub struct Marker {
    /// The rule the marker names.
    pub rule: String,
    /// Line the marker comment starts on.
    pub marker_line: u32,
    /// Lines the marker covers: its own plus the next code line.
    pub lines: Vec<u32>,
    /// Findings this marker has silenced (interior-mutable so passes
    /// can record hits through a shared reference).
    pub hits: Cell<u32>,
}

/// All suppression markers of one file, with per-marker hit counts so
/// the `unused_suppression` audit can flag markers that never fire.
#[derive(Debug, Default)]
pub struct Suppressions {
    /// Markers in source order.
    pub markers: Vec<Marker>,
}

impl Suppressions {
    /// True when `rule` is suppressed at `line`; records the hit on
    /// the first covering marker.
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        for m in &self.markers {
            if m.rule == rule && m.lines.contains(&line) {
                m.hits.set(m.hits.get() + 1);
                return true;
            }
        }
        false
    }

    /// Alias of [`Suppressions::allows`] used by the dataflow passes
    /// when vetting a *source site* (e.g. `panic_path` honoring a
    /// `kpm::allow(no_panic)` or `kpm::allow(panic_path)` marker on a
    /// panicking line so it does not propagate through the call
    /// graph). Passes only consult a marker when a real site matched
    /// its line, so the consult counts as the marker's use — without
    /// this, a propagation-only marker would always look stale to the
    /// `unused_suppression` audit.
    pub fn peek(&self, rule: &str, line: u32) -> bool {
        self.allows(rule, line)
    }
}

/// Shared per-file context handed to each rule pass.
struct Ctx<'a> {
    input: &'a FileInput,
    toks: Vec<CTok>,
    lines: Vec<LineInfo>, // indexed by line - 1
    test_lines: Vec<bool>,
    suppressed: Suppressions,
    diags: Vec<Diagnostic>,
}

impl Ctx<'_> {
    fn line_info(&self, line: u32) -> LineInfo {
        self.lines
            .get(line as usize - 1)
            .copied()
            .unwrap_or_default()
    }

    fn is_test_line(&self, line: u32) -> bool {
        self.test_lines
            .get(line as usize - 1)
            .copied()
            .unwrap_or(false)
    }

    fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressed.allows(rule, line)
    }

    fn report(&mut self, rule: &'static str, line: u32, message: String) {
        if self.is_suppressed(rule, line) {
            return;
        }
        self.diags.push(Diagnostic {
            rule,
            file: self.input.path.clone(),
            line,
            message,
            hint: Diagnostic::suppression_hint(rule),
        });
    }
}

/// The per-file state the workspace AST passes consume: token-rule
/// diagnostics plus the parsed AST, test regions, and suppression
/// markers with live hit counts.
#[derive(Debug)]
pub struct FileAnalysis {
    /// The file's identity (path, crate, class).
    pub input: FileInput,
    /// Parsed functions.
    pub ast: crate::ast::File,
    /// Per-line test flags (1-based line `l` at index `l - 1`).
    pub test_lines: Vec<bool>,
    /// Suppression markers with hit tracking.
    pub sup: Suppressions,
    /// Token-rule diagnostics (AST-pass findings are appended by the
    /// workspace driver).
    pub diags: Vec<Diagnostic>,
}

impl FileAnalysis {
    /// True when `line` lies in a `#[cfg(test)]`/`#[test]` region or
    /// the whole file is a test target.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.input.class == FileClass::Test
            || self
                .test_lines
                .get(line as usize - 1)
                .copied()
                .unwrap_or(false)
    }
}

/// Analyzes one source file and returns its diagnostics — token rules
/// plus the AST/call-graph passes run on the file alone. The full
/// workspace driver ([`crate::workspace`]) runs the same passes with
/// cross-file resolution.
pub fn analyze_source(input: &FileInput, src: &str) -> Vec<Diagnostic> {
    crate::workspace::analyze_sources(vec![(input.clone(), src.to_string())]).diags
}

/// Runs the token rules on one file and prepares the state the
/// workspace AST passes consume.
pub fn analyze_file(input: &FileInput, src: &str) -> FileAnalysis {
    let raw = lex(src);
    let nlines = src.lines().count().max(1);
    let mut ctx = build_ctx(input, &raw, nlines);

    if applies_no_panic(input) {
        no_panic(&mut ctx);
    }
    safety_comment(&mut ctx);
    if applies_hot_loop(input) {
        hot_loop_alloc(&mut ctx);
        simd_scalar_tail(&mut ctx);
    }
    if applies_hot_loop_convert(input) {
        hot_loop_convert(&mut ctx);
    }
    if applies_par_lock(input) {
        par_lock(&mut ctx);
    }
    if input.crate_name != OBS_CRATE && matches!(input.class, FileClass::Lib | FileClass::Bin) {
        relaxed_store(&mut ctx);
    }
    if input.class == FileClass::Lib {
        doc_coverage(&mut ctx);
    }
    if input.crate_name == OBS_CRATE && input.class == FileClass::Lib {
        obs_gate(&mut ctx);
    }
    if matches!(input.class, FileClass::Lib | FileClass::Bin) {
        obs_label(&mut ctx, src);
    }

    let mut diags = ctx.diags;
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    FileAnalysis {
        input: input.clone(),
        ast: crate::ast::parse(src),
        test_lines: ctx.test_lines,
        sup: ctx.suppressed,
        diags,
    }
}

fn applies_no_panic(input: &FileInput) -> bool {
    input.class == FileClass::Lib && KERNEL_CRATES.contains(&input.crate_name.as_str())
}

fn applies_hot_loop(input: &FileInput) -> bool {
    input.class == FileClass::Lib
        && input.crate_name == "kpm-sparse"
        && HOT_KERNEL_FILES
            .iter()
            .any(|f| input.path.ends_with(&format!("/{f}")))
}

fn applies_par_lock(input: &FileInput) -> bool {
    input.class == FileClass::Lib && KERNEL_CRATES.contains(&input.crate_name.as_str())
}

fn applies_hot_loop_convert(input: &FileInput) -> bool {
    // Broader than `hot_loop_alloc`: a conversion in a loop is a
    // performance bug anywhere in the kernel crates, not only in the
    // innermost kernel files.
    input.class == FileClass::Lib && KERNEL_CRATES.contains(&input.crate_name.as_str())
}

// ---------------------------------------------------------------------
// Context construction: line table, attribute spans, test regions,
// suppression markers.
// ---------------------------------------------------------------------

fn build_ctx<'a>(input: &'a FileInput, raw: &[Token], nlines: usize) -> Ctx<'a> {
    let mut lines = vec![LineInfo::default(); nlines.max(1)];
    let mut toks: Vec<CTok> = Vec::with_capacity(raw.len());
    let mut raw_markers: Vec<(String, u32)> = Vec::new();
    let mut diags = Vec::new();

    let mark = |lines: &mut Vec<LineInfo>, from: u32, to: u32, f: &dyn Fn(&mut LineInfo)| {
        for l in from..=to {
            if let Some(info) = lines.get_mut(l as usize - 1) {
                f(info);
            }
        }
    };

    // Pass 1: split comments from code, build the line table, collect
    // suppression markers.
    for t in raw {
        match &t.kind {
            TokKind::LineComment(text) | TokKind::BlockComment(text) => {
                mark(&mut lines, t.line, t.end_line, &|i| i.has_comment = true);
                if text.trim_start().starts_with("SAFETY:") {
                    mark(&mut lines, t.line, t.end_line, &|i| i.has_safety = true);
                }
                collect_suppressions(text, t.line, &mut raw_markers, &mut diags, input);
            }
            TokKind::DocComment(_) => {
                mark(&mut lines, t.line, t.end_line, &|i| {
                    i.has_doc = true;
                    i.has_comment = true;
                });
            }
            kind => {
                toks.push(CTok {
                    kind: kind.clone(),
                    line: t.line,
                });
            }
        }
    }

    // Pass 2: attribute spans (their tokens are not "code" for the
    // purposes of comment-adjacency walks) and remaining code lines.
    let attr_spans = find_attr_spans(&toks);
    let mut in_attr = vec![false; toks.len()];
    for &(s, e) in &attr_spans {
        for slot in in_attr.iter_mut().take(e + 1).skip(s) {
            *slot = true;
        }
        mark(&mut lines, toks[s].line, toks[e].line, &|i| {
            i.has_attr = true
        });
    }
    for (i, t) in toks.iter().enumerate() {
        if !in_attr[i] {
            mark(&mut lines, t.line, t.line, &|i| i.has_code = true);
        }
    }

    // Pass 3: test regions from `#[cfg(test)]` / `#[test]` attributes.
    let mut test_lines = vec![false; lines.len()];
    for &(s, e) in &attr_spans {
        if attr_is_test(&toks[s..=e]) {
            if let Some((from, to)) = decorated_item_span(&toks, e + 1, &attr_spans) {
                let (l0, l1) = (toks[s].line, toks[to].line.max(toks[from].line));
                for l in l0..=l1 {
                    if let Some(slot) = test_lines.get_mut(l as usize - 1) {
                        *slot = true;
                    }
                }
            }
        }
    }

    // Resolve suppression markers onto lines: a marker applies to its
    // own line through the next line containing code, inclusive of
    // comment lines in between (so a `kpm::allow(unused_suppression)`
    // marker can vet a — deliberately kept — stale marker below it).
    let mut markers = Vec::new();
    for (rule, l) in raw_markers {
        let mut covered = vec![l];
        for next in (l + 1)..=(lines.len() as u32) {
            covered.push(next);
            if lines[next as usize - 1].has_code {
                break;
            }
        }
        markers.push(Marker {
            rule,
            marker_line: l,
            lines: covered,
            hits: Cell::new(0),
        });
    }

    Ctx {
        input,
        toks,
        lines,
        test_lines,
        suppressed: Suppressions { markers },
        diags,
    }
}

/// Records every `kpm::allow(rule)` marker found in `text`; unknown
/// rule names become `unknown_suppression` diagnostics.
fn collect_suppressions(
    text: &str,
    line: u32,
    raw_markers: &mut Vec<(String, u32)>,
    diags: &mut Vec<Diagnostic>,
    input: &FileInput,
) {
    const MARKER: &str = "kpm::allow(";
    let mut rest = text;
    while let Some(pos) = rest.find(MARKER) {
        rest = &rest[pos + MARKER.len()..];
        let Some(close) = rest.find(')') else { break };
        let rule = rest[..close].trim().to_string();
        rest = &rest[close + 1..];
        if is_rule(&rule) {
            raw_markers.push((rule, line));
        } else {
            let near = nearest_rule(&rule);
            diags.push(Diagnostic {
                rule: "unknown_suppression",
                file: input.path.clone(),
                line,
                message: format!("suppression names unknown rule `{rule}`"),
                hint: format!("did you mean `kpm::allow({near})`?"),
            });
        }
    }
}

/// Index spans `(start, end)` of attribute token groups `#[...]` /
/// `#![...]` in the code-token stream.
fn find_attr_spans(toks: &[CTok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_punct('!') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('[') {
                let mut depth = 0usize;
                let mut k = j;
                while k < toks.len() {
                    if toks[k].is_punct('[') {
                        depth += 1;
                    } else if toks[k].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                if k < toks.len() {
                    spans.push((i, k));
                    i = k + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    spans
}

/// True when the attribute tokens mark test-only code: `#[test]`,
/// `#[cfg(test)]`, or a `cfg` mentioning `test` without `not(...)`.
fn attr_is_test(attr: &[CTok]) -> bool {
    let idents: Vec<&str> = attr.iter().filter_map(|t| t.ident()).collect();
    match idents.first() {
        Some(&"test") => idents.len() == 1,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    }
}

/// The token span of the item an attribute at `start` decorates:
/// skips further attributes, then extends to the matching `}` of the
/// item's first top-level brace group, or to a top-level `;`.
fn decorated_item_span(
    toks: &[CTok],
    start: usize,
    attr_spans: &[(usize, usize)],
) -> Option<(usize, usize)> {
    let mut i = start;
    // Skip any further attributes on the same item.
    while let Some(&(_, e)) = attr_spans.iter().find(|&&(s, _)| s == i) {
        i = e + 1;
    }
    let from = i;
    let mut brace = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => {
                brace = brace.saturating_sub(1);
                if brace == 0 {
                    return Some((from, i));
                }
            }
            TokKind::Punct(';') if brace == 0 => return Some((from, i)),
            _ => {}
        }
        i += 1;
    }
    Some((from, toks.len().saturating_sub(1)))
}

// ---------------------------------------------------------------------
// Rule passes.
// ---------------------------------------------------------------------

/// Panicking constructs in non-test kernel-crate library code.
fn no_panic(ctx: &mut Ctx<'_>) {
    let mut findings = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.is_test_line(t.line) {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        let prev_dot = i > 0 && ctx.toks[i - 1].is_punct('.');
        let next = ctx.toks.get(i + 1);
        match name {
            "unwrap" | "expect" if prev_dot && next.is_some_and(|n| n.is_punct('(')) => {
                findings.push((
                    t.line,
                    format!("call to `.{name}()` in kernel-crate library code; return a typed `KpmError` instead"),
                ));
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if next.is_some_and(|n| n.is_punct('!')) =>
            {
                findings.push((
                    t.line,
                    format!(
                        "`{name}!` in kernel-crate library code; return a typed `KpmError` instead"
                    ),
                ));
            }
            _ => {}
        }
    }
    for (line, msg) in findings {
        ctx.report("no_panic", line, msg);
    }
}

/// `unsafe` blocks / impls must be immediately preceded by `// SAFETY:`.
fn safety_comment(ctx: &mut Ctx<'_>) {
    let mut findings = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.ident() != Some("unsafe") {
            continue;
        }
        let what = match ctx.toks.get(i + 1) {
            Some(n) if n.is_punct('{') => "unsafe block",
            Some(n) if n.ident() == Some("impl") => "unsafe impl",
            _ => continue, // `unsafe fn` declarations document their contract in rustdoc
        };
        if !has_adjacent_safety_comment(ctx, t.line) {
            findings.push((
                t.line,
                format!("{what} without an immediately preceding `// SAFETY:` comment"),
            ));
        }
    }
    for (line, msg) in findings {
        ctx.report("safety_comment", line, msg);
    }
}

/// Walks upward from `line` through comment/attribute-only lines
/// looking for a `SAFETY:` comment; the walk stops at the first code
/// or blank line. The `unsafe` token's own line also counts (trailing
/// or inline block comments).
fn has_adjacent_safety_comment(ctx: &Ctx<'_>, line: u32) -> bool {
    if ctx.line_info(line).has_safety {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let info = ctx.line_info(l);
        if info.has_safety {
            return true;
        }
        let skippable = !info.has_code && (info.has_comment || info.has_doc || info.has_attr);
        if !skippable {
            return false; // code line or blank line: the comment is not adjacent
        }
        l -= 1;
    }
    false
}

const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "clone", "collect"];
const ALLOC_TYPES: &[(&str, &[&str])] = &[
    ("Vec", &["new", "with_capacity", "from"]),
    ("String", &["new", "with_capacity", "from"]),
    ("Box", &["new"]),
];
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Walks the token stream tracking loop-body nesting and calls
/// `matcher` on every identifier token inside a (non-test) loop body;
/// whatever messages it returns are reported under `rule`.
fn walk_loops(
    ctx: &mut Ctx<'_>,
    rule: &'static str,
    matcher: fn(&Ctx<'_>, usize) -> Option<String>,
) {
    let mut findings = Vec::new();
    let mut brace_stack: Vec<bool> = Vec::new(); // true = loop body
    let mut loop_depth = 0usize;
    let mut pending_loop = false;
    let mut paren = 0usize;

    for i in 0..ctx.toks.len() {
        let t = &ctx.toks[i];
        let prev = i.checked_sub(1).map(|p| &ctx.toks[p]);
        let next = ctx.toks.get(i + 1);
        match &t.kind {
            TokKind::Ident(name) => {
                match name.as_str() {
                    // `for` is a loop head unless it is `impl Trait for T`
                    // (previous token an ident or `>`) or an HRTB
                    // (`for<'a>`, next token `<`).
                    "for" => {
                        let prev_ty = prev.is_some_and(|p| p.ident().is_some() || p.is_punct('>'));
                        let hrtb = next.is_some_and(|n| n.is_punct('<'));
                        if !prev_ty && !hrtb {
                            pending_loop = true;
                        }
                    }
                    "while" | "loop" => pending_loop = true,
                    _ => {}
                }
                if loop_depth > 0 && !ctx.is_test_line(t.line) {
                    if let Some(msg) = matcher(ctx, i) {
                        findings.push((t.line, msg));
                    }
                }
            }
            TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => paren = paren.saturating_sub(1),
            TokKind::Punct('{') => {
                let is_loop = pending_loop && paren == 0;
                if is_loop {
                    pending_loop = false;
                    loop_depth += 1;
                }
                brace_stack.push(is_loop);
            }
            TokKind::Punct('}') => {
                let was_loop = brace_stack.pop();
                if was_loop == Some(true) {
                    loop_depth = loop_depth.saturating_sub(1);
                }
            }
            TokKind::Punct(';') if paren == 0 => pending_loop = false,
            _ => {}
        }
    }
    for (line, msg) in findings {
        ctx.report(rule, line, msg);
    }
}

/// Heap allocation inside loops of the hot kernel files.
fn hot_loop_alloc(ctx: &mut Ctx<'_>) {
    walk_loops(ctx, "hot_loop_alloc", alloc_at);
}

const CONVERT_CTORS: &[&str] = &["from_crs", "try_from_crs"];

/// Sparse-format conversion inside loops of the kernel crates. Building
/// a SELL-C-σ matrix costs a window sort plus a full copy of the
/// nonzeros — O(nnz) work and traffic that dwarfs the SpMV it feeds.
/// Doing it once per outer iteration silently turns a bandwidth-bound
/// kernel into a conversion benchmark; convert once up front and reuse
/// the handle. Deliberate per-iteration builds (e.g. the autotuner's
/// probe, which times the conversion's product exactly once per
/// finalist) carry a `kpm::allow(hot_loop_convert)` marker.
fn hot_loop_convert(ctx: &mut Ctx<'_>) {
    walk_loops(ctx, "hot_loop_convert", convert_at);
}

/// If the ident at `i` is a format-conversion call, returns the message.
fn convert_at(ctx: &Ctx<'_>, i: usize) -> Option<String> {
    let t = &ctx.toks[i];
    let name = t.ident()?;
    if !CONVERT_CTORS.contains(&name) {
        return None;
    }
    // A call through a path or method position: `T::from_crs(..)` or
    // `x.from_crs(..)` — a bare `fn from_crs(` definition is not one.
    let called = ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('('));
    let prev_path = i > 0 && (ctx.toks[i - 1].is_punct(':') || ctx.toks[i - 1].is_punct('.'));
    if !called || !prev_path {
        return None;
    }
    Some(format!(
        "`{name}` rebuilds the sparse format inside a loop (a window sort plus an \
         O(nnz) copy per iteration); convert once outside and reuse the handle"
    ))
}

/// If the ident at `i` is an allocating construct, returns the message.
fn alloc_at(ctx: &Ctx<'_>, i: usize) -> Option<String> {
    let t = &ctx.toks[i];
    let name = t.ident()?;
    let prev_dot = i > 0 && ctx.toks[i - 1].is_punct('.');
    let next = ctx.toks.get(i + 1);
    if ALLOC_MACROS.contains(&name) && next.is_some_and(|n| n.is_punct('!')) {
        return Some(format!(
            "`{name}!` allocates inside a hot-kernel loop; hoist into a preallocated workspace"
        ));
    }
    if prev_dot
        && ALLOC_METHODS.contains(&name)
        && next.is_some_and(|n| n.is_punct('(') || n.is_punct(':'))
    {
        return Some(format!(
            "`.{name}()` allocates inside a hot-kernel loop; hoist into a preallocated workspace"
        ));
    }
    if let Some((_, ctors)) = ALLOC_TYPES.iter().find(|(ty, _)| *ty == name) {
        if next.is_some_and(|n| n.is_punct(':'))
            && ctx.toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && ctx
                .toks
                .get(i + 3)
                .and_then(|n| n.ident())
                .is_some_and(|m| ctors.contains(&m))
        {
            let ctor = ctx.toks[i + 3].ident().unwrap_or_default();
            return Some(format!(
                "`{name}::{ctor}` allocates inside a hot-kernel loop; hoist into a \
                 preallocated workspace"
            ));
        }
    }
    None
}

const TAIL_SPLITS: &[&str] = &["chunks_exact", "chunks_exact_mut"];
const TAIL_HANDLERS: &[&str] = &["remainder", "into_remainder"];

/// `simd_scalar_tail`: a `chunks_exact` / `chunks_exact_mut` split in a
/// hot kernel file whose function body never consumes the iterator's
/// `remainder()` / `into_remainder()`. The split is how the SIMD lane
/// loops are written (full groups vectorized, leftover lanes scalar);
/// forgetting the tail does not fail to compile — it silently drops the
/// last `len mod LANES` elements, which for the SELL kernels means
/// whole matrix rows vanish from the accumulation.
fn simd_scalar_tail(ctx: &mut Ctx<'_>) {
    let mut findings = Vec::new();
    let mut i = 0;
    while i < ctx.toks.len() {
        if ctx.toks[i].ident() != Some("fn") {
            i += 1;
            continue;
        }
        // Body span: the first `{` after the signature (a `;` first
        // means a bodiless trait method), to its matching `}`.
        let Some(open) = (i + 1..ctx.toks.len())
            .find(|&k| ctx.toks[k].is_punct('{') || ctx.toks[k].is_punct(';'))
        else {
            break;
        };
        if ctx.toks[open].is_punct(';') {
            i = open + 1;
            continue;
        }
        let mut depth = 0usize;
        let mut close = open;
        while close < ctx.toks.len() {
            if ctx.toks[close].is_punct('{') {
                depth += 1;
            } else if ctx.toks[close].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            close += 1;
        }
        let body = &ctx.toks[open..=close.min(ctx.toks.len() - 1)];
        let method_call = |k: usize, names: &[&str]| {
            body[k].ident().is_some_and(|n| names.contains(&n))
                && k > 0
                && body[k - 1].is_punct('.')
                && body.get(k + 1).is_some_and(|n| n.is_punct('('))
        };
        let splits: Vec<u32> = (0..body.len())
            .filter(|&k| method_call(k, TAIL_SPLITS) && !ctx.is_test_line(body[k].line))
            .map(|k| body[k].line)
            .collect();
        let handled = (0..body.len()).any(|k| method_call(k, TAIL_HANDLERS));
        if !handled {
            for line in splits {
                findings.push((
                    line,
                    "`chunks_exact` splits the lanes but the function never consumes \
                     `remainder()`/`into_remainder()`; handle the scalar tail in the \
                     same function body"
                        .to_string(),
                ));
            }
        }
        // Nested fns are re-scanned on their own `fn` token; advancing
        // past the outer body would skip them.
        i += 1;
    }
    // An unhandled split inside a nested fn surfaces once from the
    // inner scan and once from the enclosing body — keep one.
    findings.sort();
    findings.dedup();
    for (line, msg) in findings {
        ctx.report("simd_scalar_tail", line, msg);
    }
}

/// Lock acquisition inside `par_*` iterator statements of the kernel
/// crates. A `.lock()` (or a `Mutex`/`RwLock` value threaded into the
/// closure) inside the statement that just fanned work out across the
/// pool serializes the workers again — the classic way a "parallel"
/// kernel quietly runs at single-thread speed. Deliberate uses (e.g. a
/// gather point whose lock is taken once per chunk, not per element)
/// carry a `kpm::allow(par_lock)` marker.
fn par_lock(ctx: &mut Ctx<'_>) {
    let mut findings = Vec::new();
    let mut i = 0;
    while i < ctx.toks.len() {
        let t = &ctx.toks[i];
        let is_par_call = t.ident().is_some_and(|n| n.starts_with("par_"))
            && i > 0
            && ctx.toks[i - 1].is_punct('.')
            && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !is_par_call || ctx.is_test_line(t.line) {
            i += 1;
            continue;
        }
        // The parallel statement: from the `par_*` call to the `;` at
        // this nesting level (or the `}` that closes the enclosing
        // block for tail expressions). Everything in between — the
        // adaptor chain and its closures — runs on the pool.
        let mut depth = 0isize;
        let mut j = i + 1;
        let mut end = ctx.toks.len();
        while j < ctx.toks.len() {
            match &ctx.toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                    depth -= 1;
                    if depth < 0 {
                        end = j;
                        break;
                    }
                }
                TokKind::Punct(';') if depth == 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for k in i..end.min(ctx.toks.len()) {
            let a = &ctx.toks[k];
            match a.ident() {
                Some("lock") => {
                    let is_call = k > 0
                        && ctx.toks[k - 1].is_punct('.')
                        && ctx.toks.get(k + 1).is_some_and(|n| n.is_punct('('));
                    if is_call {
                        findings.push((
                            a.line,
                            "`.lock()` inside a `par_*` statement serializes the worker \
                             threads; accumulate per-chunk and reduce after the parallel \
                             region"
                                .to_string(),
                        ));
                    }
                }
                Some(ty @ ("Mutex" | "RwLock")) => {
                    findings.push((
                        a.line,
                        format!(
                            "`{ty}` referenced inside a `par_*` statement; shared locked \
                             state serializes the worker threads — use per-chunk partials \
                             and a post-region reduction"
                        ),
                    ));
                }
                _ => {}
            }
        }
        i = end.max(i + 1);
    }
    for (line, msg) in findings {
        ctx.report("par_lock", line, msg);
    }
}

/// `Ordering::Relaxed` store/swap outside kpm-obs.
fn relaxed_store(ctx: &mut Ctx<'_>) {
    let mut findings = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.is_test_line(t.line) {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        if !matches!(name, "store" | "swap") {
            continue;
        }
        let is_method_call = i > 0
            && ctx.toks[i - 1].is_punct('.')
            && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !is_method_call {
            continue;
        }
        // Scan the argument list for `Relaxed`.
        let mut depth = 0usize;
        for a in &ctx.toks[i + 1..] {
            match &a.kind {
                TokKind::Punct('(') => depth += 1,
                TokKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident(arg) if arg == "Relaxed" => {
                    findings.push((
                        t.line,
                        format!(
                            "`.{name}(…, Ordering::Relaxed)` outside the kpm-obs gate; \
                             atomics that publish state need `Release`/`SeqCst` (relaxed \
                             counters may only use load/fetch_add)"
                        ),
                    ));
                    break;
                }
                _ => {}
            }
        }
    }
    for (line, msg) in findings {
        ctx.report("relaxed_store", line, msg);
    }
}

/// Doc-comment coverage for public items in library code.
fn doc_coverage(ctx: &mut Ctx<'_>) {
    let mut findings = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.ident() != Some("pub") || ctx.is_test_line(t.line) {
            continue;
        }
        // `pub(crate)` / `pub(super)` are not public API.
        if ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        // Scan past qualifier keywords to the item keyword.
        let mut j = i + 1;
        let mut item = None;
        while let Some(n) = ctx.toks.get(j) {
            match n.ident() {
                Some("unsafe") | Some("const") | Some("async") | Some("extern") => j += 1,
                Some(k) => {
                    item = Some((k.to_string(), j));
                    break;
                }
                None if n.kind == TokKind::Str => j += 1, // extern "C"
                None => break,
            }
        }
        let Some((kind, j)) = item else { continue };
        if !matches!(kind.as_str(), "fn" | "struct" | "enum" | "trait") {
            continue;
        }
        // `const fn` already matched via qualifier skip; the name is
        // the next ident.
        let item_name = ctx
            .toks
            .get(j + 1)
            .and_then(|n| n.ident())
            .unwrap_or("<unnamed>")
            .to_string();
        if !has_adjacent_doc(ctx, t.line) {
            findings.push((
                t.line,
                format!("public {kind} `{item_name}` has no doc comment"),
            ));
        }
    }
    for (line, msg) in findings {
        ctx.report("doc_coverage", line, msg);
    }
}

/// Walks upward from `line` through attribute/comment lines looking
/// for a doc comment.
fn has_adjacent_doc(ctx: &Ctx<'_>, line: u32) -> bool {
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let info = ctx.line_info(l);
        if info.has_doc {
            return true;
        }
        let skippable = !info.has_code && (info.has_comment || info.has_attr);
        if !skippable {
            return false;
        }
        l -= 1;
    }
    false
}

/// kpm-obs recording entry points (public unit-returning fns) must
/// check `enabled()` before taking the registry lock or reading the
/// clock. Query/snapshot APIs return values, so they are exempt by
/// shape; deliberate exceptions carry a suppression marker.
fn obs_gate(ctx: &mut Ctx<'_>) {
    let mut findings = Vec::new();
    let mut i = 0;
    while i < ctx.toks.len() {
        let t = &ctx.toks[i];
        if t.ident() != Some("pub")
            || ctx.is_test_line(t.line)
            || ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            i += 1;
            continue;
        }
        // Find `fn` within the qualifier window.
        let mut j = i + 1;
        while ctx
            .toks
            .get(j)
            .and_then(|n| n.ident())
            .is_some_and(|k| matches!(k, "unsafe" | "const" | "async" | "extern"))
        {
            j += 1;
        }
        if ctx.toks.get(j).and_then(|n| n.ident()) != Some("fn") {
            i += 1;
            continue;
        }
        let fn_line = t.line;
        let fn_name = ctx
            .toks
            .get(j + 1)
            .and_then(|n| n.ident())
            .unwrap_or("<unnamed>")
            .to_string();
        // Parameter list: first `(` after the name, to its match.
        let Some(po) = (j + 1..ctx.toks.len()).find(|&k| ctx.toks[k].is_punct('(')) else {
            i = j + 1;
            continue;
        };
        let mut depth = 0usize;
        let mut pc = po;
        while pc < ctx.toks.len() {
            if ctx.toks[pc].is_punct('(') {
                depth += 1;
            } else if ctx.toks[pc].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            pc += 1;
        }
        // Signature tail up to the body brace: a `->` means the fn
        // returns a value (query API) and is exempt.
        let mut k = pc + 1;
        let mut returns_value = false;
        while k < ctx.toks.len() && !ctx.toks[k].is_punct('{') && !ctx.toks[k].is_punct(';') {
            if ctx.toks[k].is_punct('-') && ctx.toks.get(k + 1).is_some_and(|n| n.is_punct('>')) {
                returns_value = true;
            }
            k += 1;
        }
        if returns_value || k >= ctx.toks.len() || ctx.toks[k].is_punct(';') {
            i = k + 1;
            continue;
        }
        // Body span.
        let body_start = k;
        let mut bd = 0usize;
        let mut be = body_start;
        while be < ctx.toks.len() {
            if ctx.toks[be].is_punct('{') {
                bd += 1;
            } else if ctx.toks[be].is_punct('}') {
                bd -= 1;
                if bd == 0 {
                    break;
                }
            }
            be += 1;
        }
        let body = &ctx.toks[body_start..=be.min(ctx.toks.len() - 1)];
        let first_hot = body.iter().position(|b| is_lock_or_clock(body, b));
        let first_gate = body
            .windows(2)
            .position(|w| w[0].ident() == Some("enabled") && w[1].is_punct('('));
        if let Some(hot) = first_hot {
            let gated = first_gate.is_some_and(|g| g < hot);
            if !gated {
                findings.push((
                    fn_line,
                    format!(
                        "recording entry point `{fn_name}` takes a lock or reads the clock \
                         without first checking `enabled()`; the disabled path must be a \
                         single relaxed load"
                    ),
                ));
            }
        }
        i = be + 1;
    }
    for (line, msg) in findings {
        ctx.report("obs_gate", line, msg);
    }
}

/// Calls whose first string-literal argument is a metric/span/event
/// name registered with `kpm-obs`. Method-call forms (`.record(`)
/// never name registry entries and are skipped.
const OBS_NAME_CALLS: &[&str] = &[
    "span",
    "record_manual",
    "counter_add",
    "counter_inc",
    "gauge_set",
    "gauge_max",
    "hist_record",
    "hist_record_ns",
    "record",
    "note",
];

/// True when `name` is a dot-separated lowercase path
/// (`svc.queue.wait_ns`): at least two segments, each starting with a
/// letter, using only `[a-z0-9_]`.
fn is_obs_label(name: &str) -> bool {
    let mut segments = 0usize;
    for seg in name.split('.') {
        let mut chars = seg.chars();
        match chars.next() {
            Some(c) if c.is_ascii_lowercase() => {}
            _ => return false,
        }
        if !chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_') {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// `obs_label`: every name handed to the kpm-obs registries —
/// `span("...")`, `metrics::counter_add("...")`, `hist::record("...")`,
/// `recorder::note("...")`, ... — is a dot-separated lowercase path, so
/// trace viewers and the Prometheus exposition group by subsystem
/// prefix. Scans raw source lines (the lexer drops string payloads);
/// test code and comment lines are exempt.
fn obs_label(ctx: &mut Ctx<'_>, src: &str) {
    let mut findings = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        if ctx.is_test_line(lineno) || line.trim_start().starts_with("//") {
            continue;
        }
        let bytes = line.as_bytes();
        for call in OBS_NAME_CALLS {
            let mut from = 0usize;
            while let Some(pos) = line[from..].find(call) {
                let start = from + pos;
                let after = start + call.len();
                from = after;
                // Identifier boundary before, `("` immediately after:
                // `hist_record(` must not also match as `record(`, and
                // `.note(`-style method calls are not registry names.
                let prev = start.checked_sub(1).map(|p| bytes[p] as char);
                if prev.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.') {
                    continue;
                }
                let rest = &line[after..];
                let Some(arg) = rest.strip_prefix("(\"") else {
                    continue;
                };
                let Some(end) = arg.find('"') else { continue };
                let name = &arg[..end];
                if !is_obs_label(name) {
                    findings.push((
                        lineno,
                        format!(
                            "`{call}(\"{name}\", ...)`: kpm-obs names are dot-separated \
                             lowercase paths like `svc.queue.wait_ns`"
                        ),
                    ));
                }
            }
        }
    }
    for (line, msg) in findings {
        ctx.report("obs_label", line, msg);
    }
}

/// True when the token is the `lock` of `.lock(` or the `Instant` of
/// `Instant::now`.
fn is_lock_or_clock(body: &[CTok], t: &CTok) -> bool {
    let idx = body
        .iter()
        .position(|b| std::ptr::eq(b, t))
        .unwrap_or(usize::MAX);
    if idx == usize::MAX {
        return false;
    }
    match t.ident() {
        Some("lock") => {
            idx > 0
                && body[idx - 1].is_punct('.')
                && body.get(idx + 1).is_some_and(|n| n.is_punct('('))
        }
        Some("Instant") | Some("SystemTime") => {
            body.get(idx + 1).is_some_and(|n| n.is_punct(':'))
                && body.get(idx + 2).is_some_and(|n| n.is_punct(':'))
                && body
                    .get(idx + 3)
                    .and_then(|n| n.ident())
                    .is_some_and(|m| m == "now")
        }
        _ => false,
    }
}
