//! kpm-analyze: zero-dependency static analysis for the KPM
//! workspace.
//!
//! Two subsystems share this crate:
//!
//! - [`lints`] — a token-level lint engine over hand-lexed Rust
//!   source ([`lexer`]), enforcing the workspace's domain rules
//!   (panic-freedom in kernel crates, `// SAFETY:` adjacency,
//!   allocation-free hot loops, ordering discipline, doc coverage,
//!   the kpm-obs disabled-path gate). Diagnostics ([`diag`]) render
//!   both human `file:line` text and machine-readable JSON.
//! - [`sched`] — a loom-style deterministic schedule explorer for
//!   the hetsim runtime protocol (send/recv/timeout, stash, dedup,
//!   checkpoint), proving deadlock-freedom and exactly-once delivery
//!   across every interleaving of small rank models.
//!
//! `scripts/verify.sh` runs both as hard gates; see DESIGN.md §9.

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod cfg;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod passes;
pub mod sarif;
pub mod sched;
pub mod workspace;

pub use diag::{render_json, render_json_report, Diagnostic};
pub use lints::{analyze_source, FileClass, FileInput, RULES};
pub use sarif::render_sarif;
pub use workspace::{analyze_sources, analyze_workspace, run_workspace, Report};
