//! Diagnostics: the lint engine's output type, human rendering, and
//! hand-rolled machine-readable JSON (the workspace is offline, so no
//! serde — same policy as `kpm-obs`).

use std::fmt::Write as _;

/// One finding: a rule violated at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired (e.g. `no_panic`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// What is wrong, in one sentence.
    pub message: String,
    /// How to silence the finding when it is intentional.
    pub hint: String,
}

impl Diagnostic {
    /// The standard suppression hint for `rule`.
    pub fn suppression_hint(rule: &str) -> String {
        format!("suppress with `// kpm::allow({rule}): <justification>` on or above the line")
    }

    /// `file:line: [rule] message` — the human-readable form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}\n    hint: {}",
            self.file, self.line, self.rule, self.message, self.hint
        )
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full report as one JSON document:
/// `{"tool":"kpm-analyze","files_scanned":N,"diagnostics":[...]}`.
pub fn render_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    render_json_with(diags, files_scanned, &[], &[])
}

/// [`render_json`] plus the per-rule finding counts and per-pass
/// timing the workspace driver collects: adds a `"rule_counts"`
/// object (every registered rule, zeros included) and a `"passes"`
/// array of `{"name", "ms"}` in execution order.
pub fn render_json_report(report: &crate::workspace::Report) -> String {
    render_json_with(
        &report.diags,
        report.files_scanned,
        &report.rule_counts,
        &report.passes,
    )
}

fn render_json_with(
    diags: &[Diagnostic],
    files_scanned: usize,
    rule_counts: &[(&'static str, usize)],
    passes: &[(&'static str, f64)],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"tool\": \"kpm-analyze\",");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"diagnostic_count\": {},", diags.len());
    if !rule_counts.is_empty() {
        out.push_str("  \"rule_counts\": {");
        for (i, (rule, n)) in rule_counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {n}", json_escape(rule));
        }
        out.push_str("\n  },\n");
    }
    if !passes.is_empty() {
        out.push_str("  \"passes\": [");
        for (i, (name, ms)) in passes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"ms\": {ms:.3}}}",
                json_escape(name)
            );
        }
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"hint\": \"{}\"",
            json_escape(d.rule),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message),
            json_escape(&d.hint)
        );
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_report_shape() {
        let d = Diagnostic {
            rule: "no_panic",
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "call to `.unwrap()`".into(),
            hint: Diagnostic::suppression_hint("no_panic"),
        };
        let j = render_json(&[d], 3);
        assert!(j.contains("\"files_scanned\": 3"));
        assert!(j.contains("\"diagnostic_count\": 1"));
        assert!(j.contains("\"line\": 7"));
        assert!(j.contains("kpm::allow(no_panic)"));
    }

    #[test]
    fn empty_report_is_valid() {
        let j = render_json(&[], 0);
        assert!(j.contains("\"diagnostics\": []"));
    }
}
