//! Seeded-bug fixtures for the AST/call-graph dataflow passes: each
//! pass gets a fixture with a planted bug it must catch, a conforming
//! fixture it must stay quiet on, and (where the mechanism differs
//! from the token rules) a suppression/vetting fixture. These drive
//! [`kpm_analyze::analyze_sources`] end to end — lexer, parser, call
//! graph, CFG dataflow, suppression filtering, and the
//! unused-suppression audit.

use kpm_analyze::lints::{FileClass, FileInput};
use kpm_analyze::workspace::Report;
use kpm_analyze::Diagnostic;

fn input(crate_name: &str, path: &str) -> FileInput {
    FileInput {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        class: FileClass::Lib,
    }
}

fn scan_files(files: &[(&str, &str, &str)]) -> Report {
    kpm_analyze::analyze_sources(
        files
            .iter()
            .map(|(krate, path, src)| (input(krate, path), src.to_string()))
            .collect(),
    )
}

fn with_rule<'a>(report: &'a Report, rule: &str) -> Vec<&'a Diagnostic> {
    report.diags.iter().filter(|d| d.rule == rule).collect()
}

// ------------------------------------------------------------ lock_order

#[test]
fn lock_order_catches_seeded_ab_ba_deadlock() {
    let src = r#"
/// Two locks taken in both orders: the classic AB-BA deadlock.
pub struct Pair {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}

impl Pair {
    /// Doc.
    pub fn forward(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }

    /// Doc.
    pub fn backward(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gb);
    }
}
"#;
    let report = scan_files(&[("kpm-sparse", "crates/kpm-sparse/src/pair.rs", src)]);
    let hits = with_rule(&report, "lock_order");
    assert!(
        !hits.is_empty(),
        "AB-BA deadlock not caught: {:?}",
        report.diags
    );
    assert!(hits[0].message.contains("a") && hits[0].message.contains("b"));
}

#[test]
fn lock_order_quiet_on_consistent_order_and_early_drop() {
    let src = r#"
/// Same two locks, always in the same order — no cycle.
pub struct Pair {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}

impl Pair {
    /// Doc.
    pub fn one(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }

    /// Doc.
    pub fn two(&self) {
        let ga = self.a.lock();
        drop(ga);
        let gb = self.b.lock();
        let ga2 = self.a.lock();
        drop(ga2);
        drop(gb);
    }
}
"#;
    // `two` re-acquires `a` under `b`, but only after releasing the
    // first `a` guard — still b->a only... which closes the a->b / b->a
    // cycle with `one`. That IS a deadlock; assert the pass sees it.
    let report = scan_files(&[("kpm-sparse", "crates/kpm-sparse/src/pair.rs", src)]);
    assert!(!with_rule(&report, "lock_order").is_empty());

    // Truly consistent ordering scans clean.
    let clean = r#"
/// Consistent order.
pub struct Pair {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}

impl Pair {
    /// Doc.
    pub fn one(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }

    /// Doc.
    pub fn two(&self) {
        let ga = self.a.lock();
        drop(ga);
        let gb = self.b.lock();
        drop(gb);
    }
}
"#;
    let report = scan_files(&[("kpm-sparse", "crates/kpm-sparse/src/pair.rs", clean)]);
    assert!(
        with_rule(&report, "lock_order").is_empty(),
        "{:?}",
        report.diags
    );
}

#[test]
fn lock_order_sees_cycle_through_call_graph() {
    // `forward` holds `a` and calls a helper that takes `b`; `backward`
    // does the reverse through its own helper. No single function shows
    // both orders — only the transitive closure does.
    let src = r#"
/// Doc.
pub struct Pair {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}

impl Pair {
    fn touch_b(&self) {
        let gb = self.b.lock();
        drop(gb);
    }

    fn touch_a(&self) {
        let ga = self.a.lock();
        drop(ga);
    }

    /// Doc.
    pub fn forward(&self) {
        let ga = self.a.lock();
        self.touch_b();
        drop(ga);
    }

    /// Doc.
    pub fn backward(&self) {
        let gb = self.b.lock();
        self.touch_a();
        drop(gb);
    }
}
"#;
    let report = scan_files(&[("kpm-sparse", "crates/kpm-sparse/src/pair.rs", src)]);
    assert!(
        !with_rule(&report, "lock_order").is_empty(),
        "transitive AB-BA not caught: {:?}",
        report.diags
    );
}

// ---------------------------------------------------------- atomic_order

#[test]
fn atomic_order_catches_relaxed_store_acquire_load_mismatch() {
    let src = r#"
/// Doc.
pub struct Flag {
    ready: std::sync::atomic::AtomicBool,
}

impl Flag {
    /// Doc.
    pub fn publish(&self) {
        self.ready.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Doc.
    pub fn consume(&self) -> bool {
        self.ready.load(std::sync::atomic::Ordering::Acquire)
    }
}
"#;
    let report = scan_files(&[("kpm-num", "crates/kpm-num/src/flag.rs", src)]);
    let hits = with_rule(&report, "atomic_order");
    assert!(
        !hits.is_empty(),
        "store/load mismatch not caught: {:?}",
        report.diags
    );
    assert!(hits.iter().any(|d| d.message.contains("ready")));
}

#[test]
fn atomic_order_quiet_on_release_acquire_pair_and_ledger_seqcst() {
    let paired = r#"
/// Doc.
pub struct Flag {
    ready: std::sync::atomic::AtomicBool,
}

impl Flag {
    /// Doc.
    pub fn publish(&self) {
        self.ready.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Doc.
    pub fn consume(&self) -> bool {
        self.ready.load(std::sync::atomic::Ordering::Acquire)
    }
}
"#;
    let report = scan_files(&[("kpm-num", "crates/kpm-num/src/flag.rs", paired)]);
    assert!(
        with_rule(&report, "atomic_order").is_empty(),
        "{:?}",
        report.diags
    );

    // The service Ledger's cross-variable protocol keeps SeqCst.
    let ledger = r#"
/// Doc.
pub struct Svc {
    ledger: Ledger,
}

impl Svc {
    /// Doc.
    pub fn admit(&self) {
        self.ledger.admitted.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }
}
"#;
    let report = scan_files(&[("kpm-service", "crates/kpm-service/src/svc.rs", ledger)]);
    assert!(
        with_rule(&report, "atomic_order").is_empty(),
        "{:?}",
        report.diags
    );
}

#[test]
fn atomic_order_flags_gratuitous_seqcst_outside_service_ledger() {
    let src = r#"
/// Doc.
pub fn bump(n: &std::sync::atomic::AtomicU64) {
    n.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
}
"#;
    let report = scan_files(&[("kpm-core", "crates/kpm-core/src/stats.rs", src)]);
    let hits = with_rule(&report, "atomic_order");
    assert_eq!(hits.len(), 1, "{:?}", report.diags);
    assert_eq!(hits[0].line, 4);
    assert!(hits[0].message.contains("SeqCst"));
}

// ------------------------------------------------------------ det_reduce

#[test]
fn det_reduce_catches_seeded_par_sum() {
    let src = r#"
/// Doc.
pub fn norm_sq(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * x).sum()
}
"#;
    let report = scan_files(&[("kpm-num", "crates/kpm-num/src/norm.rs", src)]);
    let hits = with_rule(&report, "det_reduce");
    assert_eq!(hits.len(), 1, "{:?}", report.diags);
    assert_eq!(hits[0].line, 4);
    assert!(hits[0].message.contains("pairwise_sum"));
}

#[test]
fn det_reduce_quiet_on_serial_sum_and_suppressed_par_fold() {
    let serial = r#"
/// Doc.
pub fn norm_sq(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum()
}
"#;
    let report = scan_files(&[("kpm-num", "crates/kpm-num/src/norm.rs", serial)]);
    assert!(
        with_rule(&report, "det_reduce").is_empty(),
        "{:?}",
        report.diags
    );

    let vetted = r#"
/// Doc.
pub fn histogram_mass(xs: &[f64]) -> f64 {
    // kpm::allow(det_reduce): integer-valued bin counts; fp addition is exact here
    xs.par_iter().map(|x| x.floor()).sum()
}
"#;
    let report = scan_files(&[("kpm-num", "crates/kpm-num/src/hist.rs", vetted)]);
    assert!(
        with_rule(&report, "det_reduce").is_empty(),
        "{:?}",
        report.diags
    );
    assert!(with_rule(&report, "unused_suppression").is_empty());
}

// ------------------------------------------------------------ panic_path

#[test]
fn panic_path_catches_cross_crate_unwrap() {
    let helper = r#"
/// Doc.
pub fn risky_read(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
    let kernel = r#"
/// Doc.
pub fn eval(v: Option<u32>) -> u32 {
    risky_read(v)
}
"#;
    let report = scan_files(&[
        (
            "kpm-perfmodel",
            "crates/kpm-perfmodel/src/helper.rs",
            helper,
        ),
        ("kpm-core", "crates/kpm-core/src/eval.rs", kernel),
    ]);
    let hits = with_rule(&report, "panic_path");
    assert_eq!(hits.len(), 1, "{:?}", report.diags);
    assert_eq!(hits[0].file, "crates/kpm-core/src/eval.rs");
    assert_eq!(hits[0].line, 4);
    assert!(hits[0].message.contains("risky_read"));
    assert!(
        hits[0].message.contains("helper.rs:4"),
        "{}",
        hits[0].message
    );
}

#[test]
fn panic_path_vetted_source_site_does_not_propagate() {
    let helper = r#"
/// Doc.
pub fn risky_read(x: Option<u32>) -> u32 {
    // kpm::allow(panic_path): caller guarantees Some; checked at construction
    x.unwrap()
}
"#;
    let kernel = r#"
/// Doc.
pub fn eval(v: Option<u32>) -> u32 {
    risky_read(v)
}
"#;
    let report = scan_files(&[
        (
            "kpm-perfmodel",
            "crates/kpm-perfmodel/src/helper.rs",
            helper,
        ),
        ("kpm-core", "crates/kpm-core/src/eval.rs", kernel),
    ]);
    assert!(
        with_rule(&report, "panic_path").is_empty(),
        "{:?}",
        report.diags
    );
    // The vetting marker counted as used — the audit stays quiet.
    assert!(
        with_rule(&report, "unused_suppression").is_empty(),
        "{:?}",
        report.diags
    );
}

// ------------------------------------------------------- blocking_in_hot

#[test]
fn blocking_in_hot_catches_lock_behind_helper_in_kernel_loop() {
    let src = r#"
/// Doc.
pub fn spmv_sweep(y: &mut [f64], m: &std::sync::Mutex<f64>) {
    for v in y.iter_mut() {
        scaled(v, m);
    }
}

fn scaled(v: &mut f64, m: &std::sync::Mutex<f64>) {
    let g = m.lock();
    drop(g);
}
"#;
    let report = scan_files(&[("kpm-sparse", "crates/kpm-sparse/src/spmv.rs", src)]);
    let hits = with_rule(&report, "blocking_in_hot");
    assert!(
        !hits.is_empty(),
        "lock behind helper not caught: {:?}",
        report.diags
    );
    assert!(hits[0].message.contains(".lock()"), "{}", hits[0].message);
}

#[test]
fn blocking_in_hot_quiet_outside_hot_files_and_without_blocking() {
    // The same shape in a non-hot file of the same crate is fine.
    let src = r#"
/// Doc.
pub fn assemble(y: &mut [f64], m: &std::sync::Mutex<f64>) {
    for v in y.iter_mut() {
        let g = m.lock();
        drop(g);
    }
}
"#;
    let report = scan_files(&[("kpm-sparse", "crates/kpm-sparse/src/build_mat.rs", src)]);
    assert!(
        with_rule(&report, "blocking_in_hot").is_empty(),
        "{:?}",
        report.diags
    );

    // A hot file whose loops stay lock-free scans clean.
    let clean = r#"
/// Doc.
pub fn spmv_sweep(y: &mut [f64], x: &[f64]) {
    for (v, xi) in y.iter_mut().zip(x) {
        *v += xi * 2.0;
    }
}
"#;
    let report = scan_files(&[("kpm-sparse", "crates/kpm-sparse/src/spmv.rs", clean)]);
    assert!(
        with_rule(&report, "blocking_in_hot").is_empty(),
        "{:?}",
        report.diags
    );
}

// ------------------------------------------------- unused_suppression

#[test]
fn unused_suppression_flags_stale_marker() {
    let src = r#"
/// Doc.
pub fn fine() -> u32 {
    // kpm::allow(no_panic): nothing here panics any more
    7
}
"#;
    let report = scan_files(&[("kpm-sparse", "crates/kpm-sparse/src/lib.rs", src)]);
    let hits = with_rule(&report, "unused_suppression");
    assert_eq!(hits.len(), 1, "{:?}", report.diags);
    assert_eq!(hits[0].line, 4);
    assert!(hits[0].message.contains("no_panic"));
}

#[test]
fn unused_suppression_respects_its_own_allow_and_real_uses() {
    // A used marker is not stale.
    let used = r#"
/// Doc.
pub fn f(x: Option<u32>) -> u32 {
    // kpm::allow(no_panic): validated at parse time
    x.unwrap()
}
"#;
    let report = scan_files(&[("kpm-sparse", "crates/kpm-sparse/src/lib.rs", used)]);
    assert!(
        with_rule(&report, "unused_suppression").is_empty(),
        "{:?}",
        report.diags
    );
    assert!(with_rule(&report, "no_panic").is_empty());

    // A deliberately kept stale marker can be vetted by the audit's
    // own allow directly above it.
    let vetted = r#"
/// Doc.
pub fn fine() -> u32 {
    // kpm::allow(unused_suppression): documents the historical hazard below
    // kpm::allow(no_panic): nothing here panics any more
    7
}
"#;
    let report = scan_files(&[("kpm-sparse", "crates/kpm-sparse/src/lib.rs", vetted)]);
    assert!(
        with_rule(&report, "unused_suppression").is_empty(),
        "{:?}",
        report.diags
    );
}

// ------------------------------------------------------- report plumbing

#[test]
fn report_carries_rule_counts_and_pass_timings() {
    let src = r#"
/// Doc.
pub fn norm_sq(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * x).sum()
}
"#;
    let report = scan_files(&[("kpm-num", "crates/kpm-num/src/norm.rs", src)]);
    let det = report
        .rule_counts
        .iter()
        .find(|(r, _)| *r == "det_reduce")
        .expect("det_reduce registered");
    assert_eq!(det.1, 1);
    // Every registered rule appears, zeros included.
    assert!(report
        .rule_counts
        .iter()
        .any(|(r, n)| *r == "lock_order" && *n == 0));
    let names: Vec<&str> = report.passes.iter().map(|(n, _)| *n).collect();
    for expected in [
        "token_rules",
        "callgraph",
        "lock_order",
        "atomic_order",
        "det_reduce",
        "panic_path",
        "blocking_in_hot",
        "suppression_audit",
    ] {
        assert!(
            names.contains(&expected),
            "missing pass {expected}: {names:?}"
        );
    }
    // JSON rendering carries both blocks.
    let json = kpm_analyze::render_json_report(&report);
    assert!(json.contains("\"rule_counts\""));
    assert!(json.contains("\"det_reduce\": 1"));
    assert!(json.contains("\"passes\""));
    // SARIF rendering locates the finding.
    let sarif = kpm_analyze::render_sarif(&report);
    assert!(sarif.contains("\"ruleId\": \"det_reduce\""));
    assert!(sarif.contains("\"uri\": \"crates/kpm-num/src/norm.rs\""));
}
