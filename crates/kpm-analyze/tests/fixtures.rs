//! Fixture tests for every lint rule: each rule is exercised on a
//! violating fixture (hit), a conforming fixture (miss), and a
//! suppressed fixture, plus the explorer's own positive and negative
//! models.

use kpm_analyze::lints::{analyze_source, FileClass, FileInput};
use kpm_analyze::sched::{self, Config, Op, Violation};
use kpm_analyze::Diagnostic;

fn scan(crate_name: &str, class: FileClass, path: &str, src: &str) -> Vec<Diagnostic> {
    let input = FileInput {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        class,
    };
    analyze_source(&input, src)
}

fn kernel_lib(src: &str) -> Vec<Diagnostic> {
    scan(
        "kpm-sparse",
        FileClass::Lib,
        "crates/kpm-sparse/src/lib.rs",
        src,
    )
}

fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

// ------------------------------------------------------------- no_panic

#[test]
fn no_panic_hit_unwrap_and_macros() {
    let src = r#"
/// Doc.
pub fn f(x: Option<u32>) -> u32 {
    let y = x.unwrap();
    if y > 3 { panic!("boom"); }
    y
}
"#;
    let diags = kernel_lib(src);
    assert_eq!(rules(&diags), vec!["no_panic", "no_panic"]);
    assert_eq!(diags[0].line, 4);
    assert!(diags[0].message.contains(".unwrap()"));
    assert_eq!(diags[1].line, 5);
}

#[test]
fn no_panic_miss_in_test_code_and_non_kernel_crates() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v: Option<u32> = Some(1);
        v.unwrap();
        panic!("fine in tests");
    }
}
"#;
    assert!(kernel_lib(src).is_empty());
    // Same panicking code outside a kernel crate is not flagged.
    let src = "/// D.\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(scan(
        "kpm-perfmodel",
        FileClass::Lib,
        "crates/kpm-perfmodel/src/lib.rs",
        src
    )
    .is_empty());
    // ... nor in a kernel crate's integration tests.
    assert!(scan(
        "kpm-sparse",
        FileClass::Test,
        "crates/kpm-sparse/tests/t.rs",
        src
    )
    .is_empty());
}

#[test]
fn no_panic_ident_without_call_is_not_flagged() {
    let src = "/// D.\npub fn unwrap() {}\n";
    assert!(kernel_lib(src).is_empty());
}

#[test]
fn no_panic_suppressed_with_justification() {
    let src = r#"
/// Doc.
pub fn f(x: Option<u32>) -> u32 {
    // kpm::allow(no_panic): documented panicking wrapper
    x.unwrap()
}
"#;
    assert!(kernel_lib(src).is_empty());
}

// ------------------------------------------------------- safety_comment

#[test]
fn safety_comment_hit_block_and_impl() {
    let src = r#"
/// Doc.
pub fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
/// Doc.
pub struct W(*mut u8);
unsafe impl Send for W {}
"#;
    let diags = kernel_lib(src);
    assert_eq!(rules(&diags), vec!["safety_comment", "safety_comment"]);
    assert!(diags[0].message.contains("unsafe block"));
    assert!(diags[1].message.contains("unsafe impl"));
}

#[test]
fn safety_comment_miss_when_adjacent() {
    let src = r#"
/// Doc.
pub fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { *p }
}
/// Doc.
pub struct W(*mut u8);
// SAFETY: W owns its allocation exclusively.
unsafe impl Send for W {}
"#;
    assert!(kernel_lib(src).is_empty());
}

#[test]
fn safety_comment_not_adjacent_across_code_line() {
    let src = r#"
/// Doc.
pub fn f(p: *const u8) -> u8 {
    // SAFETY: stale comment, separated by a code line.
    let _x = 1;
    unsafe { *p }
}
"#;
    let diags = kernel_lib(src);
    assert_eq!(rules(&diags), vec!["safety_comment"]);
}

#[test]
fn safety_comment_suppressed() {
    let src = r#"
/// Doc.
pub fn f(p: *const u8) -> u8 {
    // kpm::allow(safety_comment): invariant documented on the module
    unsafe { *p }
}
"#;
    assert!(kernel_lib(src).is_empty());
}

// ------------------------------------------------------- hot_loop_alloc

fn hot_file(src: &str) -> Vec<Diagnostic> {
    scan(
        "kpm-sparse",
        FileClass::Lib,
        "crates/kpm-sparse/src/spmv.rs",
        src,
    )
}

#[test]
fn hot_loop_alloc_hit_in_loop() {
    let src = r#"
/// Doc.
pub fn f(xs: &[Vec<f64>]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        let copy = x.to_vec();
        let tmp = vec![0.0; 4];
        acc += copy[0] + tmp[0];
    }
    acc
}
"#;
    let diags = hot_file(src);
    assert_eq!(rules(&diags), vec!["hot_loop_alloc", "hot_loop_alloc"]);
    assert!(diags[0].message.contains(".to_vec()"));
    assert!(diags[1].message.contains("`vec!`"));
}

#[test]
fn hot_loop_alloc_miss_outside_loop_and_outside_hot_files() {
    let src = r#"
/// Doc.
pub fn f(xs: &[f64]) -> Vec<f64> {
    let mut out = xs.to_vec();
    for x in &mut out {
        *x += 1.0;
    }
    out
}
"#;
    assert!(hot_file(src).is_empty());
    // The same in-loop allocation in a non-hot file is allowed.
    let src = "/// D.\npub fn f(xs: &[Vec<f64>]) { for x in xs { let _c = x.to_vec(); } }\n";
    assert!(scan(
        "kpm-sparse",
        FileClass::Lib,
        "crates/kpm-sparse/src/crs.rs",
        src
    )
    .is_empty());
}

#[test]
fn hot_loop_alloc_impl_trait_for_is_not_a_loop() {
    let src = r#"
/// Doc.
pub struct S;
impl Clone for S {
    fn clone(&self) -> S {
        let v = Vec::<u8>::new();
        drop(v);
        S
    }
}
"#;
    assert!(hot_file(src).is_empty());
}

#[test]
fn hot_loop_alloc_suppressed() {
    let src = r#"
/// Doc.
pub fn f(xs: &[Vec<f64>]) {
    for x in xs {
        // kpm::allow(hot_loop_alloc): cold setup loop, not the kernel
        let _c = x.to_vec();
    }
}
"#;
    assert!(hot_file(src).is_empty());
}

// ---------------------------------------------------- simd_scalar_tail

fn simd_file(src: &str) -> Vec<Diagnostic> {
    scan(
        "kpm-sparse",
        FileClass::Lib,
        "crates/kpm-sparse/src/aug_sell_simd.rs",
        src,
    )
}

#[test]
fn simd_scalar_tail_hit_when_remainder_is_dropped() {
    let src = r#"
/// Doc.
pub fn f(a: &mut [f64]) {
    for g in a.chunks_exact_mut(4) {
        g[0] += 1.0;
    }
}
"#;
    let diags = simd_file(src);
    assert_eq!(rules(&diags), vec!["simd_scalar_tail"]);
    assert_eq!(diags[0].line, 4);
    assert!(diags[0].message.contains("remainder"));
}

#[test]
fn simd_scalar_tail_miss_when_tail_is_handled_or_file_is_cold() {
    // The canonical shape: full groups vectorized, leftover elements
    // consumed from the same iterator's remainder in the same fn.
    let src = r#"
/// Doc.
pub fn f(a: &mut [f64]) {
    let mut groups = a.chunks_exact_mut(4);
    for g in groups.by_ref() {
        g[0] += 1.0;
    }
    for x in groups.into_remainder() {
        *x += 1.0;
    }
}
"#;
    assert!(simd_file(src).is_empty());
    // A handler in one fn does not vet a dropped tail in another.
    let src = r#"
/// Doc.
pub fn good(a: &mut [f64]) {
    let mut groups = a.chunks_exact_mut(4);
    for g in groups.by_ref() { g[0] += 1.0; }
    for x in groups.into_remainder() { *x += 1.0; }
}
/// Doc.
pub fn bad(a: &[f64]) -> f64 {
    let mut s = 0.0;
    for g in a.chunks_exact(4) { s += g[0]; }
    s
}
"#;
    assert_eq!(rules(&simd_file(src)), vec!["simd_scalar_tail"]);
    // The same dropped tail outside the hot kernel files is allowed.
    let src = "/// D.\npub fn f(a: &[f64]) -> f64 { a.chunks_exact(4).map(|g| g[0]).sum() }\n";
    assert!(scan(
        "kpm-sparse",
        FileClass::Lib,
        "crates/kpm-sparse/src/crs.rs",
        src
    )
    .is_empty());
    // Test code is exempt: exactness is often the point of a test.
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let a = [1.0f64; 7];
        for g in a.chunks_exact(4) { let _ = g[0]; }
    }
}
"#;
    assert!(simd_file(src).is_empty());
}

#[test]
fn simd_scalar_tail_suppressed() {
    let src = r#"
/// Doc.
pub fn f(a: &mut [f64]) {
    // kpm::allow(simd_scalar_tail): caller pads `a` to a lane multiple
    for g in a.chunks_exact_mut(4) {
        g[0] += 1.0;
    }
}
"#;
    assert!(simd_file(src).is_empty());
}

// ----------------------------------------------------- hot_loop_convert

#[test]
fn hot_loop_convert_hit_in_any_kernel_crate_file() {
    // Unlike hot_loop_alloc the rule is not limited to the hot kernel
    // files: a per-iteration format rebuild is a bug anywhere in the
    // kernel crates.
    let src = r#"
/// Doc.
pub fn sweep(h: &CrsMatrix, cs: &[usize]) -> usize {
    let mut total = 0;
    for c in cs {
        let sell = SellMatrix::from_crs(h, *c, *c);
        total += sell.stored_elements();
    }
    total
}
"#;
    let diags = scan(
        "kpm-core",
        FileClass::Lib,
        "crates/kpm-core/src/solver.rs",
        src,
    );
    assert_eq!(rules(&diags), vec!["hot_loop_convert"]);
    assert!(diags[0].message.contains("from_crs"));
    assert_eq!(diags[0].line, 6);
}

#[test]
fn hot_loop_convert_miss_outside_loops_and_kernel_crates() {
    // A one-shot conversion before the loop is the recommended shape.
    let src = r#"
/// Doc.
pub fn solve(h: &CrsMatrix) -> f64 {
    let sell = SellMatrix::try_from_crs(h, 8, 32).unwrap_or_default();
    let mut acc = 0.0;
    for _ in 0..10 {
        acc += sell.beta();
    }
    acc
}
"#;
    assert!(scan(
        "kpm-hetsim",
        FileClass::Lib,
        "crates/kpm-hetsim/src/decomp.rs",
        src
    )
    .iter()
    .all(|d| d.rule != "hot_loop_convert"));
    // The same in-loop conversion outside the kernel crates is allowed.
    let src =
        "/// D.\npub fn f(h: &CrsMatrix) { for c in 1..4 { SellMatrix::from_crs(h, c, c); } }\n";
    assert!(scan(
        "kpm-bench",
        FileClass::Lib,
        "crates/kpm-bench/src/lib.rs",
        src
    )
    .is_empty());
    // A `fn from_crs(` definition is not a call.
    let src = "/// D.\npub fn g() { for _ in 0..2 { fn from_crs() {} from_crs(); } }\n";
    assert!(kernel_lib(src).iter().all(|d| d.rule != "hot_loop_convert"));
}

#[test]
fn hot_loop_convert_suppressed() {
    let src = r#"
/// Doc.
pub fn probe(h: &CrsMatrix, cs: &[usize]) {
    for c in cs {
        // kpm::allow(hot_loop_convert): each candidate is built exactly once to time it
        let _sell = SellMatrix::from_crs(h, *c, *c);
    }
}
"#;
    assert!(kernel_lib(src).is_empty());
}

// ------------------------------------------------------------- par_lock

#[test]
fn par_lock_hit_lock_and_mutex_in_par_statement() {
    let src = r#"
/// Doc.
pub fn bad(xs: &[f64], out: &std::sync::Mutex<Vec<f64>>) {
    xs.par_iter().for_each(|x| {
        out.lock().unwrap().push(*x);
    });
}
"#;
    let diags = scan(
        "kpm-num",
        FileClass::Lib,
        "crates/kpm-num/src/vector.rs",
        src,
    );
    assert!(rules(&diags).contains(&"par_lock"), "{diags:?}");
    assert!(diags
        .iter()
        .any(|d| d.rule == "par_lock" && d.message.contains("serializes")));
}

#[test]
fn par_lock_miss_outside_par_and_outside_kernel_crates() {
    // A lock in plain serial code is fine.
    let serial = r#"
/// Doc.
pub fn ok(out: &std::sync::Mutex<Vec<f64>>) {
    if let Ok(mut g) = out.lock() {
        g.push(1.0);
    }
}
"#;
    assert!(kernel_lib(serial).is_empty());
    // Per-chunk partials with a post-region reduction: the shape the
    // rule exists to steer people toward.
    let partials = r#"
/// Doc.
pub fn good(xs: &[f64]) -> f64 {
    let partials: Vec<f64> = xs.par_chunks(1024).map(|c| c.iter().sum()).collect();
    partials.iter().sum()
}
"#;
    assert!(kernel_lib(partials).is_empty());
    // The same locked pattern outside the kernel crates is not flagged.
    let src = r#"
/// Doc.
pub fn bad(xs: &[f64], out: &std::sync::Mutex<Vec<f64>>) {
    xs.par_iter().for_each(|x| { out.lock().unwrap().push(*x); });
}
"#;
    assert!(scan(
        "kpm-bench",
        FileClass::Lib,
        "crates/kpm-bench/src/lib.rs",
        src
    )
    .is_empty());
}

#[test]
fn par_lock_suppressed() {
    let src = r#"
/// Doc.
pub fn gather(xs: &[f64], out: &std::sync::Mutex<Vec<f64>>) {
    xs.par_chunks(4096).for_each(|c| {
        // kpm::allow(par_lock): one lock per 4096-element chunk, not per element
        out.lock().unwrap().extend_from_slice(c);
    });
}
"#;
    let diags = kernel_lib(src);
    assert!(
        diags.iter().all(|d| d.rule != "par_lock"),
        "suppression must silence the in-closure lock: {diags:?}"
    );
}

// -------------------------------------------------------- relaxed_store

#[test]
fn relaxed_store_hit() {
    let src = r#"
/// Doc.
pub fn publish(flag: &std::sync::atomic::AtomicBool) {
    flag.store(true, std::sync::atomic::Ordering::Relaxed);
}
"#;
    let diags = kernel_lib(src);
    assert_eq!(rules(&diags), vec!["relaxed_store"]);
    assert!(diags[0].message.contains("Relaxed"));
}

#[test]
fn relaxed_store_miss_for_loads_seqcst_and_obs_crate() {
    let src = r#"
/// Doc.
pub fn ok(flag: &std::sync::atomic::AtomicBool, n: &std::sync::atomic::AtomicU64) -> bool {
    n.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    flag.store(true, std::sync::atomic::Ordering::SeqCst);
    flag.load(std::sync::atomic::Ordering::Relaxed)
}
"#;
    // `relaxed_store` must stay quiet here; the SeqCst store is now
    // `atomic_order`'s business (gratuitous SeqCst outside the Ledger).
    let diags = kernel_lib(src);
    assert!(diags.iter().all(|d| d.rule != "relaxed_store"));
    assert!(diags
        .iter()
        .any(|d| d.rule == "atomic_order" && d.line == 5));
    let relaxed = "/// D.\npub fn f(flag: &std::sync::atomic::AtomicBool) {\n    flag.store(true, std::sync::atomic::Ordering::Relaxed);\n}\n";
    assert!(scan(
        "kpm-obs",
        FileClass::Lib,
        "crates/kpm-obs/src/lib.rs",
        relaxed
    )
    .is_empty());
}

#[test]
fn relaxed_store_suppressed() {
    let src = r#"
/// Doc.
pub fn f(flag: &std::sync::atomic::AtomicBool) {
    // kpm::allow(relaxed_store): flag is advisory, no data is published
    flag.store(true, std::sync::atomic::Ordering::Relaxed);
}
"#;
    assert!(kernel_lib(src).is_empty());
}

// --------------------------------------------------------- doc_coverage

#[test]
fn doc_coverage_hit_fn_struct_enum_trait() {
    let src = "pub fn f() {}\npub struct S;\npub enum E { A }\npub trait T {}\n";
    let diags = scan(
        "kpm-topo",
        FileClass::Lib,
        "crates/kpm-topo/src/lib.rs",
        src,
    );
    assert_eq!(
        rules(&diags),
        vec![
            "doc_coverage",
            "doc_coverage",
            "doc_coverage",
            "doc_coverage"
        ]
    );
    assert!(diags[0].message.contains("`f`"));
    assert!(diags[1].message.contains("`S`"));
}

#[test]
fn doc_coverage_miss_documented_crate_private_and_tests() {
    let src = r#"
/// Documented.
pub fn f() {}

/// Documented, attribute between doc and item.
#[inline]
pub fn g() {}

pub(crate) fn h() {}

#[cfg(test)]
mod tests {
    pub fn test_helper() {}
}
"#;
    assert!(scan(
        "kpm-topo",
        FileClass::Lib,
        "crates/kpm-topo/src/lib.rs",
        src
    )
    .is_empty());
}

#[test]
fn doc_coverage_suppressed() {
    let src = "// kpm::allow(doc_coverage): internal trampoline\npub fn f() {}\n";
    assert!(scan(
        "kpm-topo",
        FileClass::Lib,
        "crates/kpm-topo/src/lib.rs",
        src
    )
    .is_empty());
}

// ------------------------------------------------------------- obs_gate

fn obs_lib(src: &str) -> Vec<Diagnostic> {
    scan(
        "kpm-obs",
        FileClass::Lib,
        "crates/kpm-obs/src/metrics.rs",
        src,
    )
}

#[test]
fn obs_gate_hit_ungated_lock_and_clock() {
    let src = r#"
/// Doc.
pub fn counter_add(reg: &std::sync::Mutex<u64>, delta: u64) {
    let mut g = reg.lock().unwrap_or_else(|e| e.into_inner());
    *g += delta;
}
"#;
    let diags = obs_lib(src);
    assert_eq!(rules(&diags), vec!["obs_gate"]);
    assert!(diags[0].message.contains("counter_add"));
}

#[test]
fn obs_gate_miss_gated_or_value_returning() {
    let src = r#"
/// Gated recorder.
pub fn counter_add(reg: &std::sync::Mutex<u64>, delta: u64) {
    if !enabled() {
        return;
    }
    let mut g = reg.lock().unwrap_or_else(|e| e.into_inner());
    *g += delta;
}

/// Query APIs return values and may lock unconditionally.
pub fn counter_value(reg: &std::sync::Mutex<u64>) -> u64 {
    *reg.lock().unwrap_or_else(|e| e.into_inner())
}

fn enabled() -> bool {
    true
}
"#;
    assert!(obs_lib(src).is_empty());
}

#[test]
fn obs_gate_suppressed() {
    let src = r#"
/// Doc.
// kpm::allow(obs_gate): shutdown path, called once
pub fn flush(reg: &std::sync::Mutex<u64>) {
    let _g = reg.lock().unwrap_or_else(|e| e.into_inner());
}
"#;
    assert!(obs_lib(src).is_empty());
}

// ------------------------------------------------------------ obs_label

#[test]
fn obs_label_hit_undotted_uppercase_and_trailing_dot() {
    let src = r#"
/// Doc.
pub fn f() {
    kpm_obs::metrics::counter_add("admitted", 1);
    kpm_obs::metrics::gauge_set("Svc.Queue", 1.0);
    kpm_obs::hist::record("svc.latency.", 3);
}
"#;
    let diags = scan(
        "kpm-service",
        FileClass::Lib,
        "crates/kpm-service/src/service.rs",
        src,
    );
    assert_eq!(rules(&diags), vec!["obs_label", "obs_label", "obs_label"]);
    assert!(diags[0].message.contains("admitted"));
    assert!(diags[0].message.contains("dot-separated"));
}

#[test]
fn obs_label_miss_dotted_names_tests_and_method_calls() {
    let src = r#"
/// Doc.
pub fn f(h: &mut Hist) {
    kpm_obs::metrics::counter_add("svc.admitted", 1);
    let _s = kpm_obs::span::span("svc.stage.queue", "service");
    kpm_obs::recorder::note("chaos.crash", 7, "detail");
    // A method call never names a registry entry:
    h.record(12);
    let _ = format!("plain string, not a name");
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _s = kpm_obs::span::span("outer", "test");
    }
}
"#;
    assert!(scan(
        "kpm-service",
        FileClass::Lib,
        "crates/kpm-service/src/service.rs",
        src,
    )
    .is_empty());
}

#[test]
fn obs_label_suppressed() {
    let src = r#"
/// Doc.
pub fn f() {
    // kpm::allow(obs_label): legacy dashboard expects the flat name
    kpm_obs::metrics::counter_add("admitted", 1);
}
"#;
    assert!(scan(
        "kpm-service",
        FileClass::Lib,
        "crates/kpm-service/src/service.rs",
        src,
    )
    .is_empty());
}

// -------------------------------------------------- unknown_suppression

#[test]
fn unknown_suppression_gets_did_you_mean() {
    let src = "// kpm::allow(no_pancake): typo\n/// D.\npub fn f() {}\n";
    let diags = kernel_lib(src);
    assert_eq!(rules(&diags), vec!["unknown_suppression"]);
    assert!(diags[0].message.contains("no_pancake"));
    assert!(
        diags[0].hint.contains("kpm::allow(no_panic)"),
        "hint: {}",
        diags[0].hint
    );
}

#[test]
fn diagnostics_render_file_line_and_hint() {
    let src = "/// D.\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let diags = kernel_lib(src);
    assert_eq!(diags.len(), 1);
    let text = diags[0].render();
    assert!(
        text.starts_with("crates/kpm-sparse/src/lib.rs:2:"),
        "{text}"
    );
    assert!(text.contains("kpm::allow(no_panic)"));
}

// ------------------------------------------------------------ explorer

#[test]
fn explorer_two_rank_model_is_exactly_once_and_deadlock_free() {
    let threads = sched::two_rank_dedup_model(8, Some(3));
    let report = sched::explore(&threads, &Config::default());
    assert!(report.clean(), "violations: {:?}", report.counterexamples);
    assert!(!report.truncated);
    assert!(
        report.interleavings >= 1000,
        "only {} interleavings",
        report.interleavings
    );
}

#[test]
fn explorer_interleaving_count_is_seed_independent() {
    let threads = sched::two_rank_dedup_model(4, None);
    let a = sched::explore(
        &threads,
        &Config {
            seed: 1,
            ..Config::default()
        },
    );
    let b = sched::explore(
        &threads,
        &Config {
            seed: 99,
            ..Config::default()
        },
    );
    assert_eq!(a.interleavings, b.interleavings);
    assert!(a.clean() && b.clean());
}

#[test]
fn explorer_preemption_bound_prunes_schedules() {
    let threads = sched::two_rank_dedup_model(6, None);
    let full = sched::explore(&threads, &Config::default());
    let bounded = sched::explore(
        &threads,
        &Config {
            preemption_bound: Some(1),
            ..Config::default()
        },
    );
    assert!(bounded.clean());
    assert!(bounded.interleavings < full.interleavings);
    assert!(bounded.interleavings > 1);
}

#[test]
fn explorer_catches_deadlock_with_trace() {
    let report = sched::explore(&sched::deadlock_model(), &Config::default());
    assert!(report.deadlocks > 0);
    assert!(matches!(
        report.counterexamples[0].violation,
        Violation::Deadlock
    ));
}

#[test]
fn explorer_catches_double_delivery_without_dedup() {
    let threads = sched::two_rank_dedup_model(3, Some(1));
    let report = sched::explore(
        &threads,
        &Config {
            model_dedup: false,
            ..Config::default()
        },
    );
    assert!(report.double_deliveries > 0);
    assert!(report
        .counterexamples
        .iter()
        .any(|c| matches!(c.violation, Violation::DoubleDelivery { from: 0, seq: 1 })));
}

#[test]
fn explorer_catches_lost_message_on_timeout_path() {
    let report = sched::explore(&sched::lost_message_model(), &Config::default());
    assert!(report.lost_messages > 0);
    assert!(report
        .counterexamples
        .iter()
        .any(|c| matches!(c.violation, Violation::LostMessage { from: 0, seq: 0 })));
    // Schedules where the message IS consumed also exist.
    assert!(report.interleavings > report.lost_messages);
}

#[test]
fn explorer_catches_checkpoint_version_regression() {
    let report = sched::explore(&sched::racing_checkpoint_model(), &Config::default());
    assert!(report.version_regressions > 0);
    assert!(report.counterexamples.iter().any(|c| matches!(
        c.violation,
        Violation::VersionRegression { prev: 3, next: 1 }
    )));
}

#[test]
fn explorer_stash_roundtrip_is_exactly_once() {
    use sched::TAG_MOMENTS;
    let r0 = vec![
        Op::StashPush {
            tag: TAG_MOMENTS,
            seq: 0,
        },
        Op::StashPush {
            tag: TAG_MOMENTS,
            seq: 1,
        },
    ];
    let r1 = vec![Op::StashPop, Op::StashPop];
    let report = sched::explore(&[r0, r1], &Config::default());
    assert!(report.clean(), "violations: {:?}", report.counterexamples);
}

#[test]
fn explorer_budget_truncates() {
    let threads = sched::two_rank_dedup_model(8, None);
    let report = sched::explore(
        &threads,
        &Config {
            max_interleavings: 10,
            ..Config::default()
        },
    );
    assert!(report.truncated);
    assert_eq!(report.interleavings, 10);
}
