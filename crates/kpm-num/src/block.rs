//! Block vectors of width `R`.
//!
//! The stage-2 optimization of the paper (Fig. 5) interprets the `R`
//! independent KPM starting vectors as one *block vector* so the sparse
//! matrix is streamed once per iteration instead of `R` times. For the
//! augmented SpMMV kernel to access the right-hand sides contiguously,
//! the block must be stored in **row-major (interleaved)** order: element
//! `(row, col)` lives at `row * R + col` (paper Section IV-A). That is
//! the layout of [`BlockVector`].
//!
//! [`ColMajorBlock`] stores the transposed layout (each column
//! contiguous). It exists for the layout ablation: the paper notes that
//! transposing may be required when an application's native layout is
//! column-major, and the ablation bench quantifies the penalty of running
//! SpMMV directly on the unfavourable layout.

use rand::Rng;

use crate::aligned::AlignedVec;
use crate::complex::Complex64;
use crate::vector::{dot, Vector};

/// A dense `rows x width` block of complex numbers in row-major
/// (interleaved) storage: entry `(i, j)` is at index `i * width + j`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockVector {
    rows: usize,
    width: usize,
    /// 64-byte-aligned interleaved storage (the paper's AVX kernels
    /// require aligned block-vector loads).
    data: AlignedVec,
}

impl BlockVector {
    /// Creates a zero block of `rows` rows and `width` columns.
    pub fn zeros(rows: usize, width: usize) -> Self {
        assert!(width > 0, "block width must be positive");
        Self {
            rows,
            width,
            data: AlignedVec::zeroed(rows * width),
        }
    }

    /// Builds a block from `width` equal-length column vectors.
    pub fn from_columns(columns: &[Vector]) -> Self {
        assert!(!columns.is_empty(), "need at least one column");
        let rows = columns[0].len();
        assert!(
            columns.iter().all(|c| c.len() == rows),
            "all columns must have equal length"
        );
        let width = columns.len();
        let mut b = Self::zeros(rows, width);
        for (j, col) in columns.iter().enumerate() {
            for (i, &z) in col.as_slice().iter().enumerate() {
                b.data[i * width + j] = z;
            }
        }
        b
    }

    /// Splits the block back into column vectors.
    pub fn to_columns(&self) -> Vec<Vector> {
        (0..self.width).map(|j| self.column(j)).collect()
    }

    /// Extracts column `j` as an owned vector.
    pub fn column(&self, j: usize) -> Vector {
        assert!(j < self.width, "column index out of range");
        Vector::from_vec(
            (0..self.rows)
                .map(|i| self.data[i * self.width + j])
                .collect(),
        )
    }

    /// Overwrites column `j` from a vector.
    pub fn set_column(&mut self, j: usize, col: &Vector) {
        assert!(j < self.width, "column index out of range");
        assert_eq!(col.len(), self.rows, "column length mismatch");
        for (i, &z) in col.as_slice().iter().enumerate() {
            self.data[i * self.width + j] = z;
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Block width `R`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Entry `(i, j)`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        self.data[i * self.width + j]
    }

    /// Sets entry `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, z: Complex64) {
        self.data[i * self.width + j] = z;
    }

    /// Borrows row `i` (contiguous, length `width`).
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[Complex64] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Mutably borrows row `i`.
    #[inline(always)]
    pub fn row_mut(&mut self, i: usize) -> &mut [Complex64] {
        &mut self.data[i * self.width..(i + 1) * self.width]
    }

    /// Borrows the whole interleaved storage.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutably borrows the whole interleaved storage.
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Fills all entries with uniform random values in `[-1,1]^2`.
    pub fn fill_random<R: Rng>(&mut self, rng: &mut R) {
        for z in self.data.as_mut_slice() {
            *z = Complex64::new(rng.gen_range(-1.0..=1.0), rng.gen_range(-1.0..=1.0));
        }
    }

    /// A random block.
    pub fn random<R: Rng>(rows: usize, width: usize, rng: &mut R) -> Self {
        let mut b = Self::zeros(rows, width);
        b.fill_random(rng);
        b
    }

    /// Column-wise sesquilinear dot products `<x_j | y_j>` for all `j`.
    ///
    /// This is the blocked form of the paper's `eta` computation: each
    /// entry of the result corresponds to one of the `R` independent KPM
    /// runs.
    pub fn columnwise_dot(&self, other: &Self) -> Vec<Complex64> {
        assert_eq!(self.rows, other.rows, "row count mismatch");
        assert_eq!(self.width, other.width, "width mismatch");
        let mut acc = vec![Complex64::default(); self.width];
        // Row-major traversal: streams both blocks once, accumulating all
        // R dot products on the fly — the same access pattern the fused
        // kernels use.
        for i in 0..self.rows {
            let xr = self.row(i);
            let yr = other.row(i);
            for j in 0..self.width {
                acc[j] = xr[j].conj().mul_add(yr[j], acc[j]);
            }
        }
        acc
    }

    /// Column-wise squared norms `<x_j | x_j>`.
    pub fn columnwise_nrm2(&self) -> Vec<f64> {
        self.columnwise_dot(self).iter().map(|z| z.re).collect()
    }

    /// Swaps the contents of two blocks (the `swap(|W>, |V>)` step of the
    /// blocked algorithm, paper Fig. 5). O(1): only pointers move.
    pub fn swap(&mut self, other: &mut Self) {
        assert_eq!(self.rows, other.rows, "row count mismatch");
        assert_eq!(self.width, other.width, "width mismatch");
        std::mem::swap(&mut self.data, &mut other.data);
    }

    /// Maximum absolute difference to another block.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.data.len(), other.data.len());
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }
}

/// A dense block in column-major storage: entry `(i, j)` is at
/// `j * rows + i`, i.e. each column is contiguous.
#[derive(Debug, Clone, PartialEq)]
pub struct ColMajorBlock {
    rows: usize,
    width: usize,
    data: Vec<Complex64>,
}

impl ColMajorBlock {
    /// Creates a zero block.
    pub fn zeros(rows: usize, width: usize) -> Self {
        assert!(width > 0, "block width must be positive");
        Self {
            rows,
            width,
            data: vec![Complex64::default(); rows * width],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Block width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Entry `(i, j)`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        self.data[j * self.rows + i]
    }

    /// Sets entry `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, z: Complex64) {
        self.data[j * self.rows + i] = z;
    }

    /// Borrows column `j` (contiguous).
    pub fn col(&self, j: usize) -> &[Complex64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrows column `j`.
    pub fn col_mut(&mut self, j: usize) -> &mut [Complex64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Converts from the interleaved layout (explicit transpose).
    pub fn from_row_major(b: &BlockVector) -> Self {
        let mut c = Self::zeros(b.rows(), b.width());
        for i in 0..b.rows() {
            for j in 0..b.width() {
                c.set(i, j, b.get(i, j));
            }
        }
        c
    }

    /// Converts to the interleaved layout (explicit transpose).
    pub fn to_row_major(&self) -> BlockVector {
        let mut b = BlockVector::zeros(self.rows, self.width);
        for i in 0..self.rows {
            for j in 0..self.width {
                b.set(i, j, self.get(i, j));
            }
        }
        b
    }

    /// Column-wise dot products, computed per contiguous column.
    pub fn columnwise_dot(&self, other: &Self) -> Vec<Complex64> {
        assert_eq!(self.rows, other.rows, "row count mismatch");
        assert_eq!(self.width, other.width, "width mismatch");
        (0..self.width)
            .map(|j| dot(self.col(j), other.col(j)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn from_columns_roundtrip() {
        let mut r = rng();
        let cols: Vec<Vector> = (0..4).map(|_| Vector::random(17, &mut r)).collect();
        let b = BlockVector::from_columns(&cols);
        assert_eq!(b.rows(), 17);
        assert_eq!(b.width(), 4);
        let back = b.to_columns();
        assert_eq!(cols, back);
    }

    #[test]
    fn interleaved_layout_is_row_major() {
        let mut b = BlockVector::zeros(3, 2);
        b.set(1, 0, Complex64::real(5.0));
        b.set(1, 1, Complex64::real(7.0));
        // Row 1 occupies indices 2 and 3 of the flat storage.
        assert_eq!(b.as_slice()[2], Complex64::real(5.0));
        assert_eq!(b.as_slice()[3], Complex64::real(7.0));
        assert_eq!(b.row(1), &[Complex64::real(5.0), Complex64::real(7.0)]);
    }

    #[test]
    fn columnwise_dot_matches_per_column_dot() {
        let mut r = rng();
        let x = BlockVector::random(211, 8, &mut r);
        let y = BlockVector::random(211, 8, &mut r);
        let blocked = x.columnwise_dot(&y);
        for (j, got) in blocked.iter().enumerate() {
            let xc = x.column(j);
            let yc = y.column(j);
            let want = dot(xc.as_slice(), yc.as_slice());
            assert!(got.approx_eq(want, 1e-10), "column {j}");
        }
    }

    #[test]
    fn columnwise_nrm2_nonnegative() {
        let b = BlockVector::random(100, 5, &mut rng());
        for n in b.columnwise_nrm2() {
            assert!(n > 0.0);
        }
    }

    #[test]
    fn swap_exchanges_contents() {
        let mut r = rng();
        let mut a = BlockVector::random(10, 3, &mut r);
        let mut b = BlockVector::random(10, 3, &mut r);
        let (a0, b0) = (a.clone(), b.clone());
        a.swap(&mut b);
        assert_eq!(a, b0);
        assert_eq!(b, a0);
    }

    #[test]
    fn set_column_overwrites() {
        let mut r = rng();
        let mut b = BlockVector::zeros(9, 2);
        let c = Vector::random(9, &mut r);
        b.set_column(1, &c);
        assert_eq!(b.column(1), c);
        assert_eq!(b.column(0), Vector::zeros(9));
    }

    #[test]
    fn col_major_roundtrip() {
        let b = BlockVector::random(23, 6, &mut rng());
        let c = ColMajorBlock::from_row_major(&b);
        assert_eq!(c.to_row_major(), b);
        for i in 0..23 {
            for j in 0..6 {
                assert_eq!(c.get(i, j), b.get(i, j));
            }
        }
    }

    #[test]
    fn col_major_dot_matches_row_major() {
        let mut r = rng();
        let x = BlockVector::random(301, 4, &mut r);
        let y = BlockVector::random(301, 4, &mut r);
        let cx = ColMajorBlock::from_row_major(&x);
        let cy = ColMajorBlock::from_row_major(&y);
        let a = x.columnwise_dot(&y);
        let b = cx.columnwise_dot(&cy);
        for (u, v) in a.iter().zip(&b) {
            assert!(u.approx_eq(*v, 1e-10));
        }
    }

    #[test]
    fn max_abs_diff_detects_perturbation() {
        let mut r = rng();
        let a = BlockVector::random(50, 2, &mut r);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        let z = b.get(20, 1);
        b.set(20, 1, z + Complex64::real(1e-3));
        assert!((a.max_abs_diff(&b) - 1e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        BlockVector::zeros(4, 0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_columns_panic() {
        let cols = vec![Vector::zeros(3), Vector::zeros(4)];
        BlockVector::from_columns(&cols);
    }
}
