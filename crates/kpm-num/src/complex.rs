//! Double-precision complex numbers.
//!
//! The workspace deliberately carries its own complex type instead of
//! pulling in an external crate: the paper's performance models count a
//! complex addition as `F_a = 2` flops and a complex multiplication as
//! `F_m = 6` flops, and keeping the arithmetic in-repo guarantees the
//! kernels execute exactly the operations the model charges for.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// The layout is `repr(C)`, i.e. `[re, im]` adjacent in memory, matching
/// the interleaved storage the paper assumes for matrix and vector data
/// (`S_d = 16` bytes per element).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity.
pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
/// The multiplicative identity.
pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
/// The imaginary unit.
pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

impl Complex64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline(always)]
    pub const fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// The complex conjugate `re - i*im`.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// The squared modulus `re^2 + im^2`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The modulus `|z|`.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The argument (phase angle) of `z` in `(-pi, pi]`.
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Fused multiply-add `self * b + c`.
    ///
    /// This is the primitive the augmented kernels are built from; it
    /// costs `F_m + F_a = 8` flops in the paper's accounting.
    #[inline(always)]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Self::new(
            self.re * b.re - self.im * b.im + c.re,
            self.re * b.im + self.im * b.re + c.im,
        )
    }

    /// Multiplication by a real scalar (4 flops; counted as `F_m/2` pairs
    /// in Table I of the paper, e.g. in `scal()`).
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// The multiplicative inverse `1/z`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self::new(r * self.im.cos(), r * self.im.sin())
    }

    /// True if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within an absolute tolerance on both parts.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w == z * w^{-1}
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
        iter.fold(ZERO, |a, b| a + *b)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.25, 4.0);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn mul_matches_formula() {
        let a = Complex64::new(3.0, 2.0);
        let b = Complex64::new(1.0, 7.0);
        // (3+2i)(1+7i) = 3 + 21i + 2i + 14i^2 = -11 + 23i
        assert_eq!(a * b, Complex64::new(-11.0, 23.0));
    }

    #[test]
    fn conj_mul_gives_norm_sqr() {
        let z = Complex64::new(3.0, -4.0);
        let p = z * z.conj();
        assert_eq!(p.re, z.norm_sqr());
        assert_eq!(p.im, 0.0);
        assert_eq!(z.abs(), 5.0);
    }

    #[test]
    fn inv_is_inverse() {
        let z = Complex64::new(2.0, -1.0);
        let w = z * z.inv();
        assert!(w.approx_eq(ONE, 1e-15));
    }

    #[test]
    fn div_by_self_is_one() {
        let z = Complex64::new(-7.0, 0.5);
        assert!((z / z).approx_eq(ONE, 1e-15));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        let c = Complex64::new(0.25, -1.0);
        assert_eq!(a.mul_add(b, c), a * b + c);
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = Complex64::imag(std::f64::consts::PI);
        assert!(z.exp().approx_eq(Complex64::real(-1.0), 1e-15));
    }

    #[test]
    fn real_scalar_ops() {
        let z = Complex64::new(1.0, -2.0);
        assert_eq!(z * 2.0, Complex64::new(2.0, -4.0));
        assert_eq!(2.0 * z, z * 2.0);
        assert_eq!(z / 2.0, Complex64::new(0.5, -1.0));
    }

    #[test]
    fn arg_quadrants() {
        assert!((Complex64::new(1.0, 1.0).arg() - std::f64::consts::FRAC_PI_4).abs() < 1e-15);
        assert!((Complex64::new(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn sum_iterates() {
        let v = [ONE, I, Complex64::new(2.0, 3.0)];
        let s: Complex64 = v.iter().sum();
        assert_eq!(s, Complex64::new(3.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex64::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", Complex64::new(1.0, -2.0)), "1-2i");
    }
}
