//! Dense complex vectors and BLAS level-1 kernels.
//!
//! These are the building blocks of the *naive* KPM-DOS algorithm (paper
//! Fig. 3): `spmv()` lives in `kpm-sparse`; `axpy()`, `scal()`, `nrm2()`
//! and `dot()` live here. Each kernel exists in a serial and a
//! rayon-parallel variant; the parallel variants chunk the index space so
//! reductions are tree-shaped and deterministic for a fixed chunk size.

use rand::Rng;
use rayon::prelude::*;

use crate::complex::Complex64;
use crate::summation::pairwise_sum_complex;

/// Chunk length used by the parallel kernels. One chunk of complex
/// doubles is 64 KiB — large enough to amortize scheduling, small enough
/// to load-balance.
const PAR_CHUNK: usize = 4096;

/// A dense vector of [`Complex64`] entries.
///
/// A thin newtype over `Vec<Complex64>`: it exists so that vector
/// semantics (dimension checks, fills, norms) have one home, while all
/// kernels accept plain slices and therefore also work on block-vector
/// columns and borrowed halves.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    data: Vec<Complex64>,
}

impl Vector {
    /// Creates a zero vector of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            data: vec![Complex64::default(); n],
        }
    }

    /// Creates a vector from existing data.
    pub fn from_vec(data: Vec<Complex64>) -> Self {
        Self { data }
    }

    /// Fills the vector with uniform random entries in the complex square
    /// `[-1,1] x [-1,1]i`, the random-phase initial states of the
    /// stochastic trace estimator.
    pub fn fill_random<R: Rng>(&mut self, rng: &mut R) {
        for z in &mut self.data {
            *z = Complex64::new(rng.gen_range(-1.0..=1.0), rng.gen_range(-1.0..=1.0));
        }
    }

    /// A random vector of dimension `n`.
    pub fn random<R: Rng>(n: usize, rng: &mut R) -> Self {
        let mut v = Self::zeros(n);
        v.fill_random(rng);
        v
    }

    /// Dimension of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the entries.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutably borrows the entries.
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Consumes the vector, returning its storage.
    pub fn into_vec(self) -> Vec<Complex64> {
        self.data
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        nrm2(&self.data).sqrt()
    }

    /// Normalizes to unit Euclidean norm; returns the previous norm.
    pub fn normalize(&mut self) -> f64 {
        let n = self.norm();
        if n > 0.0 {
            scal(Complex64::real(1.0 / n), &mut self.data);
        }
        n
    }
}

impl std::ops::Index<usize> for Vector {
    type Output = Complex64;
    fn index(&self, i: usize) -> &Complex64 {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut Complex64 {
        &mut self.data[i]
    }
}

/// `y <- a*x + y` (BLAS `axpy`). Panics if dimensions differ.
pub fn axpy(a: Complex64, x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(x.len(), y.len(), "axpy: dimension mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = a.mul_add(*xi, *yi);
    }
}

/// Parallel `y <- a*x + y`.
pub fn axpy_par(a: Complex64, x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(x.len(), y.len(), "axpy_par: dimension mismatch");
    y.par_chunks_mut(PAR_CHUNK)
        .zip(x.par_chunks(PAR_CHUNK))
        .for_each(|(yc, xc)| axpy(a, xc, yc));
}

/// `x <- a*x` (BLAS `scal`).
pub fn scal(a: Complex64, x: &mut [Complex64]) {
    for xi in x {
        *xi = a * *xi;
    }
}

/// Parallel `x <- a*x`.
pub fn scal_par(a: Complex64, x: &mut [Complex64]) {
    x.par_chunks_mut(PAR_CHUNK).for_each(|c| scal(a, c));
}

/// Squared Euclidean norm `<x|x>` (BLAS `nrm2` squared), reduced
/// pairwise. The paper's `nrm2()` call computes `eta_{2m} = <v|v>`,
/// which is this quantity (no square root is ever taken in KPM).
pub fn nrm2(x: &[Complex64]) -> f64 {
    dot(x, x).re
}

/// Parallel squared Euclidean norm.
pub fn nrm2_par(x: &[Complex64]) -> f64 {
    dot_par(x, x).re
}

/// Sesquilinear dot product `<x|y> = sum_i conj(x_i) * y_i`, reduced
/// pairwise for accuracy and reduction-order stability.
pub fn dot(x: &[Complex64], y: &[Complex64]) -> Complex64 {
    assert_eq!(x.len(), y.len(), "dot: dimension mismatch");
    const BASE: usize = 256;
    if x.len() <= BASE {
        let mut acc = Complex64::default();
        for (xi, yi) in x.iter().zip(y) {
            acc = xi.conj().mul_add(*yi, acc);
        }
        return acc;
    }
    let mid = x.len() / 2;
    dot(&x[..mid], &y[..mid]) + dot(&x[mid..], &y[mid..])
}

/// Parallel sesquilinear dot product. The partial sums per chunk are
/// themselves pairwise sums, and the chunk results are combined with a
/// final pairwise pass, so the result is independent of thread count.
pub fn dot_par(x: &[Complex64], y: &[Complex64]) -> Complex64 {
    assert_eq!(x.len(), y.len(), "dot_par: dimension mismatch");
    let partials: Vec<Complex64> = x
        .par_chunks(PAR_CHUNK)
        .zip(y.par_chunks(PAR_CHUNK))
        .map(|(xc, yc)| dot(xc, yc))
        .collect();
    pairwise_sum_complex(&partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn zeros_has_zero_norm() {
        let v = Vector::zeros(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.norm(), 0.0);
    }

    #[test]
    fn random_entries_in_square() {
        let v = Vector::random(1000, &mut rng());
        for z in v.as_slice() {
            assert!(z.re.abs() <= 1.0 && z.im.abs() <= 1.0);
        }
        assert!(v.norm() > 0.0);
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut v = Vector::random(257, &mut rng());
        let prev = v.norm();
        let reported = v.normalize();
        assert_eq!(prev, reported);
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_matches_scalar_loop() {
        let a = Complex64::new(2.0, -1.0);
        let x: Vec<Complex64> = (0..37).map(|i| Complex64::new(i as f64, 1.0)).collect();
        let mut y: Vec<Complex64> = (0..37).map(|i| Complex64::new(0.5, i as f64)).collect();
        let expect: Vec<Complex64> = x.iter().zip(&y).map(|(xi, yi)| a * *xi + *yi).collect();
        axpy(a, &x, &mut y);
        for (got, want) in y.iter().zip(&expect) {
            assert!(got.approx_eq(*want, 1e-12));
        }
    }

    #[test]
    fn axpy_par_matches_serial() {
        let mut r = rng();
        let a = Complex64::new(-0.7, 0.3);
        let x = Vector::random(10_000, &mut r).into_vec();
        let y0 = Vector::random(10_000, &mut r).into_vec();
        let mut y1 = y0.clone();
        let mut y2 = y0;
        axpy(a, &x, &mut y1);
        axpy_par(a, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn scal_par_matches_serial() {
        let a = Complex64::new(0.0, 1.0);
        let mut v1 = Vector::random(9999, &mut rng()).into_vec();
        let mut v2 = v1.clone();
        scal(a, &mut v1);
        scal_par(a, &mut v2);
        assert_eq!(v1, v2);
    }

    #[test]
    fn dot_is_sesquilinear() {
        let x = vec![Complex64::new(0.0, 1.0); 4];
        let y = vec![Complex64::new(0.0, 1.0); 4];
        // <i*1|i*1> = conj(i)*i = 1 per element
        let d = dot(&x, &y);
        assert!(d.approx_eq(Complex64::real(4.0), 1e-15));
    }

    #[test]
    fn dot_conjugate_symmetry() {
        let mut r = rng();
        let x = Vector::random(513, &mut r).into_vec();
        let y = Vector::random(513, &mut r).into_vec();
        let a = dot(&x, &y);
        let b = dot(&y, &x);
        assert!(a.approx_eq(b.conj(), 1e-12));
    }

    #[test]
    fn dot_par_matches_serial_bitwise() {
        let mut r = rng();
        let x = Vector::random(100_000, &mut r).into_vec();
        let y = Vector::random(100_000, &mut r).into_vec();
        let s = dot(&x, &y);
        let p = dot_par(&x, &y);
        // Both are pairwise reductions; allow tiny differences from
        // different split points.
        assert!(s.approx_eq(p, 1e-9 * x.len() as f64 * f64::EPSILON.max(1e-16) + 1e-10));
    }

    #[test]
    fn nrm2_is_real_nonnegative() {
        let v = Vector::random(777, &mut rng());
        let n = nrm2(v.as_slice());
        assert!(n >= 0.0);
        assert!((nrm2_par(v.as_slice()) - n).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn axpy_dimension_mismatch_panics() {
        let x = vec![Complex64::default(); 3];
        let mut y = vec![Complex64::default(); 4];
        axpy(Complex64::real(1.0), &x, &mut y);
    }

    #[test]
    fn indexing_works() {
        let mut v = Vector::zeros(3);
        v[1] = Complex64::new(5.0, 6.0);
        assert_eq!(v[1], Complex64::new(5.0, 6.0));
        assert_eq!(v[0], Complex64::default());
    }
}
