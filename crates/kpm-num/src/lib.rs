//! Numerical substrate for the KPM reproduction.
//!
//! This crate provides the low-level numerical building blocks that every
//! other crate in the workspace builds on:
//!
//! * [`Complex64`] — double-precision complex numbers with the flop
//!   accounting convention of the paper (complex add = 2 flops, complex
//!   multiply = 6 flops),
//! * [`vector`] — dense complex vectors and the BLAS level-1 kernels used
//!   by the *naive* KPM-DOS algorithm (paper Fig. 3): `axpy`, `scal`,
//!   `nrm2`, `dot`,
//! * [`block`] — block vectors of width `R` stored in *row-major
//!   (interleaved)* order, the data layout that makes the augmented SpMMV
//!   kernel of the paper stream contiguously (paper Section IV-A),
//! * [`summation`] — compensated/pairwise summation helpers used to keep
//!   stochastic-trace reductions reproducible,
//! * [`accounting`] — the byte/flop constants of the paper (S_d, S_i,
//!   F_a, F_m) used by the performance models.

pub mod accounting;
pub mod aligned;
pub mod block;
pub mod complex;
pub mod eigen;
pub mod error;
pub mod summation;
pub mod vector;

pub use block::BlockVector;
pub use complex::Complex64;
pub use error::{KpmError, KpmResult};
pub use vector::Vector;
