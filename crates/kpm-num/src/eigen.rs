//! Dense Hermitian eigensolver (cyclic complex Jacobi).
//!
//! The KPM is validated against exact spectra of small systems: the
//! integration tests compare the KPM density of states with histograms
//! of exactly computed eigenvalues. A full LAPACK is out of scope (and
//! off the approved dependency list), but the cyclic Jacobi method is
//! compact, unconditionally stable for Hermitian matrices, and plenty
//! fast for the `n ≲ 10³` validation problems.

use crate::complex::Complex64;

/// A dense Hermitian matrix stored row-major, used only for validation.
#[derive(Debug, Clone)]
pub struct DenseHermitian {
    n: usize,
    data: Vec<Complex64>,
}

impl DenseHermitian {
    /// Builds from a row-major buffer of length `n*n`; the strictly
    /// lower triangle is overwritten with the conjugate of the upper one
    /// so the stored matrix is exactly Hermitian.
    pub fn from_row_major(n: usize, mut data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), n * n, "buffer must be n*n");
        for i in 0..n {
            data[i * n + i] = Complex64::real(data[i * n + i].re);
            for j in (i + 1)..n {
                data[j * n + i] = data[i * n + j].conj();
            }
        }
        Self { n, data }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        self.data[i * self.n + j]
    }

    #[inline(always)]
    fn set(&mut self, i: usize, j: usize, z: Complex64) {
        self.data[i * self.n + j] = z;
    }

    /// Frobenius norm of the strict off-diagonal part.
    pub fn offdiag_norm(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    s += self.get(i, j).norm_sqr();
                }
            }
        }
        s.sqrt()
    }

    /// Computes all eigenvalues by cyclic Jacobi sweeps, returned in
    /// ascending order. Converges quadratically; `tol` bounds the final
    /// off-diagonal Frobenius norm relative to the matrix norm.
    pub fn eigenvalues(self, tol: f64) -> Vec<f64> {
        self.eigen_decomposition(tol).0
    }

    /// Full eigen-decomposition `A = U Λ U†`: returns the ascending
    /// eigenvalues and, aligned with them, the orthonormal eigenvectors
    /// (each of length `n`).
    pub fn eigen_decomposition(mut self, tol: f64) -> (Vec<f64>, Vec<Vec<Complex64>>) {
        let n = self.n;
        if n == 0 {
            return (Vec::new(), Vec::new());
        }
        // Accumulated transform, starts as the identity.
        let mut u = vec![Complex64::default(); n * n];
        for i in 0..n {
            u[i * n + i] = Complex64::real(1.0);
        }
        let scale: f64 = self
            .data
            .iter()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt()
            .max(f64::MIN_POSITIVE);
        let max_sweeps = 60;
        for _ in 0..max_sweeps {
            if self.offdiag_norm() <= tol * scale {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    self.rotate_with(p, q, Some(&mut u));
                }
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| self.get(a, a).re.total_cmp(&self.get(b, b).re));
        let evs: Vec<f64> = order.iter().map(|&i| self.get(i, i).re).collect();
        let vecs: Vec<Vec<Complex64>> = order
            .iter()
            .map(|&col| (0..n).map(|row| u[row * n + col]).collect())
            .collect();
        (evs, vecs)
    }

    /// One complex Jacobi rotation annihilating entry `(p, q)`.
    ///
    /// The 2×2 Hermitian sub-problem `[[α, g], [ḡ, β]]` is reduced to a
    /// real symmetric one by the phase `D = diag(1, e^{-iφ})` with
    /// `φ = arg g`, then rotated by the classic Jacobi angle. The full
    /// transform `A ← U† A U` with `U = D·R` touches only rows/columns
    /// `p` and `q`.
    /// Optionally accumulates the transform into the row-major matrix
    /// `u` (`U <- U · J`).
    fn rotate_with(&mut self, p: usize, q: usize, u: Option<&mut Vec<Complex64>>) {
        let g = self.get(p, q);
        let gabs = g.abs();
        if gabs == 0.0 {
            return;
        }
        let alpha = self.get(p, p).re;
        let beta = self.get(q, q).re;
        let phase = g / gabs; // e^{i φ}

        let tau = (beta - alpha) / (2.0 * gabs);
        let t = if tau >= 0.0 {
            1.0 / (tau + (1.0 + tau * tau).sqrt())
        } else {
            -1.0 / (-tau + (1.0 + tau * tau).sqrt())
        };
        let c = 1.0 / (1.0 + t * t).sqrt();
        let s = t * c;

        // U columns: u_p = (c, -s·e^{-iφ})ᵀ, u_q = (s, c·e^{-iφ})ᵀ in the
        // (p, q) subspace.
        let upp = Complex64::real(c);
        let uqp = phase.conj().scale(-s);
        let upq = Complex64::real(s);
        let uqq = phase.conj().scale(c);

        let n = self.n;
        // A ← A·U on columns p, q.
        for i in 0..n {
            let aip = self.get(i, p);
            let aiq = self.get(i, q);
            self.set(i, p, aip * upp + aiq * uqp);
            self.set(i, q, aip * upq + aiq * uqq);
        }
        // Accumulate the eigenvector transform the same way.
        if let Some(u) = u {
            for i in 0..n {
                let uip = u[i * n + p];
                let uiq = u[i * n + q];
                u[i * n + p] = uip * upp + uiq * uqp;
                u[i * n + q] = uip * upq + uiq * uqq;
            }
        }
        // A ← U†·A on rows p, q.
        for j in 0..n {
            let apj = self.get(p, j);
            let aqj = self.get(q, j);
            self.set(p, j, upp.conj() * apj + uqp.conj() * aqj);
            self.set(q, j, upq.conj() * apj + uqq.conj() * aqj);
        }
        // Clean the rotated pair exactly.
        self.set(p, q, Complex64::default());
        self.set(q, p, Complex64::default());
        let app = self.get(p, p);
        let aqq = self.get(q, q);
        self.set(p, p, Complex64::real(app.re));
        self.set(q, q, Complex64::real(aqq.re));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn diagonal_matrix_returns_sorted_diagonal() {
        let n = 4;
        let mut data = vec![Complex64::default(); n * n];
        for (i, v) in [3.0, -1.0, 2.0, 0.5].iter().enumerate() {
            data[i * n + i] = Complex64::real(*v);
        }
        let evs = DenseHermitian::from_row_major(n, data).eigenvalues(1e-12);
        assert_eq!(evs, vec![-1.0, 0.5, 2.0, 3.0]);
    }

    #[test]
    fn pauli_x_eigenvalues() {
        let data = vec![c(0.0, 0.0), c(1.0, 0.0), c(1.0, 0.0), c(0.0, 0.0)];
        let evs = DenseHermitian::from_row_major(2, data).eigenvalues(1e-14);
        assert!((evs[0] + 1.0).abs() < 1e-12);
        assert!((evs[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_y_eigenvalues() {
        let data = vec![c(0.0, 0.0), c(0.0, -1.0), c(0.0, 1.0), c(0.0, 0.0)];
        let evs = DenseHermitian::from_row_major(2, data).eigenvalues(1e-14);
        assert!((evs[0] + 1.0).abs() < 1e-12);
        assert!((evs[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tridiagonal_chain_matches_analytic_spectrum() {
        // Open 1D chain with hopping 1: E_k = 2 cos(k π / (n+1)).
        let n = 12;
        let mut data = vec![Complex64::default(); n * n];
        for i in 0..n - 1 {
            data[i * n + i + 1] = Complex64::real(1.0);
        }
        let mut evs = DenseHermitian::from_row_major(n, data).eigenvalues(1e-13);
        let mut exact: Vec<f64> = (1..=n)
            .map(|k| 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        evs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, want) in evs.iter().zip(&exact) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn trace_and_frobenius_invariants_preserved() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let n = 20;
        let mut data = vec![Complex64::default(); n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] = c(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
            }
        }
        let m = DenseHermitian::from_row_major(n, data);
        let trace: f64 = (0..n).map(|i| m.get(i, i).re).sum();
        let frob: f64 = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| m.get(i, j).norm_sqr())
            .sum();
        let evs = m.eigenvalues(1e-13);
        let tr_evs: f64 = evs.iter().sum();
        let frob_evs: f64 = evs.iter().map(|e| e * e).sum();
        assert!((trace - tr_evs).abs() < 1e-8 * trace.abs().max(1.0));
        assert!((frob - frob_evs).abs() < 1e-8 * frob);
    }

    #[test]
    fn eigenvalues_within_gershgorin_disks() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(19);
        let n = 15;
        let mut data = vec![Complex64::default(); n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] = c(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
            }
        }
        let m = DenseHermitian::from_row_major(n, data);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            let d = m.get(i, i).re;
            let rad: f64 = (0..n).filter(|&j| j != i).map(|j| m.get(i, j).abs()).sum();
            lo = lo.min(d - rad);
            hi = hi.max(d + rad);
        }
        for e in m.eigenvalues(1e-12) {
            assert!(e >= lo - 1e-10 && e <= hi + 1e-10);
        }
    }

    #[test]
    fn eigenvectors_satisfy_eigen_equation() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        let n = 18;
        let mut data = vec![Complex64::default(); n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] = c(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
            }
        }
        let m = DenseHermitian::from_row_major(n, data);
        let a = m.clone();
        let (evs, vecs) = m.eigen_decomposition(1e-13);
        for (lambda, v) in evs.iter().zip(&vecs) {
            // ||A v - lambda v|| small.
            let mut res = 0.0;
            for i in 0..n {
                let mut av = Complex64::default();
                for (j, vj) in v.iter().enumerate() {
                    av = a.get(i, j).mul_add(*vj, av);
                }
                res += (av - v[i].scale(*lambda)).norm_sqr();
            }
            assert!(res.sqrt() < 1e-7, "residual {}", res.sqrt());
        }
        // Orthonormality of the first few pairs.
        for i in 0..4 {
            for j in 0..4 {
                let mut d = Complex64::default();
                for (vi, vj) in vecs[i].iter().zip(&vecs[j]) {
                    d = vi.conj().mul_add(*vj, d);
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((d.re - want).abs() < 1e-8 && d.im.abs() < 1e-8);
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let evs = DenseHermitian::from_row_major(0, vec![]).eigenvalues(1e-12);
        assert!(evs.is_empty());
    }
}
