//! Cache-line-aligned storage.
//!
//! The paper's CPU kernels are hand-vectorized with 256-bit AVX
//! intrinsics; aligned loads/stores require the vector and block-vector
//! buffers to start on (at least) 32-byte boundaries, and avoiding
//! split cache lines wants 64. Rust's `Vec` gives no alignment
//! guarantee beyond `align_of::<T>()` (16 for our `Complex64`), so the
//! numeric containers use this buffer instead: a fixed-length,
//! 64-byte-aligned allocation.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};

use crate::complex::Complex64;

/// Alignment of all numeric buffers (one x86 cache line).
pub const BUFFER_ALIGN: usize = 64;

/// A fixed-length, zero-initialized, 64-byte-aligned buffer of
/// [`Complex64`]. Dereferences to a slice, so all kernel code operates
/// on `&[Complex64]` / `&mut [Complex64]` as usual.
pub struct AlignedVec {
    ptr: *mut Complex64,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively (the raw pointer
// is never shared or aliased outside the struct), and Complex64 is
// plain Send data, so moving the buffer to another thread is sound.
unsafe impl Send for AlignedVec {}
// SAFETY: shared access through &AlignedVec only ever produces
// &[Complex64] reads (`as_slice`); mutation requires &mut self, so
// concurrent shared use cannot race on the allocation.
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    /// Allocates `len` zeroed elements at 64-byte alignment.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: std::ptr::NonNull::dangling().as_ptr(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size here.
        let raw = unsafe { alloc_zeroed(layout) };
        if raw.is_null() {
            handle_alloc_error(layout);
        }
        Self {
            ptr: raw.cast::<Complex64>(),
            len,
        }
    }

    /// Copies a slice into a fresh aligned buffer.
    pub fn from_slice(data: &[Complex64]) -> Self {
        let mut v = Self::zeroed(data.len());
        v.as_mut_slice().copy_from_slice(data);
        v
    }

    /// Length in elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrows the contents.
    pub fn as_slice(&self) -> &[Complex64] {
        // SAFETY: ptr/len describe a live, initialized allocation (or a
        // dangling pointer with len 0, for which from_raw_parts is fine).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mutably borrows the contents.
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        // SAFETY: as above, plus exclusive access through &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<Complex64>(), BUFFER_ALIGN)
            // kpm::allow(no_panic): fails only on capacity overflow
            // (len * 16 > isize::MAX), where Vec panics too; `layout`
            // is also called from Drop, which cannot return an error.
            .expect("valid layout")
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: allocated with the identical layout in `zeroed`.
            unsafe { dealloc(self.ptr.cast::<u8>(), Self::layout(self.len)) };
        }
    }
}

impl Clone for AlignedVec {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl Deref for AlignedVec {
    type Target = [Complex64];
    fn deref(&self) -> &[Complex64] {
        self.as_slice()
    }
}

impl DerefMut for AlignedVec {
    fn deref_mut(&mut self) -> &mut [Complex64] {
        self.as_mut_slice()
    }
}

impl PartialEq for AlignedVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedVec")
            .field("len", &self.len)
            .field("data", &self.as_slice())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_aligned_and_zeroed() {
        let v = AlignedVec::zeroed(1000);
        assert_eq!(v.as_slice().as_ptr() as usize % BUFFER_ALIGN, 0);
        assert!(v.iter().all(|z| *z == Complex64::default()));
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn many_sizes_stay_aligned() {
        for len in [1usize, 3, 7, 64, 65, 4097] {
            let v = AlignedVec::zeroed(len);
            assert_eq!(
                v.as_slice().as_ptr() as usize % BUFFER_ALIGN,
                0,
                "len={len}"
            );
        }
    }

    #[test]
    fn from_slice_roundtrip_and_clone() {
        let data: Vec<Complex64> = (0..37).map(|i| Complex64::new(i as f64, -1.0)).collect();
        let v = AlignedVec::from_slice(&data);
        assert_eq!(v.as_slice(), data.as_slice());
        let w = v.clone();
        assert_eq!(v, w);
        assert_ne!(v.as_slice().as_ptr(), w.as_slice().as_ptr());
    }

    #[test]
    fn deref_allows_slice_ops() {
        let mut v = AlignedVec::zeroed(8);
        v[3] = Complex64::real(5.0);
        assert_eq!(v[3].re, 5.0);
        v.fill(Complex64::real(1.0));
        let s: f64 = v.iter().map(|z| z.re).sum();
        assert_eq!(s, 8.0);
    }

    #[test]
    fn empty_buffer_is_safe() {
        let v = AlignedVec::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[]);
        let w = v.clone();
        assert_eq!(v, w);
    }

    #[test]
    fn send_across_threads() {
        let v = AlignedVec::from_slice(&[Complex64::real(2.0); 16]);
        let handle = std::thread::spawn(move || v.iter().map(|z| z.re).sum::<f64>());
        assert_eq!(handle.join().unwrap(), 32.0);
    }
}
