//! Accurate summation helpers.
//!
//! The stochastic trace estimator averages dot products over many random
//! vectors and many Chebyshev moments; naive left-to-right summation of
//! millions of terms loses accuracy and makes results depend on the
//! parallel reduction order. The kernels in this workspace reduce with
//! pairwise summation (the same scheme a tree reduction over threads or
//! warps produces), and the tests use Kahan summation as an accuracy
//! reference.

use crate::complex::Complex64;

/// Pairwise (cascade) summation of real values.
///
/// Error grows like `O(log n)` instead of `O(n)`, and the result is
/// independent of chunking at power-of-two boundaries, which keeps serial
/// and tree-parallel reductions comparable.
pub fn pairwise_sum(values: &[f64]) -> f64 {
    const BASE: usize = 64;
    if values.len() <= BASE {
        return values.iter().sum();
    }
    let mid = values.len() / 2;
    pairwise_sum(&values[..mid]) + pairwise_sum(&values[mid..])
}

/// Pairwise summation of complex values.
pub fn pairwise_sum_complex(values: &[Complex64]) -> Complex64 {
    const BASE: usize = 64;
    if values.len() <= BASE {
        return values.iter().sum();
    }
    let mid = values.len() / 2;
    pairwise_sum_complex(&values[..mid]) + pairwise_sum_complex(&values[mid..])
}

/// Kahan (compensated) summation accumulator for real values.
#[derive(Debug, Clone, Copy, Default)]
pub struct Kahan {
    sum: f64,
    comp: f64,
}

impl Kahan {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let y = x - self.comp;
        let t = self.sum + y;
        self.comp = (t - self.sum) - y;
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum
    }
}

/// Kahan summation of a slice, as a convenience wrapper.
pub fn kahan_sum(values: &[f64]) -> f64 {
    let mut acc = Kahan::new();
    for &v in values {
        acc.add(v);
    }
    acc.total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_matches_exact_on_small_input() {
        let v = [1.0, 2.0, 3.0, 4.5];
        assert_eq!(pairwise_sum(&v), 10.5);
    }

    #[test]
    fn pairwise_beats_naive_on_ill_conditioned_sum() {
        // 1 followed by many tiny terms that naive summation drops.
        let n = 1 << 20;
        let tiny = 1e-16;
        let mut v = vec![tiny; n];
        v[0] = 1.0;
        let exact = 1.0 + (n as f64 - 1.0) * tiny;
        let naive: f64 = v.iter().sum();
        let pw = pairwise_sum(&v);
        assert!((pw - exact).abs() <= (naive - exact).abs());
        assert!((pw - exact).abs() < 1e-12);
    }

    #[test]
    fn kahan_recovers_tiny_terms() {
        let mut acc = Kahan::new();
        acc.add(1.0);
        for _ in 0..1000 {
            acc.add(1e-17);
        }
        assert!((acc.total() - (1.0 + 1000.0 * 1e-17)).abs() < 1e-18);
    }

    #[test]
    fn kahan_sum_wrapper_matches_accumulator() {
        let v: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut acc = Kahan::new();
        for &x in &v {
            acc.add(x);
        }
        assert_eq!(kahan_sum(&v), acc.total());
    }

    #[test]
    fn complex_pairwise_sums_parts_independently() {
        let v: Vec<Complex64> = (0..200)
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect();
        let s = pairwise_sum_complex(&v);
        let expect = (199.0 * 200.0) / 2.0;
        assert!((s.re - expect).abs() < 1e-9);
        assert!((s.im + expect).abs() < 1e-9);
    }

    #[test]
    fn empty_sums_are_zero() {
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(kahan_sum(&[]), 0.0);
        assert_eq!(pairwise_sum_complex(&[]), Complex64::new(0.0, 0.0));
    }
}
