//! Byte and flop accounting constants (paper Section III).
//!
//! The paper's traffic and balance formulas are parameterized by the size
//! of one matrix/vector data element `S_d`, the size of one index element
//! `S_i`, and the flop cost of one complex addition `F_a` and one complex
//! multiplication `F_m`. For double-complex arithmetic with 32-bit local
//! indices these are 16, 4, 2 and 6 respectively — the values used in
//! Eqs. (5)-(7) of the paper.

/// Size in bytes of one matrix/vector data element (double complex).
pub const S_D: usize = 16;

/// Size in bytes of one matrix index element (32-bit local index).
pub const S_I: usize = 4;

/// Flops per complex addition.
pub const F_A: usize = 2;

/// Flops per complex multiplication.
pub const F_M: usize = 6;

/// Flop count of the whole KPM-DOS solver (paper Table I, last row):
/// `R*M/2 * [Nnz*(F_a + F_m) + N*(7*F_a/2 + 9*F_m/2)]`.
///
/// The per-row vector term charges, per inner iteration and per vector:
/// the shift/scale/recurrence updates and the two on-the-fly scalar
/// products of the augmented kernel.
#[inline]
pub fn kpm_flops(n: usize, nnz: usize, r: usize, m: usize) -> usize {
    r * m / 2 * (nnz * (F_A + F_M) + n * (7 * F_A / 2 + 9 * F_M / 2))
}

/// Flops per inner iteration of one augmented SpM(M)V sweep, i.e.
/// [`kpm_flops`] without the `R*M/2` outer factor but with the block
/// width folded into the vector term.
#[inline]
pub fn aug_spmmv_flops(n: usize, nnz: usize, r: usize) -> usize {
    r * (nnz * (F_A + F_M) + n * (7 * F_A / 2 + 9 * F_M / 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper() {
        assert_eq!(S_D, 16);
        assert_eq!(S_I, 4);
        assert_eq!(F_A, 2);
        assert_eq!(F_M, 6);
        // Denominator of Eq. (5): 13*(2+6) + (7*2/2 + 9*6/2) = 104 + 34 = 138
        let nnzr = 13;
        let denom = nnzr * (F_A + F_M) + (7 * F_A / 2 + 9 * F_M / 2);
        assert_eq!(denom, 138);
    }

    #[test]
    fn kpm_flops_scales_linearly_in_r_and_m() {
        let n = 1000;
        let nnz = 13 * n;
        let base = kpm_flops(n, nnz, 1, 2);
        assert_eq!(kpm_flops(n, nnz, 4, 2), 4 * base);
        assert_eq!(kpm_flops(n, nnz, 1, 8), 4 * base);
    }

    #[test]
    fn aug_spmmv_flops_is_per_iteration_slice() {
        let n = 64;
        let nnz = 13 * n;
        let r = 8;
        let m = 10;
        assert_eq!(aug_spmmv_flops(n, nnz, r) * m / 2, kpm_flops(n, nnz, r, m));
    }
}
