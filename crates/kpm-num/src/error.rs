//! The workspace-wide typed error, `KpmError`.
//!
//! Every fallible user-facing path in the workspace — parameter
//! validation, matrix construction, the message-passing runtime, the
//! checkpoint store, and the numerical guardrails — returns this enum
//! instead of panicking. Internal invariants that cannot be violated by
//! user input stay `debug_assert!`s. Hand-rolled in the `thiserror`
//! style because the build runs with no registry access.

use std::fmt;

/// Convenience alias used across the workspace.
pub type KpmResult<T> = Result<T, KpmError>;

/// Typed error for every fallible operation in the KPM workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum KpmError {
    /// User-supplied solver or decomposition parameters are invalid.
    InvalidParams {
        /// Which parameter or precondition was violated.
        what: &'static str,
        /// Human-readable explanation.
        details: String,
    },
    /// User-supplied matrix data is structurally invalid.
    InvalidMatrix { what: &'static str, details: String },
    /// A NaN or infinity surfaced during the moment iteration.
    NonFinite {
        /// Which quantity went non-finite (e.g. `"eta_even"`).
        context: &'static str,
        /// The Chebyshev sweep index (0-based) where it happened.
        iteration: usize,
    },
    /// The Chebyshev recurrence is diverging: a moment partial grew past
    /// the bound implied by `‖H̃‖ ≤ 1`, i.e. the scale factors do not
    /// cover the spectrum. Carries the offending iteration so the run
    /// can be traced back.
    SpectralBoundsViolated {
        /// The Chebyshev sweep index (0-based) where the bound broke.
        iteration: usize,
        /// The observed partial value.
        value: f64,
        /// The bound it violated.
        bound: f64,
    },
    /// A receive deadline expired: the peer is presumed lost.
    RankUnreachable {
        /// The waiting rank.
        rank: usize,
        /// The peer that never answered.
        peer: usize,
        /// The tag of the message that was awaited.
        tag: u64,
        /// How long the receiver waited, in milliseconds.
        waited_ms: u64,
    },
    /// A rank died (simulated crash, panic, or early exit).
    RankCrashed { rank: usize },
    /// A send could not be delivered because the destination's inbox is
    /// gone (the receiving rank has terminated).
    SendFailed { from: usize, to: usize, tag: u64 },
    /// The out-of-order receive stash hit its capacity: the rank is
    /// being flooded with messages it never matches (message storm).
    StashOverflow { rank: usize, capacity: usize },
    /// After a world completed, undelivered messages remained — a
    /// protocol leak.
    MessageLeak { undelivered: usize },
    /// A checkpoint record failed validation (bad magic, version,
    /// length, or checksum).
    CheckpointCorrupt { details: String },
    /// The checkpoint requested for resume does not exist.
    CheckpointMissing { details: String },
    /// A resilient run gave up after the configured restart budget.
    RestartsExhausted {
        attempts: usize,
        /// The error of the final attempt, rendered to text.
        last_error: String,
    },
    /// An I/O failure in a file-backed checkpoint store.
    Io { details: String },
    /// A per-request compute deadline expired while the solve was still
    /// running. Carries the Chebyshev sweep index reached when the
    /// budget ran out, so a degraded (truncated-`M`) answer can be
    /// reasoned about.
    DeadlineExceeded {
        /// The sweep index (0-based) at which the deadline fired.
        iteration: usize,
    },
    /// The requested operation is not defined for the given mode or
    /// stage (e.g. asking the cluster performance model for the naive
    /// variant's node rate).
    Unsupported {
        /// What was asked for.
        what: &'static str,
        /// Why it is not available.
        details: String,
    },
}

impl fmt::Display for KpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KpmError::InvalidParams { what, details } => {
                write!(f, "invalid parameter `{what}`: {details}")
            }
            KpmError::InvalidMatrix { what, details } => {
                write!(f, "invalid matrix ({what}): {details}")
            }
            KpmError::NonFinite { context, iteration } => {
                write!(f, "non-finite {context} at iteration {iteration}")
            }
            KpmError::SpectralBoundsViolated {
                iteration,
                value,
                bound,
            } => write!(
                f,
                "spectral bounds violated at iteration {iteration}: |partial| = {value:e} \
                 exceeds {bound:e}; the scale factors do not cover the spectrum"
            ),
            KpmError::RankUnreachable {
                rank,
                peer,
                tag,
                waited_ms,
            } => write!(
                f,
                "rank {rank}: peer {peer} unreachable (tag {tag}, waited {waited_ms} ms)"
            ),
            KpmError::RankCrashed { rank } => write!(f, "rank {rank} crashed"),
            KpmError::SendFailed { from, to, tag } => {
                write!(
                    f,
                    "send {from} -> {to} (tag {tag}) failed: receiver is gone"
                )
            }
            KpmError::StashOverflow { rank, capacity } => write!(
                f,
                "rank {rank}: receive stash overflow (capacity {capacity} unmatched messages)"
            ),
            KpmError::MessageLeak { undelivered } => {
                write!(
                    f,
                    "{undelivered} undelivered message(s) after world shutdown"
                )
            }
            KpmError::CheckpointCorrupt { details } => {
                write!(f, "corrupt checkpoint: {details}")
            }
            KpmError::CheckpointMissing { details } => {
                write!(f, "checkpoint missing: {details}")
            }
            KpmError::RestartsExhausted {
                attempts,
                last_error,
            } => write!(
                f,
                "gave up after {attempts} attempt(s); last error: {last_error}"
            ),
            KpmError::Io { details } => write!(f, "checkpoint I/O error: {details}"),
            KpmError::DeadlineExceeded { iteration } => {
                write!(f, "deadline exceeded at iteration {iteration}")
            }
            KpmError::Unsupported { what, details } => {
                write!(f, "unsupported {what}: {details}")
            }
        }
    }
}

impl std::error::Error for KpmError {}

impl From<std::io::Error> for KpmError {
    fn from(e: std::io::Error) -> Self {
        KpmError::Io {
            details: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_iteration_for_spectral_violations() {
        let e = KpmError::SpectralBoundsViolated {
            iteration: 17,
            value: 1.2e9,
            bound: 4.0,
        };
        let s = e.to_string();
        assert!(s.contains("iteration 17"), "{s}");
        assert!(s.contains("scale factors"), "{s}");
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: KpmError = io.into();
        assert!(matches!(e, KpmError::Io { .. }));
    }
}
