//! Momentum-resolved spectral function `A(k, E)`.
//!
//! The right panel of paper Fig. 2 shows `A(k, E)` of the quantum-dot
//! superlattice: the Dirac cone of the topological surface state with
//! dot-induced band features. For a momentum `k` the spectral function
//! is
//!
//! `A(k, E) = Σ_σ ⟨k,σ| δ(E − H) |k,σ⟩`,
//!
//! with `|k,σ⟩` the normalized plane wave with spinor component `σ`,
//! computed as one KPM run per spinor channel.

use kpm_num::{Complex64, KpmError, Vector};
use kpm_sparse::CrsMatrix;
use kpm_topo::{Lattice3D, ScaleFactors};
use rayon::prelude::*;

use crate::dos::{reconstruct, DosCurve};
use crate::kernels::Kernel;
use crate::moments::MomentSet;
use crate::solver::moments_from_start;

/// Builds the normalized plane-wave state `|k, σ⟩` on the lattice:
/// amplitude `e^{i k·n} / √(sites)` on orbital `σ` of every site.
pub fn plane_wave(lattice: &Lattice3D, k: (f64, f64, f64), spinor: usize) -> Vector {
    assert!(spinor < 4, "spinor index must be 0..3");
    let n = lattice.dim();
    let norm = 1.0 / (lattice.sites() as f64).sqrt();
    let mut data = vec![Complex64::default(); n];
    for site in 0..lattice.sites() {
        let (x, y, z) = lattice.coords(site);
        let phase = k.0 * x as f64 + k.1 * y as f64 + k.2 * z as f64;
        data[4 * site + spinor] = Complex64::new(phase.cos(), phase.sin()).scale(norm);
    }
    Vector::from_vec(data)
}

/// KPM moments of `A(k, ·)`, averaged over the four spinor channels.
pub fn momentum_moments(
    h: &CrsMatrix,
    sf: ScaleFactors,
    lattice: &Lattice3D,
    k: (f64, f64, f64),
    num_moments: usize,
) -> Result<MomentSet, KpmError> {
    let mut acc = MomentSet::zeros(num_moments);
    for spinor in 0..4 {
        let start = plane_wave(lattice, k, spinor);
        acc.accumulate(&moments_from_start(h, sf, &start, num_moments, false)?);
    }
    Ok(acc)
}

/// The spectral function `A(k, E)` on an energy grid. Normalization:
/// the curve integrates to 4 (one state per spinor channel).
#[allow(clippy::too_many_arguments)]
pub fn spectral_function(
    h: &CrsMatrix,
    sf: ScaleFactors,
    lattice: &Lattice3D,
    k: (f64, f64, f64),
    num_moments: usize,
    kernel: Kernel,
    n_points: usize,
) -> Result<DosCurve, KpmError> {
    let set = momentum_moments(h, sf, lattice, k, num_moments)?;
    let mut curve = reconstruct(&set, kernel, sf, n_points);
    for v in &mut curve.values {
        *v *= 4.0;
    }
    Ok(curve)
}

/// A line cut through momentum space: `A(k_x, E)` for `n_k` momenta
/// along x (the abscissa of paper Fig. 2's right panel). Momenta are
/// processed in parallel.
pub struct SpectralCut {
    /// The sampled `k_x` values (in units where the Brillouin zone is
    /// `[-π, π]`).
    pub kx: Vec<f64>,
    /// One spectral curve per momentum.
    pub curves: Vec<DosCurve>,
}

/// Computes a `k_x` cut of the spectral function around the zone centre:
/// `k_x ∈ [-k_max, k_max]`, `k_y = k_z = 0`.
#[allow(clippy::too_many_arguments)]
pub fn spectral_cut(
    h: &CrsMatrix,
    sf: ScaleFactors,
    lattice: &Lattice3D,
    k_max: f64,
    n_k: usize,
    num_moments: usize,
    kernel: Kernel,
    n_points: usize,
) -> Result<SpectralCut, KpmError> {
    if n_k < 2 {
        return Err(KpmError::InvalidParams {
            what: "n_k",
            details: "need at least two momenta".to_string(),
        });
    }
    let kx: Vec<f64> = (0..n_k)
        .map(|i| -k_max + 2.0 * k_max * i as f64 / (n_k - 1) as f64)
        .collect();
    let curves: Vec<DosCurve> = kx
        .par_iter()
        .map(|&k| spectral_function(h, sf, lattice, (k, 0.0, 0.0), num_moments, kernel, n_points))
        .collect::<Result<_, KpmError>>()?;
    Ok(SpectralCut { kx, curves })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_topo::{Potential, TopoHamiltonian};

    fn periodic_clean(nx: usize, ny: usize, nz: usize) -> TopoHamiltonian {
        TopoHamiltonian {
            lattice: Lattice3D::periodic(nx, ny, nz),
            t: 1.0,
            potential: Potential::Zero,
        }
    }

    #[test]
    fn plane_wave_is_normalized() {
        let lat = Lattice3D::periodic(4, 4, 4);
        let v = plane_wave(&lat, (0.5, -0.25, 1.0), 2);
        assert!((v.norm() - 1.0).abs() < 1e-12);
        // Only the chosen spinor channel is occupied.
        for site in 0..lat.sites() {
            assert_eq!(v[4 * site], Complex64::default());
            assert!(v[4 * site + 2].abs() > 0.0);
        }
    }

    #[test]
    fn spectral_peaks_at_bloch_eigenvalues() {
        // Fully periodic clean system: A(k, E) must concentrate at the
        // two Bloch bands E_±(k).
        let ham = periodic_clean(6, 4, 4);
        let h = ham.assemble();
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let k = (2.0 * std::f64::consts::PI / 6.0, 0.0, 0.0); // allowed momentum
        let curve = spectral_function(&h, sf, &ham.lattice, k, 256, Kernel::Jackson, 1024).unwrap();
        let evs = TopoHamiltonian::bloch_eigenvalues(1.0, 0.0, k.0, k.1, k.2);
        let (e_minus, e_plus) = (evs[0], evs[2]);
        // The curve should be large near both band energies and small
        // in the middle of the gap between them... compare values.
        let at_minus = curve.value_at(e_minus);
        let at_plus = curve.value_at(e_plus);
        let mid = curve.value_at(0.5 * (e_minus + e_plus));
        assert!(at_minus > 10.0 * mid, "A at E- = {at_minus}, mid = {mid}");
        assert!(at_plus > 10.0 * mid, "A at E+ = {at_plus}, mid = {mid}");
    }

    #[test]
    fn spectral_integral_is_spinor_count() {
        let ham = periodic_clean(4, 4, 4);
        let h = ham.assemble();
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let curve = spectral_function(
            &h,
            sf,
            &ham.lattice,
            (0.0, 0.0, 0.0),
            128,
            Kernel::Jackson,
            2048,
        )
        .unwrap();
        assert!(
            (curve.integral() - 4.0).abs() < 0.05,
            "{}",
            curve.integral()
        );
    }

    #[test]
    fn cut_is_symmetric_for_clean_system() {
        // E(k) = E(-k) for the clean Hamiltonian: the cut's peak
        // energies must be symmetric around k = 0.
        let ham = periodic_clean(8, 4, 2);
        let h = ham.assemble();
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let cut = spectral_cut(
            &h,
            sf,
            &ham.lattice,
            std::f64::consts::PI / 2.0,
            5,
            96,
            Kernel::Jackson,
            256,
        )
        .unwrap();
        assert_eq!(cut.kx.len(), 5);
        assert!((cut.kx[2]).abs() < 1e-12);
        // A(k,E) = A(-k,E): the full curves must coincide (up to
        // Chebyshev round-off), not just their peaks.
        let left = &cut.curves[0];
        let right = &cut.curves[4];
        let max_val = left.values.iter().cloned().fold(0.0, f64::max);
        for (a, b) in left.values.iter().zip(&right.values) {
            assert!((a - b).abs() < 1e-6 * max_val.max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "spinor index")]
    fn invalid_spinor_panics() {
        let lat = Lattice3D::periodic(2, 2, 2);
        plane_wave(&lat, (0.0, 0.0, 0.0), 4);
    }
}
