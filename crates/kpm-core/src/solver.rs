//! The KPM-DOS solver in all three optimization stages.
//!
//! | Variant | Paper | Matrix kernel | Vector traffic / iter |
//! |---|---|---|---|
//! | [`KpmVariant::Naive`] | Fig. 3 | `spmv` + 2×`axpy` + `scal` + `nrm2` + `dot` | 13·N·S_d |
//! | [`KpmVariant::AugSpmv`] | Fig. 4 | `aug_spmv` (all fused) | 3·N·S_d |
//! | [`KpmVariant::AugSpmmv`] | Fig. 5 | `aug_spmmv` (fused + blocked) | 3·N·S_d, matrix read once per `R` |
//!
//! All three run the identical arithmetic and produce identical moments
//! for the same seed — the paper's point is precisely that the
//! *algorithm is untouched* and only the implementation changes.

use kpm_num::vector::{axpy, axpy_par, dot, dot_par, nrm2, nrm2_par, scal, scal_par};
use kpm_num::{BlockVector, Complex64, KpmError, Vector};
use kpm_obs::{metrics, span::span};
use kpm_sparse::SparseKernels;
use kpm_topo::ScaleFactors;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::checkpoint::{CheckpointStore, EtaCheckpoint, RankCheckpoint};
use crate::moments::MomentSet;

/// Divergence guardrail: a partial `η_even = ‖ν_m‖²` may never exceed
/// this multiple of `µ0 = ‖ν_0‖²`. With correct scale factors the
/// Chebyshev polynomials are bounded by 1 on the spectrum, so the norm
/// cannot grow at all; growth past this factor means the spectrum pokes
/// out of `[-1, 1]` and the recurrence is diverging exponentially.
const DIVERGENCE_FACTOR: f64 = 1e3;

/// Numerical guardrail applied every sweep in every variant: NaN/Inf in
/// a moment partial aborts with `NonFinite`; exponential growth aborts
/// with `SpectralBoundsViolated` carrying the offending iteration.
fn check_partials(iteration: usize, even: f64, odd: Complex64, mu0: f64) -> Result<(), KpmError> {
    if !even.is_finite() {
        return Err(KpmError::NonFinite {
            context: "eta_even",
            iteration,
        });
    }
    if !odd.is_finite() {
        return Err(KpmError::NonFinite {
            context: "eta_odd",
            iteration,
        });
    }
    let bound = DIVERGENCE_FACTOR * mu0.max(1.0);
    if even > bound {
        return Err(KpmError::SpectralBoundsViolated {
            iteration,
            value: even,
            bound,
        });
    }
    Ok(())
}

/// Which implementation stage executes the KPM iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KpmVariant {
    /// Paper Fig. 3: one SpMV plus a chain of BLAS-1 calls.
    Naive,
    /// Paper Fig. 4, optimization stage 1: the fused augmented SpMV.
    AugSpmv,
    /// Paper Fig. 5, optimization stage 2: the blocked augmented SpMMV.
    AugSpmmv,
}

/// Parameters of a KPM-DOS computation.
#[derive(Debug, Clone, Copy)]
pub struct KpmParams {
    /// Number of Chebyshev moments `M` (even, ≥ 2). The solver performs
    /// `M/2 - 1` matrix sweeps per random vector.
    pub num_moments: usize,
    /// Number of random vectors `R` for the stochastic trace.
    pub num_random: usize,
    /// RNG seed; the starting vectors are a pure function of it, so all
    /// variants see identical inputs.
    pub seed: u64,
    /// Use the rayon-parallel kernels.
    pub parallel: bool,
    /// Worker threads for the parallel kernels. `0` inherits the ambient
    /// pool (the `KPM_THREADS` environment variable, else one worker per
    /// available core); any other value pins a dedicated pool of that
    /// size for the solver run. Moments are bitwise-identical for every
    /// setting — the reduction tree is fixed by chunk boundaries, not by
    /// the thread count.
    pub threads: usize,
    /// Matrix-power depth `p` (≥ 1): the blocked solver advances up to
    /// `p` Chebyshev iterations per `aug_spmmv_power` call, letting a
    /// level-blocked kernel stream the matrix once per `p` sweeps.
    /// Purely a scheduling knob — moments are bitwise-identical for
    /// every value (the power kernels reproduce the plain sweeps bit
    /// for bit, and fall back to them when the operator does not
    /// level). The naive/fused single-vector variants ignore it.
    pub power: usize,
    /// NUMA-style first-touch placement: re-place the matrix's hot
    /// arrays and fault each block vector's row ranges from the pinned
    /// pool workers that stream them, so on multi-socket hosts pages
    /// land on the node that reads them. A pure placement property —
    /// moments are bitwise-identical with the flag on or off.
    pub first_touch: bool,
}

impl Default for KpmParams {
    fn default() -> Self {
        Self {
            num_moments: 256,
            num_random: 8,
            seed: 0x4B50_4D21, // "KPM!"
            parallel: true,
            threads: 0,
            power: 1,
            first_touch: false,
        }
    }
}

impl KpmParams {
    /// Matrix sweeps per random vector. Callers reach this only through
    /// entry points that ran [`KpmParams::validate`], so the evenness
    /// invariant is a debug assertion here.
    pub fn iterations(&self) -> usize {
        debug_assert!(
            self.num_moments >= 2 && self.num_moments.is_multiple_of(2),
            "num_moments must be even and >= 2"
        );
        self.num_moments / 2 - 1
    }

    /// Checks the user-facing parameter invariants, returning a typed
    /// error instead of panicking on bad input.
    pub fn validate(&self) -> Result<(), KpmError> {
        if self.num_moments < 2 || !self.num_moments.is_multiple_of(2) {
            return Err(KpmError::InvalidParams {
                what: "num_moments",
                details: format!(
                    "num_moments must be even and >= 2 (got {})",
                    self.num_moments
                ),
            });
        }
        if self.num_random < 1 {
            return Err(KpmError::InvalidParams {
                what: "num_random",
                details: "need at least one random vector".to_string(),
            });
        }
        if self.power < 1 {
            return Err(KpmError::InvalidParams {
                what: "power",
                details: "power-blocking depth must be >= 1".to_string(),
            });
        }
        Ok(())
    }
}

/// Runs `f` under the thread count the caller pinned: on a dedicated
/// pool of `threads` workers when `threads > 0`, on the ambient pool
/// otherwise. Building a small pool is cheap next to a solver run, and
/// keeping it scoped here means nested calls (e.g. the distributed
/// driver invoking per-rank solvers) compose without global state.
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> Result<T, KpmError> {
    if threads == 0 {
        return Ok(f());
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| KpmError::InvalidParams {
            what: "threads",
            details: format!("failed to build thread pool: {e}"),
        })?;
    Ok(pool.install(f))
}

/// Checks that `h` is square, as KPM requires.
fn validate_square<M: SparseKernels + ?Sized>(h: &M) -> Result<(), KpmError> {
    if h.nrows() != h.ncols() {
        return Err(KpmError::InvalidMatrix {
            what: "shape",
            details: format!(
                "KPM needs a square matrix (got {} x {})",
                h.nrows(),
                h.ncols()
            ),
        });
    }
    Ok(())
}

/// Runs KPM-DOS: estimates the Chebyshev moments
/// `μ_m ≈ tr[T_m(H̃)]/N` of the rescaled operator `H̃ = a(H − b·1)`
/// averaged over `R` random unit vectors, using the chosen
/// implementation stage.
///
/// Generic over the storage format: pass a `CrsMatrix`, a `SellMatrix`,
/// or a format-erased [`kpm_sparse::KpmMatrix`] — moments are
/// bitwise-identical across formats (and across thread counts) because
/// every [`SparseKernels`] implementation computes the same
/// floating-point chain.
pub fn kpm_moments<M: SparseKernels + ?Sized>(
    h: &M,
    sf: ScaleFactors,
    params: &KpmParams,
    variant: KpmVariant,
) -> Result<MomentSet, KpmError> {
    validate_square(h)?;
    params.validate()?;
    let _sp = span("solver.run", "solver")
        .arg("variant", format!("{variant:?}"))
        .arg("moments", params.num_moments)
        .arg("random", params.num_random);
    let starts = starting_vectors(h.nrows(), params);

    with_threads(params.threads, || match variant {
        KpmVariant::Naive => run_vector_variant(h, sf, params, &starts, false),
        KpmVariant::AugSpmv => run_vector_variant(h, sf, params, &starts, true),
        KpmVariant::AugSpmmv => run_blocked_variant(h, sf, params, &starts),
    })?
}

/// The normalized random starting vectors — a pure function of the seed,
/// shared with the distributed solver so moments agree exactly.
pub fn starting_vectors(n: usize, params: &KpmParams) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    (0..params.num_random)
        .map(|_| {
            let mut v = Vector::random(n, &mut rng);
            v.normalize();
            v
        })
        .collect()
}

/// Computes the moments `μ_m = ⟨φ|T_m(H̃)|φ⟩` of a *given* (not
/// necessarily normalized) starting vector — the primitive behind local
/// DOS and spectral functions, where the "trace" is over one state.
pub fn moments_from_start<M: SparseKernels + ?Sized>(
    h: &M,
    sf: ScaleFactors,
    start: &Vector,
    num_moments: usize,
    parallel: bool,
) -> Result<MomentSet, KpmError> {
    validate_square(h)?;
    let params = KpmParams {
        num_moments,
        num_random: 1,
        seed: 0,
        parallel,
        threads: 0,
        power: 1,
        first_touch: false,
    };
    params.validate()?;
    single_run_aug(h, sf, &params, start)
}

/// Builds a block vector from equal-length columns, optionally placing
/// its pages NUMA-locally first: allocate untouched, fault each
/// contiguous row range from the pinned pool worker that will stream it
/// ([`kpm_sparse::fault_block_rows`]), then fill. The filled values are
/// identical either way — placement is a pure performance property.
fn block_from_columns(cols: &[Vector], first_touch: bool) -> BlockVector {
    if !first_touch {
        return BlockVector::from_columns(cols);
    }
    let rows = cols.first().map_or(0, |c| c.len());
    let mut v = BlockVector::zeros(rows, cols.len());
    kpm_sparse::fault_block_rows(&mut v, 0);
    for (j, col) in cols.iter().enumerate() {
        v.set_column(j, col);
    }
    v
}

/// One KPM run in the naive (Fig. 3) or stage-1 (Fig. 4) formulation.
fn run_vector_variant<M: SparseKernels + ?Sized>(
    h: &M,
    sf: ScaleFactors,
    params: &KpmParams,
    starts: &[Vector],
    fused: bool,
) -> Result<MomentSet, KpmError> {
    let mut acc = MomentSet::zeros(params.num_moments);
    for v0 in starts {
        let set = if fused {
            single_run_aug(h, sf, params, v0)?
        } else {
            single_run_naive(h, sf, params, v0)?
        };
        acc.accumulate(&set);
    }
    Ok(acc)
}

/// Shared initialization: `ν₁ = H̃ν₀`, `μ₀ = ⟨ν₀|ν₀⟩`, `μ₁ = ⟨ν₁|ν₀⟩`.
///
/// Returns `(v, w, mu0, mu1)` with `v = ν₀`, `w = ν₁`. Implemented with
/// the same BLAS-1 chain in every variant so that moments agree exactly.
fn init_recurrence<M: SparseKernels + ?Sized>(
    h: &M,
    sf: ScaleFactors,
    v0: &Vector,
    parallel: bool,
) -> (Vec<Complex64>, Vec<Complex64>, f64, f64) {
    let n = h.nrows();
    let v = v0.as_slice().to_vec();
    let mut w = vec![Complex64::default(); n];
    if parallel {
        h.spmv_par(&v, &mut w);
        axpy_par(Complex64::real(-sf.b), &v, &mut w);
        scal_par(Complex64::real(sf.a), &mut w);
        let mu0 = nrm2_par(&v);
        let mu1 = dot_par(&w, &v).re;
        (v, w, mu0, mu1)
    } else {
        h.spmv(&v, &mut w);
        axpy(Complex64::real(-sf.b), &v, &mut w);
        scal(Complex64::real(sf.a), &mut w);
        let mu0 = nrm2(&v);
        let mu1 = dot(&w, &v).re;
        (v, w, mu0, mu1)
    }
}

/// The naive KPM loop (paper Fig. 3): per iteration one `spmv()`, two
/// `axpy()`, one `scal()`, one `nrm2()` and one `dot()` — the vectors
/// stream through memory six times.
fn single_run_naive<M: SparseKernels + ?Sized>(
    h: &M,
    sf: ScaleFactors,
    params: &KpmParams,
    v0: &Vector,
) -> Result<MomentSet, KpmError> {
    let n = h.nrows();
    let par = params.parallel;
    // Loop invariant at iteration m: v = ν_{m-1}, w = ν_m.
    let (mut v, mut w, mu0, mu1) = init_recurrence(h, sf, v0, par);
    let mut u = vec![Complex64::default(); n];
    let mut eta = Vec::with_capacity(params.iterations());
    let two_a = Complex64::real(2.0 * sf.a);
    let minus_b = Complex64::real(-sf.b);
    let minus_one = Complex64::real(-1.0);
    for m in 0..params.iterations() {
        let _sweep = span("solver.sweep", "solver");
        std::mem::swap(&mut v, &mut w); // v = ν_m, w = ν_{m-1}
        let pair = if par {
            h.spmv_par(&v, &mut u); // u = H v
            axpy_par(minus_b, &v, &mut u); // u = u - b v
            scal_par(minus_one, &mut w); // w = -w
            axpy_par(two_a, &u, &mut w); // w = w + 2a u  (= ν_{m+1})
            (nrm2_par(&v), dot_par(&w, &v))
        } else {
            h.spmv(&v, &mut u);
            axpy(minus_b, &v, &mut u);
            scal(minus_one, &mut w);
            axpy(two_a, &u, &mut w);
            (nrm2(&v), dot(&w, &v))
        };
        check_partials(m, pair.0, pair.1, mu0)?;
        eta.push(pair);
    }
    Ok(MomentSet::from_eta(mu0, mu1, &eta))
}

/// The stage-1 loop (paper Fig. 4): one fused `aug_spmv()` per
/// iteration.
fn single_run_aug<M: SparseKernels + ?Sized>(
    h: &M,
    sf: ScaleFactors,
    params: &KpmParams,
    v0: &Vector,
) -> Result<MomentSet, KpmError> {
    let par = params.parallel;
    let (mut v, mut w, mu0, mu1) = init_recurrence(h, sf, v0, par);
    let mut eta = Vec::with_capacity(params.iterations());
    for m in 0..params.iterations() {
        let _sweep = span("solver.sweep", "solver");
        std::mem::swap(&mut v, &mut w);
        let dots = if par {
            h.aug_spmv_par(sf.a, sf.b, &v, &mut w)
        } else {
            h.aug_spmv(sf.a, sf.b, &v, &mut w)
        };
        check_partials(m, dots.eta_even, dots.eta_odd, mu0)?;
        eta.push((dots.eta_even, dots.eta_odd));
    }
    Ok(MomentSet::from_eta(mu0, mu1, &eta))
}

/// The stage-2 loop (paper Fig. 5): all `R` random vectors advance
/// together through one blocked `aug_spmmv()` per iteration; the matrix
/// is streamed once per iteration instead of `R` times.
fn run_blocked_variant<M: SparseKernels + ?Sized>(
    h: &M,
    sf: ScaleFactors,
    params: &KpmParams,
    starts: &[Vector],
) -> Result<MomentSet, KpmError> {
    let r = starts.len();
    let par = params.parallel;

    // Per-column initialization with the identical BLAS-1 chain.
    let mut mu0 = vec![0.0; r];
    let mut mu1 = vec![0.0; r];
    let mut v_cols = Vec::with_capacity(r);
    let mut w_cols = Vec::with_capacity(r);
    for (j, v0) in starts.iter().enumerate() {
        let (v, w, m0, m1) = init_recurrence(h, sf, v0, par);
        mu0[j] = m0;
        mu1[j] = m1;
        v_cols.push(Vector::from_vec(v));
        w_cols.push(Vector::from_vec(w));
    }
    let ft = params.first_touch && par;
    let mut v = block_from_columns(&v_cols, ft);
    let mut w = block_from_columns(&w_cols, ft);

    let iters = params.iterations();
    let mut eta: Vec<Vec<(f64, Complex64)>> = vec![Vec::with_capacity(iters); r];
    let mut m = 0;
    while m < iters {
        let _sweep = span("solver.sweep", "solver");
        // Advance up to `power` iterations per matrix sweep. The power
        // kernels own the `v`/`w` swap (their contract maps
        // (x_{k-1}, x_k) to (x_{k+p-1}, x_{k+p})), and their trait
        // default is literally `p × { swap; aug_spmmv }`, so `power: 1`
        // reproduces the classic loop bit for bit.
        let p = params.power.max(1).min(iters - m);
        let dots_vec = if par {
            h.aug_spmmv_power_par(p, sf.a, sf.b, &mut v, &mut w)
        } else {
            // The serial trait kernel; on CRS this routes through the
            // width-specialized registry (the paper's generated-kernel
            // dispatch).
            h.aug_spmmv_power(p, sf.a, sf.b, &mut v, &mut w)
        };
        for dots in dots_vec {
            for (j, eta_j) in eta.iter_mut().enumerate() {
                check_partials(m, dots.eta_even[j], dots.eta_odd[j], mu0[j])?;
                eta_j.push((dots.eta_even[j], dots.eta_odd[j]));
            }
            m += 1;
        }
    }

    let mut acc = MomentSet::zeros(params.num_moments);
    for j in 0..r {
        acc.accumulate(&MomentSet::from_eta(mu0[j], mu1[j], &eta[j]));
    }
    Ok(acc)
}

/// Columns per task when a batched solve runs in parallel.
///
/// Fixed (never derived from the thread count) so the column grouping —
/// and therefore every floating-point chain — is identical no matter
/// how many workers execute the groups.
const BATCH_GROUP_COLS: usize = 8;

/// Deadline-aware batched KPM runs over arbitrary starting vectors —
/// the service front-end's solve primitive.
///
/// Column `j` of the result is **bitwise identical** to
/// [`moments_from_start`]`(h, sf, &starts[j], num_moments, false)`
/// regardless of the batch composition: every column runs the serial
/// blocked kernel chain, whose per-column arithmetic is the single
/// fused `aug_spmv` chain (see `kpm-sparse::aug`). `parallel` splits
/// the batch into fixed groups of [`BATCH_GROUP_COLS`] columns solved
/// concurrently; grouping never mixes columns arithmetically, so
/// results are also bitwise-identical across thread counts.
///
/// `deadline` aborts the sweep loop with
/// [`KpmError::DeadlineExceeded`] once the wall clock passes it — the
/// hook the service uses to thread per-request budgets through the
/// solver.
pub fn kpm_batch_moments<M: SparseKernels + ?Sized>(
    h: &M,
    sf: ScaleFactors,
    starts: &[Vector],
    num_moments: usize,
    parallel: bool,
    deadline: Option<std::time::Instant>,
) -> Result<Vec<MomentSet>, KpmError> {
    kpm_batch_moments_power(h, sf, starts, num_moments, parallel, deadline, 1)
}

/// [`kpm_batch_moments`] with a matrix-power depth: each group advances
/// up to `power` Chebyshev iterations per matrix sweep through the
/// level-blocked `aug_spmmv_power` kernel. Results are bitwise
/// identical to `power = 1`; only the deadline check coarsens to one
/// test per power chunk.
pub fn kpm_batch_moments_power<M: SparseKernels + ?Sized>(
    h: &M,
    sf: ScaleFactors,
    starts: &[Vector],
    num_moments: usize,
    parallel: bool,
    deadline: Option<std::time::Instant>,
    power: usize,
) -> Result<Vec<MomentSet>, KpmError> {
    validate_square(h)?;
    KpmParams {
        num_moments,
        num_random: 1,
        power: power.max(1),
        ..KpmParams::default()
    }
    .validate()?;
    for v0 in starts {
        if v0.len() != h.nrows() {
            return Err(KpmError::InvalidParams {
                what: "starts",
                details: format!(
                    "starting vector length {} does not match matrix dimension {}",
                    v0.len(),
                    h.nrows()
                ),
            });
        }
    }
    let _sp = span("solver.batch", "solver")
        .arg("columns", starts.len())
        .arg("moments", num_moments);
    if !parallel || starts.len() <= BATCH_GROUP_COLS {
        let mut out = Vec::with_capacity(starts.len());
        for group in starts.chunks(BATCH_GROUP_COLS) {
            out.extend(batch_group_serial(
                h,
                sf,
                group,
                num_moments,
                deadline,
                power,
            )?);
        }
        return Ok(out);
    }
    let groups: Result<Vec<Vec<MomentSet>>, KpmError> = starts
        .par_chunks(BATCH_GROUP_COLS)
        .map(|group| batch_group_serial(h, sf, group, num_moments, deadline, power))
        .collect();
    Ok(groups?.into_iter().flatten().collect())
}

/// One column group of a batched solve: the serial stage-2 recurrence
/// over up to [`BATCH_GROUP_COLS`] columns. Serial by design — see
/// [`kpm_batch_moments`] for the bitwise argument.
fn batch_group_serial<M: SparseKernels + ?Sized>(
    h: &M,
    sf: ScaleFactors,
    starts: &[Vector],
    num_moments: usize,
    deadline: Option<std::time::Instant>,
    power: usize,
) -> Result<Vec<MomentSet>, KpmError> {
    let r = starts.len();
    if r == 0 {
        return Ok(Vec::new());
    }
    let iterations = num_moments / 2 - 1;
    let mut mu0 = vec![0.0; r];
    let mut mu1 = vec![0.0; r];
    let mut v_cols = Vec::with_capacity(r);
    let mut w_cols = Vec::with_capacity(r);
    for (j, v0) in starts.iter().enumerate() {
        let (v, w, m0, m1) = init_recurrence(h, sf, v0, false);
        mu0[j] = m0;
        mu1[j] = m1;
        v_cols.push(Vector::from_vec(v));
        w_cols.push(Vector::from_vec(w));
    }
    let mut v = BlockVector::from_columns(&v_cols);
    let mut w = BlockVector::from_columns(&w_cols);

    let mut eta: Vec<Vec<(f64, Complex64)>> = vec![Vec::with_capacity(iterations); r];
    let mut m = 0;
    while m < iterations {
        if let Some(d) = deadline {
            if std::time::Instant::now() >= d {
                return Err(KpmError::DeadlineExceeded { iteration: m });
            }
        }
        let _sweep = span("solver.sweep", "solver");
        let p = power.max(1).min(iterations - m);
        let dots_vec = h.aug_spmmv_power(p, sf.a, sf.b, &mut v, &mut w);
        for dots in dots_vec {
            for (j, eta_j) in eta.iter_mut().enumerate() {
                check_partials(m, dots.eta_even[j], dots.eta_odd[j], mu0[j])?;
                eta_j.push((dots.eta_even[j], dots.eta_odd[j]));
            }
            m += 1;
        }
    }
    Ok((0..r)
        .map(|j| MomentSet::from_eta(mu0[j], mu1[j], &eta[j]))
        .collect())
}

/// Checkpoint/restart policy for [`kpm_moments_checkpointed`].
pub struct SolverCheckpointing<'a> {
    /// Where checkpoints are written and restarts read from.
    pub store: &'a dyn CheckpointStore,
    /// Sweeps between checkpoints (≥ 1).
    pub interval: usize,
    /// Test hook: simulate a crash (return `Err(RankCrashed)`) when a
    /// *fresh* run reaches this sweep. A run resumed from a checkpoint
    /// never crashes here, so write → crash → resume roundtrips in one
    /// process.
    pub crash_at: Option<usize>,
}

/// The stage-2 blocked solver with checkpoint/restart: identical
/// arithmetic to [`kpm_moments`] with [`KpmVariant::AugSpmmv`], but the
/// recurrence state `(m, ν_m, ν_{m+1}, η prefix)` is serialized into
/// `ckpt.store` every `ckpt.interval` sweeps, and on entry the newest
/// consistent checkpoint (if any) is restored instead of starting over.
///
/// Because η values are recorded *as computed* and never recomputed, the
/// resumed run reproduces the uninterrupted moments bit for bit.
pub fn kpm_moments_checkpointed<M: SparseKernels + ?Sized>(
    h: &M,
    sf: ScaleFactors,
    params: &KpmParams,
    ckpt: &SolverCheckpointing<'_>,
) -> Result<MomentSet, KpmError> {
    with_threads(params.threads, || checkpointed_run(h, sf, params, ckpt))?
}

/// [`kpm_moments_checkpointed`] under the already-installed pool.
fn checkpointed_run<M: SparseKernels + ?Sized>(
    h: &M,
    sf: ScaleFactors,
    params: &KpmParams,
    ckpt: &SolverCheckpointing<'_>,
) -> Result<MomentSet, KpmError> {
    validate_square(h)?;
    params.validate()?;
    if ckpt.interval == 0 {
        return Err(KpmError::InvalidParams {
            what: "interval",
            details: "checkpoint interval must be >= 1 sweeps".to_string(),
        });
    }
    let n = h.nrows();
    let r = params.num_random;
    let iters = params.iterations();

    // η in the flat distributed layout: [µ0 | µ1 | per-sweep (even | odd)].
    let mut eta_flat: Vec<Complex64>;
    let mut v: BlockVector;
    let mut w: BlockVector;
    let start_iter: usize;

    let restore_sp = span("solver.ckpt.restore", "ckpt");
    let restore_t0 = std::time::Instant::now();
    match crate::checkpoint::latest_consistent(ckpt.store, n)? {
        Some(it) => {
            let rck = ckpt
                .store
                .load_rank(it, 0)?
                .ok_or_else(|| KpmError::CheckpointMissing {
                    details: format!("rank 0 record at iteration {it}"),
                })?;
            let eck = ckpt
                .store
                .load_eta(it)?
                .ok_or_else(|| KpmError::CheckpointMissing {
                    details: format!("eta record at iteration {it}"),
                })?;
            if rck.width != r || eck.width != r || rck.row_end - rck.row_begin != n {
                return Err(KpmError::CheckpointCorrupt {
                    details: "checkpoint geometry does not match this run".to_string(),
                });
            }
            v = block_from_interleaved(&rck.v, n, r);
            w = block_from_interleaved(&rck.w, n, r);
            eta_flat = eck.eta;
            start_iter = it;
            metrics::counter_inc("solver.ckpt.restores");
            metrics::hist_record_ns(
                "solver.ckpt.restore_ns",
                restore_t0.elapsed().as_nanos() as u64,
            );
        }
        None => {
            let starts = starting_vectors(n, params);
            let mut mu0 = vec![Complex64::default(); r];
            let mut mu1 = vec![Complex64::default(); r];
            let mut v_cols = Vec::with_capacity(r);
            let mut w_cols = Vec::with_capacity(r);
            for (j, v0) in starts.iter().enumerate() {
                let (vv, ww, m0, m1) = init_recurrence(h, sf, v0, params.parallel);
                mu0[j] = Complex64::real(m0);
                mu1[j] = Complex64::real(m1);
                v_cols.push(Vector::from_vec(vv));
                w_cols.push(Vector::from_vec(ww));
            }
            let ft = params.first_touch && params.parallel;
            v = block_from_columns(&v_cols, ft);
            w = block_from_columns(&w_cols, ft);
            eta_flat = Vec::with_capacity(2 * r + iters * 2 * r);
            eta_flat.extend_from_slice(&mu0);
            eta_flat.extend_from_slice(&mu1);
            start_iter = 0;
        }
    }
    drop(restore_sp);

    let mut m = start_iter;
    while m < iters {
        let _sweep = span("solver.sweep", "solver");
        if start_iter == 0 && ckpt.crash_at == Some(m) {
            return Err(KpmError::RankCrashed { rank: 0 });
        }
        // Power chunks are clamped so saves still land exactly on
        // checkpoint-interval boundaries and an injected crash fires at
        // its precise iteration (the chunk stops just before it, the
        // next loop entry reports the crash). Clamping never changes
        // bits — the power kernels are iteration-exact at any `p`.
        let mut p = params.power.max(1).min(iters - m);
        p = p.min(ckpt.interval - m % ckpt.interval);
        if start_iter == 0 {
            if let Some(c) = ckpt.crash_at {
                if c > m {
                    p = p.min(c - m);
                }
            }
        }
        let dots_vec = if params.parallel {
            h.aug_spmmv_power_par(p, sf.a, sf.b, &mut v, &mut w)
        } else {
            h.aug_spmmv_power(p, sf.a, sf.b, &mut v, &mut w)
        };
        for dots in dots_vec {
            for j in 0..r {
                check_partials(m, dots.eta_even[j], dots.eta_odd[j], eta_flat[j].re)?;
                eta_flat.push(Complex64::real(dots.eta_even[j]));
            }
            eta_flat.extend_from_slice(&dots.eta_odd);
            m += 1;
        }
        let done = m;
        if done.is_multiple_of(ckpt.interval) && done < iters {
            let _save_sp = span("solver.ckpt.save", "ckpt");
            let save_t0 = std::time::Instant::now();
            ckpt.store.save_rank(&RankCheckpoint {
                iteration: done,
                rank: 0,
                row_begin: 0,
                row_end: n,
                width: r,
                halo_sent: 0,
                v: interleave_block(&v),
                w: interleave_block(&w),
            })?;
            ckpt.store.save_eta(&EtaCheckpoint {
                iteration: done,
                width: r,
                eta: eta_flat.clone(),
            })?;
            metrics::counter_inc("solver.ckpt.saves");
            metrics::hist_record_ns("solver.ckpt.save_ns", save_t0.elapsed().as_nanos() as u64);
        }
    }

    Ok(moments_from_flat_eta(
        &eta_flat,
        params.num_moments,
        r,
        iters,
    ))
}

/// Rebuilds a [`MomentSet`] from the flat η layout shared by the
/// checkpointed and the distributed solver.
pub fn moments_from_flat_eta(
    eta_flat: &[Complex64],
    num_moments: usize,
    r: usize,
    iters: usize,
) -> MomentSet {
    debug_assert_eq!(eta_flat.len(), 2 * r + iters * 2 * r);
    let mut acc = MomentSet::zeros(num_moments);
    for j in 0..r {
        let mu0 = eta_flat[j].re;
        let mu1 = eta_flat[r + j].re;
        let mut eta = Vec::with_capacity(iters);
        for m in 0..iters {
            let base = 2 * r + m * 2 * r;
            eta.push((eta_flat[base + j].re, eta_flat[base + r + j]));
        }
        acc.accumulate(&MomentSet::from_eta(mu0, mu1, &eta));
    }
    acc
}

fn block_from_interleaved(data: &[Complex64], rows: usize, width: usize) -> BlockVector {
    debug_assert_eq!(data.len(), rows * width);
    let mut b = BlockVector::zeros(rows, width);
    for i in 0..rows {
        b.row_mut(i)
            .copy_from_slice(&data[i * width..(i + 1) * width]);
    }
    b
}

fn interleave_block(b: &BlockVector) -> Vec<Complex64> {
    let mut out = Vec::with_capacity(b.rows() * b.width());
    for i in 0..b.rows() {
        out.extend_from_slice(b.row(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chebyshev::t;
    use kpm_topo::model::{chain_1d, chain_1d_eigenvalues, random_hermitian};
    use kpm_topo::TopoHamiltonian;

    fn params(m: usize, r: usize) -> KpmParams {
        KpmParams {
            num_moments: m,
            num_random: r,
            seed: 1234,
            parallel: false,
            threads: 0,
            power: 1,
            first_touch: false,
        }
    }

    #[test]
    fn all_variants_agree_to_rounding() {
        let h = random_hermitian(200, 4, 7);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(64, 4);
        let naive = kpm_moments(&h, sf, &p, KpmVariant::Naive).unwrap();
        let stage1 = kpm_moments(&h, sf, &p, KpmVariant::AugSpmv).unwrap();
        let stage2 = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        assert!(naive.max_abs_diff(&stage1) < 1e-10, "naive vs stage1");
        assert!(naive.max_abs_diff(&stage2) < 1e-10, "naive vs stage2");
    }

    #[test]
    fn parallel_matches_serial() {
        let h = random_hermitian(300, 4, 11);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let mut p = params(32, 2);
        let serial = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        p.parallel = true;
        let parallel = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        assert!(serial.max_abs_diff(&parallel) < 1e-9);
    }

    #[test]
    fn first_touch_is_bitwise_neutral_in_the_solver() {
        // First-touch only changes *where* pages land, never what is in
        // them, so moments must match bit for bit — across serial and
        // parallel, and across a pinned multi-worker pool.
        let h = random_hermitian(300, 4, 17);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        for (parallel, threads) in [(false, 0), (true, 0), (true, 4)] {
            let mut p = params(32, 3);
            p.parallel = parallel;
            p.threads = threads;
            let base = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
            p.first_touch = true;
            let placed = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
            assert_eq!(
                base.as_slice(),
                placed.as_slice(),
                "parallel={parallel} threads={threads}"
            );
        }
    }

    #[test]
    fn mu0_is_one_for_normalized_starts() {
        let h = random_hermitian(150, 3, 13);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let set = kpm_moments(&h, sf, &params(16, 3), KpmVariant::AugSpmv).unwrap();
        assert!((set.as_slice()[0] - 1.0).abs() < 1e-12);
        assert_eq!(set.runs(), 3);
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn moments_bounded_by_one() {
        // |μ_m| = |tr T_m(H̃)|/N <= 1 because ‖T_m(H̃)‖ <= 1 on [-1,1].
        let ham = TopoHamiltonian::clean(4, 4, 3);
        let h = ham.assemble();
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let set = kpm_moments(&h, sf, &params(64, 2), KpmVariant::AugSpmmv).unwrap();
        for (m, &mu) in set.as_slice().iter().enumerate() {
            assert!(mu.abs() <= 1.0 + 1e-9, "mu[{m}] = {mu}");
        }
    }

    #[test]
    fn single_state_moments_match_exact_chebyshev_sum() {
        // For a start vector expanded in exact eigenvectors, μ_m =
        // Σ_n |c_n|² T_m(x_n). Use the 1D chain where eigenvectors are
        // sines: pick a single eigenvector as the start, then
        // μ_m = T_m(x_k) exactly.
        let n = 40;
        let h = chain_1d(n, 1.0);
        let sf = ScaleFactors::from_bounds(-2.0, 2.0, 0.05);
        let evs = chain_1d_eigenvalues(n, 1.0);
        let k_mode = 7usize; // arbitrary eigenmode (1-based k = 8)
                             // Eigenvector of the open chain: v_i ∝ sin((i+1) k π / (n+1)).
        let kq = (k_mode + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0);
        let mut v = Vector::from_vec(
            (0..n)
                .map(|i| Complex64::real(((i + 1) as f64 * kq).sin()))
                .collect(),
        );
        v.normalize();
        // Energy of this mode is 2cos(kq) — check that it appears in the
        // sorted eigenvalue list.
        let e_mode = 2.0 * kq.cos();
        assert!(evs.iter().any(|e| (e - e_mode).abs() < 1e-12));

        let set = moments_from_start(&h, sf, &v, 48, false).unwrap();
        let x = sf.to_chebyshev(e_mode);
        for (m, &mu) in set.as_slice().iter().enumerate() {
            assert!(
                (mu - t(m, x)).abs() < 1e-8,
                "m={m}: mu={mu} vs T_m={}",
                t(m, x)
            );
        }
    }

    #[test]
    fn more_random_vectors_reduce_trace_noise() {
        // The exact normalized trace of T_1(H̃) for the chain is
        // tr[H̃]/n = -a·b (diagonal is zero). Compare estimator errors.
        let n = 400;
        let h = chain_1d(n, 1.0);
        let sf = ScaleFactors::from_bounds(-2.0, 2.0, 0.05);
        let exact_mu1 = -sf.a * sf.b; // = 0 here, b = 0
        let err = |r: usize| -> f64 {
            let set = kpm_moments(&h, sf, &params(8, r), KpmVariant::AugSpmmv).unwrap();
            (set.as_slice()[1] - exact_mu1).abs()
        };
        // With 64x more vectors the stochastic error should clearly drop.
        let e1 = err(1);
        let e64 = err(64);
        assert!(e64 < e1, "e1={e1} e64={e64}");
    }

    #[test]
    fn odd_moment_count_rejected() {
        let h = chain_1d(10, 1.0);
        let sf = ScaleFactors::from_bounds(-2.0, 2.0, 0.05);
        let p = KpmParams {
            num_moments: 7,
            num_random: 1,
            seed: 0,
            parallel: false,
            threads: 0,
            power: 1,
            first_touch: false,
        };
        let err = kpm_moments(&h, sf, &p, KpmVariant::Naive).expect_err("odd M must be rejected");
        assert!(
            matches!(
                err,
                KpmError::InvalidParams {
                    what: "num_moments",
                    ..
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("even"), "{err}");
    }

    #[test]
    fn zero_random_vectors_rejected() {
        let h = chain_1d(10, 1.0);
        let sf = ScaleFactors::from_bounds(-2.0, 2.0, 0.05);
        let p = KpmParams {
            num_moments: 8,
            num_random: 0,
            seed: 0,
            parallel: false,
            threads: 0,
            power: 1,
            first_touch: false,
        };
        let err = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).expect_err("R = 0 is invalid");
        assert!(matches!(
            err,
            KpmError::InvalidParams {
                what: "num_random",
                ..
            }
        ));
    }

    #[test]
    fn undersized_scale_factors_trip_the_divergence_guardrail() {
        // Spectrum of the chain is [-2, 2]; claim it is [-0.5, 0.5] so
        // ‖H̃‖ > 1 and the recurrence grows exponentially.
        let h = chain_1d(64, 1.0);
        let sf = ScaleFactors::from_bounds(-0.5, 0.5, 0.0);
        let err = kpm_moments(&h, sf, &params(128, 1), KpmVariant::Naive)
            .expect_err("divergence must be detected");
        match err {
            KpmError::SpectralBoundsViolated {
                iteration,
                value,
                bound,
            } => {
                assert!(iteration < 128, "iteration {iteration} out of range");
                assert!(value > bound, "value {value} <= bound {bound}");
            }
            other => panic!("expected SpectralBoundsViolated, got {other:?}"),
        }
        // All variants detect it, at the same iteration.
        let err2 = kpm_moments(&h, sf, &params(128, 1), KpmVariant::AugSpmmv)
            .expect_err("blocked variant must also detect divergence");
        assert!(matches!(err2, KpmError::SpectralBoundsViolated { .. }));
    }

    #[test]
    fn sell_moments_are_bitwise_equal_to_crs() {
        use kpm_sparse::{FormatSpec, KpmMatrix, SellMatrix};
        let h = random_hermitian(240, 4, 17);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        for parallel in [false, true] {
            let mut p = params(32, 4);
            p.parallel = parallel;
            for variant in [KpmVariant::Naive, KpmVariant::AugSpmv, KpmVariant::AugSpmmv] {
                let crs_set = kpm_moments(&h, sf, &p, variant).unwrap();
                for (c, sigma) in [(4usize, 16usize), (8, 8), (32, 64)] {
                    let sell = SellMatrix::from_crs(&h, c, sigma);
                    let sell_set = kpm_moments(&sell, sf, &p, variant).unwrap();
                    assert_eq!(
                        crs_set.as_slice(),
                        sell_set.as_slice(),
                        "{variant:?} parallel={parallel} C={c} sigma={sigma}"
                    );
                }
                // The format-erased handle agrees too.
                let erased = KpmMatrix::try_with_format(
                    h.clone(),
                    &FormatSpec::Sell {
                        chunk_height: 8,
                        sigma: 32,
                    },
                )
                .unwrap();
                let erased_set = kpm_moments(&erased, sf, &p, variant).unwrap();
                assert_eq!(crs_set.as_slice(), erased_set.as_slice());
            }
        }
    }

    #[test]
    fn checkpointed_run_accepts_sell_matrices() {
        use crate::checkpoint::MemoryCheckpointStore;
        use kpm_sparse::SellMatrix;
        let h = random_hermitian(100, 4, 23);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(24, 2);
        let plain = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        let sell = SellMatrix::from_crs(&h, 8, 16);
        let store = MemoryCheckpointStore::new();
        let ckpt = SolverCheckpointing {
            store: &store,
            interval: 4,
            crash_at: None,
        };
        let checkpointed = kpm_moments_checkpointed(&sell, sf, &p, &ckpt).unwrap();
        assert_eq!(plain.as_slice(), checkpointed.as_slice());
    }

    #[test]
    fn checkpointed_run_matches_plain_run_bitwise() {
        use crate::checkpoint::MemoryCheckpointStore;
        let h = random_hermitian(120, 4, 3);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(32, 3);
        let plain = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        let store = MemoryCheckpointStore::new();
        let ckpt = SolverCheckpointing {
            store: &store,
            interval: 4,
            crash_at: None,
        };
        let checkpointed = kpm_moments_checkpointed(&h, sf, &p, &ckpt).unwrap();
        assert_eq!(
            plain.as_slice(),
            checkpointed.as_slice(),
            "not bitwise equal"
        );
    }

    #[test]
    fn crash_and_resume_reproduces_the_uninterrupted_moments() {
        use crate::checkpoint::MemoryCheckpointStore;
        let h = random_hermitian(100, 3, 5);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(40, 2); // 19 sweeps
        let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();

        let store = MemoryCheckpointStore::new();
        let crash_mid = SolverCheckpointing {
            store: &store,
            interval: 3,
            crash_at: Some(p.iterations() / 2),
        };
        let err = kpm_moments_checkpointed(&h, sf, &p, &crash_mid)
            .expect_err("the injected crash must fire");
        assert!(matches!(err, KpmError::RankCrashed { rank: 0 }));

        // Resume from the surviving store; the crash hook does not fire
        // on resumed runs.
        let resumed = kpm_moments_checkpointed(&h, sf, &p, &crash_mid).unwrap();
        let diff = reference.max_abs_diff(&resumed);
        assert!(diff < 1e-12, "resume diverged from fault-free run: {diff}");
        assert_eq!(
            reference.as_slice(),
            resumed.as_slice(),
            "not bitwise equal"
        );
    }
}
