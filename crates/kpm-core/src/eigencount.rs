//! Eigenvalue counting in spectral windows.
//!
//! The paper motivates KPM-DOS with "eigenvalue counting for
//! predetermination of sub-space sizes in projection-based eigensolvers"
//! (refs. [8] di Napoli/Polizzi/Saad and [22] FEAST robustness): before
//! launching a contour/projection eigensolver one needs the number of
//! eigenvalues inside the search interval to size the subspace. This
//! module provides that estimate directly from KPM moments, including a
//! variant that integrates the damped Chebyshev series *analytically*
//! (no sampling grid) via the Chebyshev antiderivative identity
//! `∫ T_m(x)/√(1-x²) dx = -sin(m·arccos x)/m`.

use kpm_sparse::CrsMatrix;
use kpm_topo::ScaleFactors;

use crate::kernels::Kernel;
use crate::moments::MomentSet;
use crate::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_num::KpmError;

/// Analytic integral of the damped KPM density over the Chebyshev
/// window `[x_lo, x_hi] ⊆ [-1, 1]`:
///
/// `∫ ρ̃(x) dx = (1/π)[ g₀μ₀·(θ_lo - θ_hi) + 2 Σ_m g_m μ_m (sin(m θ_lo) - sin(m θ_hi))/m ]`
///
/// with `θ = arccos x` (θ decreases as x grows).
pub fn window_fraction(moments: &MomentSet, kernel: Kernel, x_lo: f64, x_hi: f64) -> f64 {
    assert!(x_lo <= x_hi, "window must be ordered");
    let x_lo = x_lo.clamp(-1.0, 1.0);
    let x_hi = x_hi.clamp(-1.0, 1.0);
    let theta_lo = x_lo.acos(); // larger angle
    let theta_hi = x_hi.acos(); // smaller angle
    let g = kernel.coefficients(moments.len());
    let mu = moments.as_slice();
    if mu.is_empty() {
        return 0.0;
    }
    let mut acc = g[0] * mu[0] * (theta_lo - theta_hi);
    for m in 1..mu.len() {
        let mf = m as f64;
        acc += 2.0 * g[m] * mu[m] * ((mf * theta_lo).sin() - (mf * theta_hi).sin()) / mf;
    }
    acc / std::f64::consts::PI
}

/// Estimated number of eigenvalues of `h` in the energy window
/// `[e_lo, e_hi]` from precomputed moments.
pub fn count_from_moments(
    moments: &MomentSet,
    kernel: Kernel,
    sf: ScaleFactors,
    dim: usize,
    e_lo: f64,
    e_hi: f64,
) -> f64 {
    let frac = window_fraction(
        moments,
        kernel,
        sf.to_chebyshev(e_lo),
        sf.to_chebyshev(e_hi),
    );
    frac * dim as f64
}

/// End-to-end convenience: runs KPM on `h` and returns the estimated
/// eigenvalue count in `[e_lo, e_hi]` — the subspace size a FEAST-like
/// solver should allocate for that window.
pub fn estimate_count(
    h: &CrsMatrix,
    params: &KpmParams,
    e_lo: f64,
    e_hi: f64,
) -> Result<f64, KpmError> {
    let sf = ScaleFactors::from_gershgorin(h, 0.01);
    let moments = kpm_moments(h, sf, params, KpmVariant::AugSpmmv)?;
    Ok(count_from_moments(
        &moments,
        Kernel::Jackson,
        sf,
        h.nrows(),
        e_lo,
        e_hi,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_topo::model::{chain_1d, chain_1d_eigenvalues, exact_eigenvalues, random_hermitian};

    fn params(m: usize, r: usize) -> KpmParams {
        KpmParams {
            num_moments: m,
            num_random: r,
            seed: 60,
            parallel: false,
            threads: 0,
            power: 1,
            first_touch: false,
        }
    }

    #[test]
    fn full_window_counts_all_states() {
        let h = random_hermitian(100, 3, 1);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let set = kpm_moments(&h, sf, &params(64, 16), KpmVariant::AugSpmmv).unwrap();
        let frac = window_fraction(&set, Kernel::Jackson, -1.0, 1.0);
        assert!((frac - 1.0).abs() < 1e-9, "full window fraction: {frac}");
    }

    #[test]
    fn analytic_window_matches_grid_integration() {
        let h = random_hermitian(120, 4, 2);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let set = kpm_moments(&h, sf, &params(96, 16), KpmVariant::AugSpmmv).unwrap();
        let analytic = count_from_moments(&set, Kernel::Jackson, sf, 120, -0.8, 0.4);
        let curve = crate::dos::reconstruct(&set, Kernel::Jackson, sf, 8192);
        let grid = curve.integral_window(-0.8, 0.4) * 120.0;
        assert!(
            (analytic - grid).abs() < 0.5,
            "analytic {analytic} vs grid {grid}"
        );
    }

    #[test]
    fn chain_counts_match_analytic_spectrum() {
        let n = 200;
        let h = chain_1d(n, 1.0);
        let evs = chain_1d_eigenvalues(n, 1.0);
        let estimate = estimate_count(&h, &params(128, 32), -1.0, 1.0).unwrap();
        let exact = evs.iter().filter(|e| e.abs() <= 1.0).count() as f64;
        assert!(
            (estimate - exact).abs() < 0.1 * n as f64,
            "estimate {estimate} vs exact {exact}"
        );
    }

    #[test]
    fn counts_are_additive_over_disjoint_windows() {
        let h = random_hermitian(80, 3, 7);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let set = kpm_moments(&h, sf, &params(64, 8), KpmVariant::AugSpmmv).unwrap();
        let a = window_fraction(&set, Kernel::Jackson, -1.0, 0.0);
        let b = window_fraction(&set, Kernel::Jackson, 0.0, 1.0);
        let whole = window_fraction(&set, Kernel::Jackson, -1.0, 1.0);
        assert!((a + b - whole).abs() < 1e-12);
    }

    #[test]
    fn subspace_sizing_use_case() {
        // The refs [8]/[22] workflow: pick a window, get a subspace
        // size; it must upper-bound the true count only loosely but
        // never be wildly off.
        let h = random_hermitian(150, 4, 9);
        let evs = exact_eigenvalues(&h);
        let (e_lo, e_hi) = (-0.5, 0.5);
        let exact = evs.iter().filter(|e| **e >= e_lo && **e <= e_hi).count() as f64;
        let est = estimate_count(&h, &params(128, 48), e_lo, e_hi).unwrap();
        assert!(
            (est - exact).abs() < 0.15 * 150.0,
            "est {est} vs exact {exact}"
        );
    }

    #[test]
    fn window_outside_spectrum_counts_nothing() {
        let h = chain_1d(60, 1.0);
        // Spectrum is in (-2, 2); count in the rescaled window beyond it.
        let est = estimate_count(&h, &params(64, 8), 2.5, 3.0).unwrap();
        assert!(est.abs() < 0.5, "outside-window count: {est}");
    }

    #[test]
    #[should_panic(expected = "window must be ordered")]
    fn reversed_window_panics() {
        let set = MomentSet::zeros(4);
        window_fraction(&set, Kernel::Jackson, 0.5, -0.5);
    }
}
