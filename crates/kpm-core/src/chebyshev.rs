//! Chebyshev polynomials of the first kind.
//!
//! KPM expands spectral functions in Chebyshev polynomials `T_m(x)`
//! because their two-term recurrence maps onto repeated SpMVs and their
//! orthogonality relation makes moment inversion trivial (paper
//! Section II; the review is paper ref. [7]).

/// Evaluates `T_m(x)` by the stable trigonometric form for `|x| <= 1`
/// and the recurrence outside.
pub fn t(m: usize, x: f64) -> f64 {
    if (-1.0..=1.0).contains(&x) {
        (m as f64 * x.acos()).cos()
    } else {
        // |x| > 1 occurs only in tests; use the hyperbolic form.
        let s = if x < 0.0 && m % 2 == 1 { -1.0 } else { 1.0 };
        s * (m as f64 * x.abs().acosh()).cosh()
    }
}

/// Evaluates `T_0..T_{m_max}` at `x` via the recurrence, filling `out`
/// (length `m_max + 1`). Matches the matrix-level recurrence the solver
/// executes, so round-off behaviour is comparable.
pub fn t_all(m_max: usize, x: f64, out: &mut Vec<f64>) {
    out.clear();
    out.reserve(m_max + 1);
    out.push(1.0);
    if m_max == 0 {
        return;
    }
    out.push(x);
    for m in 2..=m_max {
        let next = 2.0 * x * out[m - 1] - out[m - 2];
        out.push(next);
    }
}

/// The `K` Chebyshev nodes `x_k = cos(π (k + 1/2) / K)`, in ascending
/// order. Gauss–Chebyshev quadrature on these nodes integrates
/// `f(x)/√(1-x²)` exactly for polynomial `f` up to degree `2K-1`:
/// `∫ f(x)/√(1-x²) dx ≈ (π/K) Σ_k f(x_k)`.
pub fn chebyshev_nodes(k: usize) -> Vec<f64> {
    let mut nodes: Vec<f64> = (0..k)
        .map(|i| (std::f64::consts::PI * (i as f64 + 0.5) / k as f64).cos())
        .collect();
    nodes.reverse(); // ascending
    nodes
}

/// Evaluates the damped Chebyshev series
/// `S(x) = g_0 μ_0 + 2 Σ_{m=1}^{M-1} g_m μ_m T_m(x)`
/// (the bracket of the KPM reconstruction formula).
pub fn damped_series(mu: &[f64], g: &[f64], x: f64) -> f64 {
    assert_eq!(mu.len(), g.len(), "moments/kernel length mismatch");
    if mu.is_empty() {
        return 0.0;
    }
    // Clenshaw-style forward recurrence on T_m.
    let mut acc = g[0] * mu[0];
    let mut tm1 = 1.0; // T_0
    let mut tm = x; // T_1
    for m in 1..mu.len() {
        acc += 2.0 * g[m] * mu[m] * tm;
        let next = 2.0 * x * tm - tm1;
        tm1 = tm;
        tm = next;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_order_polynomials() {
        for &x in &[-1.0, -0.3, 0.0, 0.7, 1.0] {
            assert!((t(0, x) - 1.0).abs() < 1e-14);
            assert!((t(1, x) - x).abs() < 1e-14);
            assert!((t(2, x) - (2.0 * x * x - 1.0)).abs() < 1e-13);
            assert!((t(3, x) - (4.0 * x * x * x - 3.0 * x)).abs() < 1e-13);
        }
    }

    #[test]
    fn recurrence_matches_closed_form() {
        let mut buf = Vec::new();
        for &x in &[-0.95, -0.2, 0.4, 0.99] {
            t_all(30, x, &mut buf);
            for (m, &tm) in buf.iter().enumerate() {
                assert!((tm - t(m, x)).abs() < 1e-10, "m={m} x={x}");
            }
        }
    }

    #[test]
    fn bounded_by_one_inside_interval() {
        for m in 0..50 {
            for i in 0..20 {
                let x = -1.0 + 2.0 * i as f64 / 19.0;
                assert!(t(m, x).abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn nodes_are_ascending_and_inside() {
        let nodes = chebyshev_nodes(64);
        assert_eq!(nodes.len(), 64);
        for w in nodes.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(nodes[0] > -1.0 && nodes[63] < 1.0);
    }

    #[test]
    fn quadrature_orthogonality() {
        // (π/K) Σ_k T_m(x_k) = π δ_{m0} for m < 2K.
        let k = 32;
        let nodes = chebyshev_nodes(k);
        for m in 0..2 * k {
            let s: f64 =
                nodes.iter().map(|&x| t(m, x)).sum::<f64>() * std::f64::consts::PI / k as f64;
            let want = if m == 0 { std::f64::consts::PI } else { 0.0 };
            assert!((s - want).abs() < 1e-10, "m={m}: {s}");
        }
    }

    #[test]
    fn damped_series_reduces_to_single_term() {
        // mu = e_2 (only T_2), g = 1: S(x) = 2 T_2(x).
        let mu = [0.0, 0.0, 1.0];
        let g = [1.0, 1.0, 1.0];
        for &x in &[-0.8, 0.1, 0.6] {
            assert!((damped_series(&mu, &g, x) - 2.0 * t(2, x)).abs() < 1e-13);
        }
    }

    #[test]
    fn hyperbolic_branch_consistent_at_boundary() {
        for m in 0..10 {
            let inside = t(m, 1.0);
            let outside = t(m, 1.0 + 1e-12);
            assert!((inside - outside).abs() < 1e-6);
        }
    }
}
