//! Lanczos sweeps for spectral bounds.
//!
//! The paper determines the rescaling interval "with Gershgorin's circle
//! theorem or a few Lanczos sweeps" (Section II). Gershgorin is cheap
//! but loose; a short Lanczos run gives much tighter Ritz bounds, which
//! buys KPM resolution (the effective broadening is proportional to the
//! rescaled spectral width).

use kpm_num::eigen::DenseHermitian;
use kpm_num::vector::{axpy, dot};
use kpm_num::{Complex64, Vector};
use kpm_sparse::spmv::spmv;
use kpm_sparse::CrsMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Estimated spectral bounds `[lo, hi]` from `steps` Lanczos iterations
/// started from a seeded random vector, padded by the final residual
/// norm so the true spectrum is (with overwhelming probability)
/// contained.
pub fn lanczos_bounds(h: &CrsMatrix, steps: usize, seed: u64) -> (f64, f64) {
    assert_eq!(h.nrows(), h.ncols(), "matrix must be square");
    let n = h.nrows();
    let steps = steps.min(n).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q = Vector::random(n, &mut rng);
    q.normalize();

    let mut alphas: Vec<f64> = Vec::with_capacity(steps);
    let mut betas: Vec<f64> = Vec::with_capacity(steps);
    let mut q_prev = vec![Complex64::default(); n];
    let mut q_cur = q.into_vec();
    let mut w = vec![Complex64::default(); n];
    let mut beta_last = 0.0;

    for step in 0..steps {
        spmv(h, &q_cur, &mut w);
        if step > 0 {
            axpy(Complex64::real(-betas[step - 1]), &q_prev, &mut w);
        }
        let alpha = dot(&q_cur, &w).re;
        axpy(Complex64::real(-alpha), &q_cur, &mut w);
        // One step of full reorthogonalization against q_cur keeps the
        // Ritz values clean for the short runs used here.
        let corr = dot(&q_cur, &w);
        axpy(-corr, &q_cur, &mut w);
        alphas.push(alpha);
        let beta = dot(&w, &w).re.sqrt();
        beta_last = beta;
        if step + 1 < steps {
            if beta < 1e-14 {
                break; // invariant subspace found; bounds are exact
            }
            betas.push(beta);
            q_prev.copy_from_slice(&q_cur);
            for (qc, wi) in q_cur.iter_mut().zip(&w) {
                *qc = wi.scale(1.0 / beta);
            }
        }
    }

    // Eigenvalues of the tridiagonal Ritz matrix.
    let k = alphas.len();
    let mut dense = vec![Complex64::default(); k * k];
    for i in 0..k {
        dense[i * k + i] = Complex64::real(alphas[i]);
        if i + 1 < k && i < betas.len() {
            dense[i * k + i + 1] = Complex64::real(betas[i]);
        }
    }
    let ritz = DenseHermitian::from_row_major(k, dense).eigenvalues(1e-12);
    let lo = ritz.first().copied().unwrap_or(0.0) - beta_last;
    let hi = ritz.last().copied().unwrap_or(0.0) + beta_last;
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_topo::model::{chain_1d, random_hermitian};
    use kpm_topo::TopoHamiltonian;

    #[test]
    fn chain_bounds_converge_to_band_edges() {
        let h = chain_1d(300, 1.0);
        let (lo, hi) = lanczos_bounds(&h, 60, 3);
        // True spectrum is within (-2, 2); Ritz values converge to the
        // edges quickly. The residual padding is conservative (it uses
        // the full ||r|| instead of the last Ritz-vector component), so
        // allow some slack on the outside.
        assert!(lo <= -1.9 && lo > -3.5, "lo = {lo}");
        assert!((1.9..3.5).contains(&hi), "hi = {hi}");
    }

    #[test]
    fn bounds_contain_all_exact_eigenvalues() {
        let h = random_hermitian(100, 4, 23);
        let (lo, hi) = lanczos_bounds(&h, 40, 5);
        let evs = kpm_topo::model::exact_eigenvalues(&h);
        assert!(*evs.first().unwrap() >= lo - 1e-9, "min ev vs lo");
        assert!(*evs.last().unwrap() <= hi + 1e-9, "max ev vs hi");
    }

    #[test]
    fn lanczos_tighter_than_gershgorin() {
        let h = TopoHamiltonian::clean(6, 6, 4).assemble();
        let (glo, ghi) = h.gershgorin_bounds();
        let (llo, lhi) = lanczos_bounds(&h, 50, 9);
        assert!(lhi - llo <= ghi - glo + 1e-9);
    }

    #[test]
    fn identity_matrix_is_exact() {
        let h = CrsMatrix::identity(50);
        let (lo, hi) = lanczos_bounds(&h, 5, 1);
        assert!((lo - 1.0).abs() < 1e-10);
        assert!((hi - 1.0).abs() < 1e-10);
    }
}
