//! Chebyshev moments and the stochastic trace estimator.
//!
//! One KPM run over a starting vector `|ν₀⟩` yields the scalar products
//! `η_{2m} = ⟨ν_m|ν_m⟩` and `η_{2m+1} = ⟨ν_{m+1}|ν_m⟩` (paper Fig. 3).
//! The Chebyshev product identities convert them into twice as many
//! moments as matrix sweeps:
//!
//! ```text
//! μ_{2m}   = 2 η_{2m}   − μ₀
//! μ_{2m+1} = 2 η_{2m+1} − μ₁
//! ```
//!
//! The density of states needs the trace `tr[T_m(H̃)]`, estimated as the
//! average of `⟨r|T_m(H̃)|r⟩` over `R` random unit vectors (paper
//! Section II). Moments of a Hermitian operator are real; the imaginary
//! parts of the η products are pure stochastic noise and are dropped.

use kpm_num::Complex64;

/// A set of Chebyshev moments `μ_0 .. μ_{M-1}`, averaged over however
/// many random vectors have been accumulated.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentSet {
    mu: Vec<f64>,
    runs: usize,
}

impl MomentSet {
    /// Builds the moment set of a *single* KPM run from the initial
    /// moments `μ₀ = ⟨ν₀|ν₀⟩`, `μ₁ = ⟨ν₁|ν₀⟩` and the per-iteration
    /// pairs `(η_{2m}, η_{2m+1})` for `m = 1 .. M/2`.
    pub fn from_eta(mu0: f64, mu1: f64, eta: &[(f64, Complex64)]) -> Self {
        let mut mu = Vec::with_capacity(2 + 2 * eta.len());
        mu.push(mu0);
        mu.push(mu1);
        for &(even, odd) in eta {
            mu.push(2.0 * even - mu0);
            mu.push(2.0 * odd.re - mu1);
        }
        Self { mu, runs: 1 }
    }

    /// A zeroed accumulator for `m_count` moments.
    pub fn zeros(m_count: usize) -> Self {
        Self {
            mu: vec![0.0; m_count],
            runs: 0,
        }
    }

    /// Adds another run (or average of runs) into this accumulator.
    /// The stored moments remain running *averages*.
    pub fn accumulate(&mut self, other: &MomentSet) {
        assert_eq!(self.mu.len(), other.mu.len(), "moment count mismatch");
        let total = self.runs + other.runs;
        assert!(total > 0, "cannot accumulate two empty moment sets");
        let wa = self.runs as f64 / total as f64;
        let wb = other.runs as f64 / total as f64;
        for (a, b) in self.mu.iter_mut().zip(&other.mu) {
            *a = *a * wa + *b * wb;
        }
        self.runs = total;
    }

    /// Number of moments `M`.
    pub fn len(&self) -> usize {
        self.mu.len()
    }

    /// True if no moments are stored.
    pub fn is_empty(&self) -> bool {
        self.mu.is_empty()
    }

    /// Number of random vectors averaged into this set.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// The averaged moments.
    pub fn as_slice(&self) -> &[f64] {
        &self.mu
    }

    /// Consumes the set, returning the averaged moments.
    pub fn into_vec(self) -> Vec<f64> {
        self.mu
    }

    /// The first `m` moments as a new set (same run count).
    ///
    /// Moment `μ_k` never depends on sweeps past `k/2`, so the prefix of
    /// a longer run is *bitwise* the moments of a shorter run over the
    /// same starting vectors — the property the service's moment cache
    /// and degraded (reduced-`M`) answers rely on.
    pub fn truncated(&self, m: usize) -> MomentSet {
        assert!(
            m <= self.mu.len(),
            "cannot truncate {} to {m}",
            self.mu.len()
        );
        Self {
            mu: self.mu[..m].to_vec(),
            runs: self.runs,
        }
    }

    /// Maximum absolute difference to another set (validation helper:
    /// all three solver variants must agree to rounding).
    pub fn max_abs_diff(&self, other: &MomentSet) -> f64 {
        assert_eq!(self.mu.len(), other.mu.len(), "moment count mismatch");
        self.mu
            .iter()
            .zip(&other.mu)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_eta_applies_product_identities() {
        let mu0 = 1.0;
        let mu1 = 0.25;
        let eta = vec![
            (0.8, Complex64::new(0.3, 0.01)),
            (0.6, Complex64::new(-0.2, -0.02)),
        ];
        let set = MomentSet::from_eta(mu0, mu1, &eta);
        assert_eq!(set.len(), 6);
        let mu = set.as_slice();
        assert_eq!(mu[0], 1.0);
        assert_eq!(mu[1], 0.25);
        assert_eq!(mu[2], 2.0 * 0.8 - 1.0);
        assert_eq!(mu[3], 2.0 * 0.3 - 0.25);
        assert_eq!(mu[4], 2.0 * 0.6 - 1.0);
        assert_eq!(mu[5], 2.0 * (-0.2) - 0.25);
    }

    #[test]
    fn accumulate_averages_with_run_weights() {
        let a = MomentSet::from_eta(1.0, 0.0, &[(1.0, Complex64::default())]);
        let b = MomentSet::from_eta(3.0, 0.0, &[(2.0, Complex64::default())]);
        let mut acc = MomentSet::zeros(4);
        acc.accumulate(&a);
        acc.accumulate(&b);
        assert_eq!(acc.runs(), 2);
        assert_eq!(acc.as_slice()[0], 2.0); // (1+3)/2
    }

    #[test]
    fn weighted_accumulation_is_associative() {
        let a = MomentSet::from_eta(1.0, 0.5, &[]);
        let b = MomentSet::from_eta(2.0, -0.5, &[]);
        let c = MomentSet::from_eta(4.0, 1.5, &[]);
        let mut left = MomentSet::zeros(2);
        left.accumulate(&a);
        left.accumulate(&b);
        left.accumulate(&c);
        let mut right = MomentSet::zeros(2);
        let mut bc = MomentSet::zeros(2);
        bc.accumulate(&b);
        bc.accumulate(&c);
        right.accumulate(&a);
        right.accumulate(&bc);
        assert!(left.max_abs_diff(&right) < 1e-14);
        assert_eq!(left.runs(), right.runs());
    }

    #[test]
    fn max_abs_diff_zero_for_identical() {
        let a = MomentSet::from_eta(1.0, 0.1, &[(0.5, Complex64::new(0.2, 0.0))]);
        assert_eq!(a.max_abs_diff(&a.clone()), 0.0);
    }

    #[test]
    #[should_panic(expected = "moment count mismatch")]
    fn mismatched_lengths_panic() {
        let a = MomentSet::zeros(4);
        let b = MomentSet::zeros(6);
        a.max_abs_diff(&b);
    }
}
