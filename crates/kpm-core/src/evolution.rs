//! Chebyshev time evolution.
//!
//! The same machinery that powers KPM-DOS — the Chebyshev recurrence on
//! `H̃` — also yields numerically exact quantum time evolution (see the
//! KPM review, paper ref. [7]): with `H = H̃/a + b` and `τ = t/a`,
//!
//! ```text
//! e^{-iHt} |ψ⟩ = e^{-ibt} Σ_m (2 - δ_m0) (-i)^m J_m(τ) T_m(H̃) |ψ⟩ ,
//! ```
//!
//! where `J_m` are Bessel functions of the first kind. The expansion
//! converges superexponentially once `m > τ`, so the loop runs the same
//! `aug`-style vector recurrence as the DOS solver with a known, small
//! number of terms. This is the standard wave-packet propagation
//! technique for topological-insulator surface-state dynamics.

use kpm_num::vector::{axpy, dot, scal};
use kpm_num::{Complex64, Vector};
use kpm_sparse::spmv::spmv;
use kpm_sparse::CrsMatrix;
use kpm_topo::ScaleFactors;

/// Bessel functions `J_0(x) .. J_{n_max}(x)` by Miller's downward
/// recurrence, normalized with `J_0 + 2 Σ_{k≥1} J_{2k} = 1`. Accurate
/// to near machine precision for the argument ranges used here.
pub fn bessel_j_sequence(n_max: usize, x: f64) -> Vec<f64> {
    assert!(x >= 0.0, "argument must be non-negative");
    if x == 0.0 {
        let mut out = vec![0.0; n_max + 1];
        out[0] = 1.0;
        return out;
    }
    // Start the downward recurrence well above both n_max and x.
    let start = (n_max + (x as usize) + 20 + 2 * (x.sqrt() as usize)).next_multiple_of(2);
    let mut jp1 = 0.0f64; // J_{k+1}
    let mut j = f64::MIN_POSITIVE * 1e10; // J_k (arbitrary tiny seed)
    let mut out = vec![0.0; n_max + 1];
    let mut norm = 0.0; // J_0 + 2*sum J_{2k}
    for k in (0..start).rev() {
        let jm1 = 2.0 * (k as f64 + 1.0) / x * j - jp1;
        jp1 = j;
        j = jm1;
        // j now holds J_k (unnormalized).
        if k <= n_max {
            out[k] = j;
        }
        if k % 2 == 0 {
            norm += if k == 0 { j } else { 2.0 * j };
        }
        // Rescale to avoid overflow during the downward sweep.
        if j.abs() > 1e250 {
            j *= 1e-250;
            jp1 *= 1e-250;
            norm *= 1e-250;
            for o in &mut out {
                *o *= 1e-250;
            }
        }
    }
    for o in &mut out {
        *o /= norm;
    }
    out
}

/// Number of expansion terms for time step `tau = t/a` at roughly
/// machine-precision truncation (superexponential tail after `m ≈ τ`).
pub fn evolution_order(tau: f64) -> usize {
    (tau.abs() + 20.0 + 10.0 * tau.abs().sqrt()) as usize
}

/// Propagates `psi` by `e^{-iHt}` using the Chebyshev expansion.
/// `sf` must rescale the spectrum of `h` into `[-1, 1]`.
pub fn evolve(h: &CrsMatrix, sf: ScaleFactors, psi: &Vector, t: f64) -> Vector {
    assert_eq!(h.nrows(), h.ncols(), "square matrices only");
    assert_eq!(psi.len(), h.nrows(), "state dimension mismatch");
    let n = h.nrows();
    // τ = t / a: H = H̃/a + b, so e^{-iHt} = e^{-ibt} e^{-iH̃ (t/a)}.
    let tau = t / sf.a;
    let order = evolution_order(tau);
    let bessel = bessel_j_sequence(order, tau.abs());
    let sign = if tau >= 0.0 { 1.0 } else { -1.0 };

    // Vector recurrence: v0 = psi, v1 = H̃ psi, v_{m+1} = 2 H̃ v_m - v_{m-1}.
    let mut v_prev = psi.as_slice().to_vec();
    let mut v_cur = vec![Complex64::default(); n];
    apply_scaled(h, sf, &v_prev, &mut v_cur);

    // acc = c_0 v0 + c_1 v1 + ...; c_m = (2-δ)(−i·sign)^m J_m(|τ|).
    let mut acc: Vec<Complex64> = v_prev.iter().map(|z| z.scale(bessel[0])).collect();
    let phase_step = Complex64::new(0.0, -sign); // (-i)^m generator
    let mut phase = phase_step;
    axpy(phase.scale(2.0 * bessel[1]), &v_cur, &mut acc);

    let mut tmp = vec![Complex64::default(); n];
    #[allow(clippy::needless_range_loop)] // m is the expansion order index
    for m in 2..=order {
        // v_next = 2 H̃ v_cur - v_prev (reusing v_prev as output).
        apply_scaled(h, sf, &v_cur, &mut tmp);
        for i in 0..n {
            let next = tmp[i].scale(2.0) - v_prev[i];
            v_prev[i] = next;
        }
        std::mem::swap(&mut v_prev, &mut v_cur);
        phase *= phase_step;
        axpy(phase.scale(2.0 * bessel[m]), &v_cur, &mut acc);
    }

    // Global phase from the spectrum centre shift.
    let global = Complex64::new(0.0, -sf.b * t).exp();
    scal(global, &mut acc);
    Vector::from_vec(acc)
}

/// `out = H̃ x = a (H x - b x)`.
fn apply_scaled(h: &CrsMatrix, sf: ScaleFactors, x: &[Complex64], out: &mut [Complex64]) {
    spmv(h, x, out);
    for (o, xi) in out.iter_mut().zip(x) {
        *o = (*o - xi.scale(sf.b)).scale(sf.a);
    }
}

/// Survival amplitude `⟨ψ(0)|ψ(t)⟩` — the overlap whose Fourier
/// transform is the local spectral function.
pub fn survival_amplitude(h: &CrsMatrix, sf: ScaleFactors, psi: &Vector, t: f64) -> Complex64 {
    let evolved = evolve(h, sf, psi, t);
    dot(psi.as_slice(), evolved.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_topo::model::{chain_1d, random_hermitian};
    use kpm_topo::TopoHamiltonian;

    #[test]
    fn bessel_reference_values() {
        let j = bessel_j_sequence(5, 1.0);
        assert!((j[0] - 0.7651976865579666).abs() < 1e-12);
        assert!((j[1] - 0.44005058574493355).abs() < 1e-12);
        assert!((j[2] - 0.11490348493190048).abs() < 1e-12);
        let j0 = bessel_j_sequence(3, 0.0);
        assert_eq!(j0, vec![1.0, 0.0, 0.0, 0.0]);
        // J_0(10) = -0.2459357645...
        let j10 = bessel_j_sequence(12, 10.0);
        assert!((j10[0] + 0.2459357644513483).abs() < 1e-11);
    }

    #[test]
    fn bessel_sum_rule() {
        // J_0^2 + 2 sum J_k^2 = 1.
        for &x in &[0.5f64, 3.0, 12.0] {
            let n = evolution_order(x);
            let j = bessel_j_sequence(n, x);
            let s: f64 = j[0] * j[0] + 2.0 * j[1..].iter().map(|v| v * v).sum::<f64>();
            assert!((s - 1.0).abs() < 1e-10, "x={x}: {s}");
        }
    }

    #[test]
    fn zero_time_is_identity() {
        let h = random_hermitian(50, 3, 30);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let mut rng = rand::rngs::mock::StepRng::new(7, 0x9E3779B97F4A7C15);
        use rand::Rng;
        let psi = Vector::from_vec(
            (0..50)
                .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect(),
        );
        let out = evolve(&h, sf, &psi, 0.0);
        for (a, b) in out.as_slice().iter().zip(psi.as_slice()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn evolution_is_unitary() {
        let h = TopoHamiltonian::clean(3, 3, 2).assemble();
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let mut rng = rand::rngs::mock::StepRng::new(3, 0x9E3779B97F4A7C15);
        use rand::Rng;
        let mut psi = Vector::from_vec(
            (0..h.nrows())
                .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect(),
        );
        psi.normalize();
        for &t in &[0.3f64, 2.0, 7.5, -4.0] {
            let out = evolve(&h, sf, &psi, t);
            assert!(
                (out.norm() - 1.0).abs() < 1e-10,
                "t={t}: norm {}",
                out.norm()
            );
        }
    }

    #[test]
    fn eigenstate_acquires_exact_phase() {
        // Chain eigenvector: psi(t) = e^{-iEt} psi(0); the survival
        // amplitude is the pure phase.
        let n = 40;
        let h = chain_1d(n, 1.0);
        let sf = ScaleFactors::from_bounds(-2.0, 2.0, 0.05);
        let kq = 5.0 * std::f64::consts::PI / (n as f64 + 1.0);
        let e = 2.0 * kq.cos();
        let mut psi = Vector::from_vec(
            (0..n)
                .map(|i| Complex64::real(((i + 1) as f64 * kq).sin()))
                .collect(),
        );
        psi.normalize();
        for &t in &[0.7f64, 3.1, -2.2] {
            let amp = survival_amplitude(&h, sf, &psi, t);
            let expect = Complex64::new(0.0, -e * t).exp();
            assert!(amp.approx_eq(expect, 1e-9), "t={t}: {amp} vs {expect}");
        }
    }

    #[test]
    fn composition_property() {
        // U(t1+t2) = U(t2) U(t1).
        let h = random_hermitian(60, 3, 31);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let mut rng = rand::rngs::mock::StepRng::new(9, 0x9E3779B97F4A7C15);
        use rand::Rng;
        let psi = Vector::from_vec(
            (0..60)
                .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect(),
        );
        let (t1, t2) = (1.3, 2.4);
        let once = evolve(&h, sf, &psi, t1 + t2);
        let twice = evolve(&h, sf, &evolve(&h, sf, &psi, t1), t2);
        for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
            assert!(a.approx_eq(*b, 1e-9));
        }
    }
}
