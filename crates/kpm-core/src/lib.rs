//! The Kernel Polynomial Method (KPM-DOS) solver — the paper's primary
//! contribution, in all three optimization stages.
//!
//! * [`solver`] — the KPM-DOS iteration: the *naive* variant built from
//!   `spmv` + BLAS-1 calls (paper Fig. 3), *stage 1* using the fused
//!   `aug_spmv` kernel (Fig. 4), and *stage 2* using the blocked
//!   `aug_spmmv` kernel (Fig. 5). All three produce identical Chebyshev
//!   moments for the same seed; they differ only in data traffic.
//! * [`moments`] — the η → μ moment map (product identities
//!   `μ_{2m} = 2⟨ν_m|ν_m⟩ − μ₀`, `μ_{2m+1} = 2⟨ν_{m+1}|ν_m⟩ − μ₁`) and
//!   stochastic-trace averaging over `R` random vectors.
//! * [`kernels`] — Jackson, Lorentz and Dirichlet damping kernels.
//! * [`chebyshev`] — Chebyshev polynomials, grids and series evaluation.
//! * [`dos`] — density-of-states reconstruction `ρ(E)`.
//! * [`ldos`] — site-resolved local DOS (paper Fig. 2, left panel).
//! * [`spectral`] — momentum-resolved spectral function `A(k, E)`
//!   (paper Fig. 2, right panel).
//! * [`lanczos`] — a few Lanczos sweeps for spectral bounds, the
//!   alternative to Gershgorin mentioned in paper Section II,
//! * [`eigencount`] — eigenvalue counting in spectral windows, the
//!   subspace-sizing application of paper refs. [8] and [22],
//! * [`green`] — retarded Green function `G(E + i0)` from the same
//!   moments (the Hilbert-transform companion of the DOS),
//! * [`evolution`] — numerically exact Chebyshev time propagation
//!   `e^{-iHt}|ψ⟩` (wave-packet dynamics on the same recurrence).

pub mod chebyshev;
pub mod checkpoint;
pub mod dos;
pub mod eigencount;
pub mod evolution;
pub mod green;
pub mod kernels;
pub mod lanczos;
pub mod ldos;
pub mod moments;
pub mod solver;
pub mod spectral;

pub use checkpoint::{
    CheckpointStore, DirCheckpointStore, EtaCheckpoint, MemoryCheckpointStore, RankCheckpoint,
};
pub use dos::DosCurve;
pub use kernels::Kernel;
pub use moments::MomentSet;
pub use solver::{KpmParams, KpmVariant};
