//! Site-resolved local density of states (LDOS).
//!
//! The left panel of paper Fig. 2 shows the LDOS of the quantum-dot
//! superlattice on the surface layer at `E = 0`: the dot-bound states
//! appear as bright disks. The LDOS at site `n` is
//!
//! `ρ_n(E) = Σ_{o=0..3} ⟨n,o| δ(E - H) |n,o⟩`,
//!
//! i.e. a KPM run per orbital with the unit vector `e_{4n+o}` as start —
//! no stochastic trace involved.

use kpm_num::{Complex64, KpmError, Vector};
use kpm_sparse::CrsMatrix;
use kpm_topo::{Lattice3D, ScaleFactors};
use rayon::prelude::*;

use crate::dos::{reconstruct, DosCurve};
use crate::kernels::Kernel;
use crate::moments::MomentSet;
use crate::solver::moments_from_start;

/// LDOS moments of a single lattice site (all four orbitals summed).
pub fn site_moments(
    h: &CrsMatrix,
    sf: ScaleFactors,
    site: usize,
    num_moments: usize,
) -> Result<MomentSet, KpmError> {
    if 4 * site + 3 >= h.nrows() {
        return Err(KpmError::InvalidParams {
            what: "site",
            details: format!(
                "site index out of range (site {site} needs rows {}..{}, matrix has {})",
                4 * site,
                4 * site + 4,
                h.nrows()
            ),
        });
    }
    let n = h.nrows();
    let mut acc = MomentSet::zeros(num_moments);
    for o in 0..4 {
        let mut data = vec![Complex64::default(); n];
        data[4 * site + o] = Complex64::real(1.0);
        let start = Vector::from_vec(data);
        // The inner kernels stay serial: parallelism is across sites.
        acc.accumulate(&moments_from_start(h, sf, &start, num_moments, false)?);
    }
    Ok(acc)
}

/// The full LDOS curve `ρ_n(E)` of one site. The per-orbital moment
/// average is rescaled by 4 so the curve integrates to the number of
/// local states (4).
pub fn site_ldos(
    h: &CrsMatrix,
    sf: ScaleFactors,
    site: usize,
    num_moments: usize,
    kernel: Kernel,
    n_points: usize,
) -> Result<DosCurve, KpmError> {
    let set = site_moments(h, sf, site, num_moments)?;
    let mut curve = reconstruct(&set, kernel, sf, n_points);
    for v in &mut curve.values {
        *v *= 4.0;
    }
    Ok(curve)
}

/// A sampled LDOS map over the surface layer (fixed `z`), evaluated at
/// one energy — the data of paper Fig. 2, left panel.
#[derive(Debug, Clone)]
pub struct LdosMap {
    /// Lattice x-coordinates of the sample points.
    pub xs: Vec<usize>,
    /// Lattice y-coordinates of the sample points.
    pub ys: Vec<usize>,
    /// LDOS value at each `(x, y)`.
    pub values: Vec<f64>,
}

impl LdosMap {
    /// The value at sample index `(x, y)`, if present.
    pub fn get(&self, x: usize, y: usize) -> Option<f64> {
        self.xs
            .iter()
            .zip(&self.ys)
            .position(|(&xi, &yi)| xi == x && yi == y)
            .map(|i| self.values[i])
    }
}

/// Computes the LDOS map at energy `energy` on layer `z`, sampling every
/// `stride`-th site in x and y. Sites are processed in parallel (each
/// site is an independent KPM run).
#[allow(clippy::too_many_arguments)]
pub fn ldos_map(
    h: &CrsMatrix,
    sf: ScaleFactors,
    lattice: &Lattice3D,
    z: usize,
    energy: f64,
    stride: usize,
    num_moments: usize,
    kernel: Kernel,
) -> Result<LdosMap, KpmError> {
    if z >= lattice.nz {
        return Err(KpmError::InvalidParams {
            what: "z",
            details: format!("layer out of range (z = {z}, nz = {})", lattice.nz),
        });
    }
    if stride < 1 {
        return Err(KpmError::InvalidParams {
            what: "stride",
            details: "stride must be positive".to_string(),
        });
    }
    let coords: Vec<(usize, usize)> = (0..lattice.ny)
        .step_by(stride)
        .flat_map(|y| (0..lattice.nx).step_by(stride).map(move |x| (x, y)))
        .collect();
    let values: Vec<f64> = coords
        .par_iter()
        .map(|&(x, y)| {
            let site = lattice.site(x, y, z);
            let curve = site_ldos(h, sf, site, num_moments, kernel, 512)?;
            Ok(curve.value_at(energy))
        })
        .collect::<Result<_, KpmError>>()?;
    Ok(LdosMap {
        xs: coords.iter().map(|c| c.0).collect(),
        ys: coords.iter().map(|c| c.1).collect(),
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_topo::model::chain_1d;
    use kpm_topo::{Potential, TopoHamiltonian};

    #[test]
    fn ldos_integrates_to_local_state_count() {
        let ham = TopoHamiltonian::clean(4, 4, 2);
        let h = ham.assemble();
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let curve = site_ldos(&h, sf, 5, 64, Kernel::Jackson, 1024).unwrap();
        // 4 orbitals -> integral 4.
        assert!((curve.integral() - 4.0).abs() < 0.1, "{}", curve.integral());
    }

    #[test]
    fn uniform_system_has_uniform_surface_ldos() {
        // Clean system, periodic in x/y: all surface sites equivalent.
        let ham = TopoHamiltonian::clean(4, 4, 3);
        let h = ham.assemble();
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let lat = ham.lattice;
        let map = ldos_map(&h, sf, &lat, 0, 0.0, 1, 32, Kernel::Jackson).unwrap();
        let v0 = map.values[0];
        for v in &map.values {
            assert!((v - v0).abs() < 1e-8 * v0.abs().max(1.0), "{v} vs {v0}");
        }
        assert_eq!(map.values.len(), 16);
        assert!(map.get(1, 2).is_some());
        assert!(map.get(17, 0).is_none());
    }

    #[test]
    fn dot_potential_breaks_uniformity() {
        // A small dot superlattice must modulate the LDOS between
        // dot-centre and far-field sites somewhere in the spectrum.
        let ham = TopoHamiltonian {
            lattice: kpm_topo::Lattice3D::paper_default(8, 8, 2),
            t: 1.0,
            potential: Potential::QuantumDots {
                strength: 1.5,
                period: 8,
                radius: 2.0,
                depth: 1,
            },
        };
        let h = ham.assemble();
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let lat = ham.lattice;
        // Dot centre (4,4); far corner (0,0).
        let inside = site_ldos(&h, sf, lat.site(4, 4, 0), 64, Kernel::Jackson, 256).unwrap();
        let outside = site_ldos(&h, sf, lat.site(0, 0, 0), 64, Kernel::Jackson, 256).unwrap();
        let diff: f64 = inside
            .values
            .iter()
            .zip(&outside.values)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            diff > 0.05,
            "dot potential should modulate the LDOS: {diff}"
        );
    }

    #[test]
    fn chain_end_vs_middle_ldos_differ() {
        // Open chain: end sites have sqrt-band-edge-suppressed LDOS at
        // the band centre relative to bulk sites... use generic check:
        // the two curves are genuinely different.
        let h = chain_1d(64, 1.0);
        let sf = ScaleFactors::from_bounds(-2.0, 2.0, 0.05);
        // chain has 1 dof per site; emulate orbitals by bare start
        // vectors instead of site_ldos.
        let mut e0 = vec![Complex64::default(); 64];
        e0[0] = Complex64::real(1.0);
        let mut em = vec![Complex64::default(); 64];
        em[32] = Complex64::real(1.0);
        let end = moments_from_start(&h, sf, &Vector::from_vec(e0), 64, false).unwrap();
        let mid = moments_from_start(&h, sf, &Vector::from_vec(em), 64, false).unwrap();
        assert!(end.max_abs_diff(&mid) > 1e-3);
    }

    #[test]
    fn bad_site_rejected() {
        let h = chain_1d(16, 1.0);
        let sf = ScaleFactors::from_bounds(-2.0, 2.0, 0.05);
        // Site 4 needs rows 16..19, which the 16-row matrix lacks.
        let err = site_moments(&h, sf, 4, 8).expect_err("out-of-range site");
        assert!(err.to_string().contains("site index out of range"), "{err}");
    }
}
