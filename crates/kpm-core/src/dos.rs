//! Density-of-states reconstruction from Chebyshev moments.
//!
//! With normalized moments `μ_m = tr[T_m(H̃)]/N` the per-site DOS in
//! Chebyshev coordinates is
//!
//! ```text
//! ρ̃(x) = [ g₀μ₀ + 2 Σ_{m≥1} g_m μ_m T_m(x) ] / (π √(1-x²))
//! ```
//!
//! and transforms back to energy as `ρ(E) = a·ρ̃(a(E-b))` (Jacobian of
//! the rescaling `x = a(E-b)`). The curve integrates to `μ₀ = 1`
//! (states per site); multiply by `N` for the absolute eigenvalue count
//! of paper Eq. (2).

use kpm_topo::ScaleFactors;

use crate::chebyshev::{chebyshev_nodes, damped_series};
use crate::kernels::Kernel;
use crate::moments::MomentSet;

/// A reconstructed spectral density sampled on an energy grid.
#[derive(Debug, Clone, PartialEq)]
pub struct DosCurve {
    /// Sample energies (ascending).
    pub energies: Vec<f64>,
    /// Density values (per site, per unit energy).
    pub values: Vec<f64>,
}

impl DosCurve {
    /// Integral over the whole curve by the trapezoid rule.
    pub fn integral(&self) -> f64 {
        trapezoid(&self.energies, &self.values)
    }

    /// Integral over the window `[e_lo, e_hi]` (trapezoid on the
    /// covered samples; window borders snap to the grid).
    pub fn integral_window(&self, e_lo: f64, e_hi: f64) -> f64 {
        let pts: Vec<(f64, f64)> = self
            .energies
            .iter()
            .copied()
            .zip(self.values.iter().copied())
            .filter(|(e, _)| *e >= e_lo && *e <= e_hi)
            .collect();
        if pts.len() < 2 {
            return 0.0;
        }
        let (es, vs): (Vec<f64>, Vec<f64>) = pts.into_iter().unzip();
        trapezoid(&es, &vs)
    }

    /// The energy of the maximum density value.
    pub fn peak_energy(&self) -> f64 {
        let mut best = 0;
        for i in 1..self.values.len() {
            if self.values[i] > self.values[best] {
                best = i;
            }
        }
        self.energies[best]
    }

    /// Value at the grid point closest to `e`.
    pub fn value_at(&self, e: f64) -> f64 {
        let mut best = 0;
        let mut dist = f64::INFINITY;
        for (i, &ei) in self.energies.iter().enumerate() {
            let d = (ei - e).abs();
            if d < dist {
                dist = d;
                best = i;
            }
        }
        self.values[best]
    }
}

fn trapezoid(x: &[f64], y: &[f64]) -> f64 {
    x.windows(2)
        .zip(y.windows(2))
        .map(|(xs, ys)| 0.5 * (ys[0] + ys[1]) * (xs[1] - xs[0]))
        .sum()
}

/// Reconstructs the DOS on `n_points` Chebyshev nodes mapped back to
/// energy. Using Chebyshev nodes avoids the diverging `1/√(1-x²)`
/// endpoint weight and makes Gauss–Chebyshev quadrature exact.
pub fn reconstruct(
    moments: &MomentSet,
    kernel: Kernel,
    sf: ScaleFactors,
    n_points: usize,
) -> DosCurve {
    assert!(n_points >= 2, "need at least two sample points");
    let g = kernel.coefficients(moments.len());
    let mu = moments.as_slice();
    let nodes = chebyshev_nodes(n_points);
    let mut energies = Vec::with_capacity(n_points);
    let mut values = Vec::with_capacity(n_points);
    for &x in &nodes {
        let series = damped_series(mu, &g, x);
        let rho_x = series / (std::f64::consts::PI * (1.0 - x * x).sqrt());
        energies.push(sf.to_energy(x));
        values.push(sf.a * rho_x);
    }
    DosCurve { energies, values }
}

/// Gauss–Chebyshev estimate of `∫ ρ(E) dE` directly from the moments —
/// exact up to rounding (`= g₀ μ₀`), independent of the grid. Used as a
/// normalization check.
pub fn moment_integral(moments: &MomentSet, kernel: Kernel) -> f64 {
    let g = kernel.coefficients(moments.len());
    if g.is_empty() {
        0.0
    } else {
        g[0] * moments.as_slice()[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{kpm_moments, moments_from_start, KpmParams, KpmVariant};
    use kpm_num::{Complex64, Vector};
    use kpm_topo::model::{chain_1d, exact_eigenvalues, random_hermitian};

    #[test]
    fn dos_of_single_eigenstate_peaks_at_its_energy() {
        let n = 60;
        let h = chain_1d(n, 1.0);
        let sf = ScaleFactors::from_bounds(-2.0, 2.0, 0.05);
        let k = 11usize;
        let kq = (k as f64 + 1.0) * std::f64::consts::PI / (n as f64 + 1.0);
        let e_mode = 2.0 * kq.cos();
        let mut v = Vector::from_vec(
            (0..n)
                .map(|i| Complex64::real(((i + 1) as f64 * kq).sin()))
                .collect(),
        );
        v.normalize();
        let set = moments_from_start(&h, sf, &v, 128, false).unwrap();
        let curve = reconstruct(&set, Kernel::Jackson, sf, 400);
        assert!(
            (curve.peak_energy() - e_mode).abs() < 0.05,
            "peak {} vs mode {}",
            curve.peak_energy(),
            e_mode
        );
    }

    #[test]
    fn dos_integrates_to_one_per_site() {
        let h = random_hermitian(120, 4, 3);
        let sf = kpm_topo::ScaleFactors::from_gershgorin(&h, 0.01);
        let p = KpmParams {
            num_moments: 64,
            num_random: 4,
            seed: 5,
            parallel: false,
            threads: 0,
            power: 1,
            first_touch: false,
        };
        let set = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        let curve = reconstruct(&set, Kernel::Jackson, sf, 1024);
        assert!((moment_integral(&set, Kernel::Jackson) - 1.0).abs() < 1e-10);
        assert!(
            (curve.integral() - 1.0).abs() < 0.02,
            "{}",
            curve.integral()
        );
    }

    #[test]
    fn jackson_dos_is_nonnegative() {
        let h = random_hermitian(80, 3, 9);
        let sf = kpm_topo::ScaleFactors::from_gershgorin(&h, 0.01);
        let p = KpmParams {
            num_moments: 96,
            num_random: 8,
            seed: 6,
            parallel: false,
            threads: 0,
            power: 1,
            first_touch: false,
        };
        let set = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        let curve = reconstruct(&set, Kernel::Jackson, sf, 600);
        for (e, v) in curve.energies.iter().zip(&curve.values) {
            assert!(*v > -1e-6, "negative DOS {v} at E={e}");
        }
    }

    #[test]
    fn window_counts_match_exact_eigenvalue_counts() {
        // The headline application of KPM-DOS: predicting eigenvalue
        // counts in an interval (paper refs. [8], [22]).
        let n = 150;
        let h = random_hermitian(n, 3, 17);
        let sf = kpm_topo::ScaleFactors::from_gershgorin(&h, 0.01);
        let p = KpmParams {
            num_moments: 128,
            num_random: 48,
            seed: 7,
            parallel: false,
            threads: 0,
            power: 1,
            first_touch: false,
        };
        let set = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        let curve = reconstruct(&set, Kernel::Jackson, sf, 2048);
        let evs = exact_eigenvalues(&h);
        let (e_lo, e_hi) = (-1.0, 1.0);
        let exact_count = evs.iter().filter(|e| **e >= e_lo && **e <= e_hi).count();
        let kpm_count = curve.integral_window(e_lo, e_hi) * n as f64;
        let rel_err = (kpm_count - exact_count as f64).abs() / exact_count as f64;
        assert!(
            rel_err < 0.15,
            "KPM count {kpm_count:.1} vs exact {exact_count} (rel err {rel_err:.3})"
        );
    }

    #[test]
    fn value_at_and_peak_are_consistent() {
        let curve = DosCurve {
            energies: vec![0.0, 1.0, 2.0, 3.0],
            values: vec![0.1, 0.9, 0.4, 0.2],
        };
        assert_eq!(curve.peak_energy(), 1.0);
        assert_eq!(curve.value_at(1.2), 0.9);
        assert_eq!(curve.value_at(2.6), 0.2);
    }

    #[test]
    fn integral_window_subset() {
        let curve = DosCurve {
            energies: (0..=10).map(|i| i as f64).collect(),
            values: vec![1.0; 11],
        };
        assert!((curve.integral() - 10.0).abs() < 1e-12);
        assert!((curve.integral_window(2.0, 5.0) - 3.0).abs() < 1e-12);
        assert_eq!(curve.integral_window(20.0, 30.0), 0.0);
    }
}
