//! Checkpoint/restart of the Chebyshev moment iteration.
//!
//! A KPM sweep at scale runs for hours; a lost rank must not mean a lost
//! run. This module serializes the recurrence state — the iteration
//! index, the two live Chebyshev (block) vectors, and the moment
//! partials accumulated so far — into self-validating binary records,
//! behind a [`CheckpointStore`] abstraction with an in-memory
//! implementation for tests and a directory-backed one for real runs.
//!
//! Two record kinds cover both the shared-memory and the distributed
//! solver:
//!
//! * [`RankCheckpoint`] — one rank's local rows of the current (`v`) and
//!   next (`w`) Chebyshev block at an iteration boundary, tagged with
//!   the row range it owns so a restart may *re-decompose* the matrix
//!   over a different rank count (survivor redistribution) and reslice.
//! * [`EtaCheckpoint`] — the **globally reduced** η prefix (µ0, µ1 and
//!   all per-iteration scalar products up to the checkpoint). Storing
//!   the reduced values rather than per-rank partials makes the restart
//!   arithmetic bitwise-identical to the uninterrupted run: the resumed
//!   world seeds rank 0 with the prefix and every other rank with zeros,
//!   so the single final reduction counts it exactly once, in the same
//!   deterministic order.
//!
//! The binary format is fixed-layout little-endian with a magic header,
//! a version byte, explicit lengths, and an FNV-1a checksum over the
//! payload; every decode failure surfaces as
//! [`KpmError::CheckpointCorrupt`].
//!
//! Cost model (see README): a rank checkpoint is `2 · n_local · R · 16`
//! bytes of vector payload plus a 64-byte header — for the paper's
//! largest per-device blocks (n_local ≈ 4·10⁶, R = 32) about 4 GiB per
//! device, written once every `interval` of the `M/2 − 1` sweeps.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;

use kpm_num::{Complex64, KpmError};

const MAGIC: &[u8; 8] = b"KPMCKPT\x01";
const KIND_RANK: u8 = 1;
const KIND_ETA: u8 = 2;

/// One rank's recurrence state at an iteration boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct RankCheckpoint {
    /// Number of completed Chebyshev sweeps (the next sweep to run).
    pub iteration: usize,
    /// The rank that wrote this record.
    pub rank: usize,
    /// First global row this rank owned.
    pub row_begin: usize,
    /// One past the last global row this rank owned.
    pub row_end: usize,
    /// Block width `R`.
    pub width: usize,
    /// Halo payload bytes this rank had sent so far.
    pub halo_sent: u64,
    /// Local rows of the current block ν_m, row-major interleaved
    /// (`(row_end - row_begin) * width` entries).
    pub v: Vec<Complex64>,
    /// Local rows of the next block ν_{m+1}, same layout.
    pub w: Vec<Complex64>,
}

/// The globally reduced η prefix at an iteration boundary, in the flat
/// layout of the distributed solver:
/// `[µ0[0..R] | µ1[0..R] | per-sweep (even[0..R] | odd[0..R])]`.
#[derive(Debug, Clone, PartialEq)]
pub struct EtaCheckpoint {
    /// Number of completed Chebyshev sweeps covered by `eta`.
    pub iteration: usize,
    /// Block width `R`.
    pub width: usize,
    /// `2R + iteration · 2R` reduced values.
    pub eta: Vec<Complex64>,
}

impl EtaCheckpoint {
    /// The η length implied by `iteration` and `width`.
    pub fn expected_len(iteration: usize, width: usize) -> usize {
        2 * width + iteration * 2 * width
    }
}

/// Where checkpoints live. Implementations must be safe to call from
/// multiple rank threads at once.
pub trait CheckpointStore: Send + Sync {
    /// Persists one rank's recurrence state.
    fn save_rank(&self, ck: &RankCheckpoint) -> Result<(), KpmError>;
    /// Persists the globally reduced η prefix.
    fn save_eta(&self, ck: &EtaCheckpoint) -> Result<(), KpmError>;
    /// Loads one rank's state at `iteration`, if present.
    fn load_rank(&self, iteration: usize, rank: usize) -> Result<Option<RankCheckpoint>, KpmError>;
    /// Loads the η prefix at `iteration`, if present.
    fn load_eta(&self, iteration: usize) -> Result<Option<EtaCheckpoint>, KpmError>;
    /// Iterations that have an η record, ascending.
    fn eta_iterations(&self) -> Result<Vec<usize>, KpmError>;
    /// Ranks with a record at `iteration`, ascending.
    fn ranks_at(&self, iteration: usize) -> Result<Vec<usize>, KpmError>;
}

/// Finds the newest iteration that has a *decodable* η record plus a
/// *complete* tiling of rows `0..n` by decodable rank records — the
/// restart point.
///
/// Corruption tolerance: a record that fails validation (truncated
/// write, bit rot, garbage file under a checkpoint name) disqualifies
/// only itself, not the scan. A corrupt η skips that iteration; a
/// corrupt rank record drops out of the tiling, and if the remaining
/// spans no longer cover `0..n` the scan falls back to the next-older
/// candidate. Only environmental errors (I/O, lock) abort the search.
pub fn latest_consistent(store: &dyn CheckpointStore, n: usize) -> Result<Option<usize>, KpmError> {
    let mut iters = store.eta_iterations()?;
    iters.sort_unstable();
    for &it in iters.iter().rev() {
        match store.load_eta(it) {
            Ok(Some(_)) => {}
            Ok(None) => continue,
            Err(KpmError::CheckpointCorrupt { .. }) => continue,
            Err(e) => return Err(e),
        }
        let ranks = store.ranks_at(it)?;
        let mut spans: Vec<(usize, usize)> = Vec::with_capacity(ranks.len());
        for r in ranks {
            match store.load_rank(it, r) {
                Ok(Some(ck)) => spans.push((ck.row_begin, ck.row_end)),
                Ok(None) => {}
                Err(KpmError::CheckpointCorrupt { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        spans.sort_unstable();
        let tiles = !spans.is_empty()
            && spans.first().map(|s| s.0) == Some(0)
            && spans.last().map(|s| s.1) == Some(n)
            && spans.windows(2).all(|p| p[0].1 == p[1].0);
        if tiles {
            return Ok(Some(it));
        }
    }
    Ok(None)
}

// --- Binary encoding -------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(kind: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(MAGIC);
        buf.push(kind);
        Enc { buf }
    }

    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn complex_slice(&mut self, xs: &[Complex64]) {
        self.u64(xs.len() as u64);
        for x in xs {
            self.buf.extend_from_slice(&x.re.to_le_bytes());
            self.buf.extend_from_slice(&x.im.to_le_bytes());
        }
    }

    /// Appends the FNV-1a checksum of everything so far and returns the
    /// finished record.
    fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.u64(sum);
        self.buf
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8], kind: u8) -> Result<Self, KpmError> {
        if buf.len() < MAGIC.len() + 1 + 8 {
            return Err(corrupt("record shorter than header + checksum"));
        }
        let (body, sum_bytes) = buf.split_at(buf.len() - 8);
        let stored = u64::from_le_bytes(
            sum_bytes
                .try_into()
                .map_err(|_| corrupt("checksum field size"))?,
        );
        if fnv1a(body) != stored {
            return Err(corrupt("checksum mismatch"));
        }
        if &body[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic or version"));
        }
        if body[MAGIC.len()] != kind {
            return Err(corrupt("wrong record kind"));
        }
        Ok(Dec {
            buf: body,
            pos: MAGIC.len() + 1,
        })
    }

    fn u64(&mut self) -> Result<u64, KpmError> {
        let end = self.pos + 8;
        if end > self.buf.len() {
            return Err(corrupt("truncated integer field"));
        }
        let x = u64::from_le_bytes(
            self.buf[self.pos..end]
                .try_into()
                .map_err(|_| corrupt("integer field size"))?,
        );
        self.pos = end;
        Ok(x)
    }

    fn f64(&mut self) -> Result<f64, KpmError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn complex_vec(&mut self) -> Result<Vec<Complex64>, KpmError> {
        let len = self.u64()? as usize;
        if len > (self.buf.len() - self.pos) / 16 {
            return Err(corrupt("vector length exceeds record size"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let re = self.f64()?;
            let im = self.f64()?;
            out.push(Complex64::new(re, im));
        }
        Ok(out)
    }

    fn done(&self) -> Result<(), KpmError> {
        if self.pos != self.buf.len() {
            return Err(corrupt("trailing bytes after payload"));
        }
        Ok(())
    }
}

fn corrupt(details: &str) -> KpmError {
    KpmError::CheckpointCorrupt {
        details: details.to_string(),
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl RankCheckpoint {
    /// Serializes to the self-validating binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new(KIND_RANK);
        e.u64(self.iteration as u64);
        e.u64(self.rank as u64);
        e.u64(self.row_begin as u64);
        e.u64(self.row_end as u64);
        e.u64(self.width as u64);
        e.u64(self.halo_sent);
        e.complex_slice(&self.v);
        e.complex_slice(&self.w);
        e.finish()
    }

    /// Decodes and validates a record produced by [`Self::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, KpmError> {
        let mut d = Dec::new(bytes, KIND_RANK)?;
        let iteration = d.u64()? as usize;
        let rank = d.u64()? as usize;
        let row_begin = d.u64()? as usize;
        let row_end = d.u64()? as usize;
        let width = d.u64()? as usize;
        let halo_sent = d.u64()?;
        let v = d.complex_vec()?;
        let w = d.complex_vec()?;
        d.done()?;
        if row_end < row_begin {
            return Err(corrupt("row range is inverted"));
        }
        let rows = row_end - row_begin;
        if v.len() != rows * width || w.len() != rows * width {
            return Err(corrupt("vector length does not match row range"));
        }
        Ok(RankCheckpoint {
            iteration,
            rank,
            row_begin,
            row_end,
            width,
            halo_sent,
            v,
            w,
        })
    }
}

impl EtaCheckpoint {
    /// Serializes to the self-validating binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new(KIND_ETA);
        e.u64(self.iteration as u64);
        e.u64(self.width as u64);
        e.complex_slice(&self.eta);
        e.finish()
    }

    /// Decodes and validates a record produced by [`Self::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, KpmError> {
        let mut d = Dec::new(bytes, KIND_ETA)?;
        let iteration = d.u64()? as usize;
        let width = d.u64()? as usize;
        let eta = d.complex_vec()?;
        d.done()?;
        if eta.len() != Self::expected_len(iteration, width) {
            return Err(corrupt("eta length does not match iteration/width"));
        }
        Ok(EtaCheckpoint {
            iteration,
            width,
            eta,
        })
    }
}

// --- Stores ----------------------------------------------------------

/// Checkpoints held in memory — the store used by tests and by the
/// fault-injection harness, where "disk" survives a simulated crash
/// because the store outlives the world.
#[derive(Default)]
pub struct MemoryCheckpointStore {
    ranks: Mutex<HashMap<(usize, usize), Vec<u8>>>,
    etas: Mutex<HashMap<usize, Vec<u8>>>,
}

impl MemoryCheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently held (the checkpoint footprint).
    pub fn total_bytes(&self) -> usize {
        let r: usize = self
            .ranks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(Vec::len)
            .sum();
        let e: usize = self
            .etas
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(Vec::len)
            .sum();
        r + e
    }

    /// Flips one byte of a stored rank record — test hook for the
    /// corruption-detection path.
    pub fn corrupt_rank(&self, iteration: usize, rank: usize) -> bool {
        let mut map = self.ranks.lock().unwrap_or_else(|e| e.into_inner());
        match map.get_mut(&(iteration, rank)) {
            Some(bytes) if !bytes.is_empty() => {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xFF;
                true
            }
            _ => false,
        }
    }
}

impl CheckpointStore for MemoryCheckpointStore {
    fn save_rank(&self, ck: &RankCheckpoint) -> Result<(), KpmError> {
        self.ranks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert((ck.iteration, ck.rank), ck.encode());
        Ok(())
    }

    fn save_eta(&self, ck: &EtaCheckpoint) -> Result<(), KpmError> {
        self.etas
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(ck.iteration, ck.encode());
        Ok(())
    }

    fn load_rank(&self, iteration: usize, rank: usize) -> Result<Option<RankCheckpoint>, KpmError> {
        self.ranks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&(iteration, rank))
            .map(|b| RankCheckpoint::decode(b))
            .transpose()
    }

    fn load_eta(&self, iteration: usize) -> Result<Option<EtaCheckpoint>, KpmError> {
        self.etas
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&iteration)
            .map(|b| EtaCheckpoint::decode(b))
            .transpose()
    }

    fn eta_iterations(&self) -> Result<Vec<usize>, KpmError> {
        let mut v: Vec<usize> = self
            .etas
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .copied()
            .collect();
        v.sort_unstable();
        Ok(v)
    }

    fn ranks_at(&self, iteration: usize) -> Result<Vec<usize>, KpmError> {
        let mut v: Vec<usize> = self
            .ranks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .filter(|(it, _)| *it == iteration)
            .map(|(_, r)| *r)
            .collect();
        v.sort_unstable();
        Ok(v)
    }
}

/// Checkpoints as files in a directory: `rank-<iter>-<rank>.ckpt` and
/// `eta-<iter>.ckpt`, written via a temporary name + rename so a crash
/// mid-write never leaves a half record under the final name.
pub struct DirCheckpointStore {
    dir: PathBuf,
}

impl DirCheckpointStore {
    /// Opens (creating if needed) `dir` as a checkpoint directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, KpmError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DirCheckpointStore { dir })
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), KpmError> {
        let tmp = self.dir.join(format!("{name}.tmp"));
        let fin = self.dir.join(name);
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, &fin)?;
        Ok(())
    }

    fn read_opt(&self, name: &str) -> Result<Option<Vec<u8>>, KpmError> {
        match std::fs::read(self.dir.join(name)) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

impl CheckpointStore for DirCheckpointStore {
    fn save_rank(&self, ck: &RankCheckpoint) -> Result<(), KpmError> {
        self.write_atomic(
            &format!("rank-{:08}-{:04}.ckpt", ck.iteration, ck.rank),
            &ck.encode(),
        )
    }

    fn save_eta(&self, ck: &EtaCheckpoint) -> Result<(), KpmError> {
        self.write_atomic(&format!("eta-{:08}.ckpt", ck.iteration), &ck.encode())
    }

    fn load_rank(&self, iteration: usize, rank: usize) -> Result<Option<RankCheckpoint>, KpmError> {
        self.read_opt(&format!("rank-{iteration:08}-{rank:04}.ckpt"))?
            .map(|b| RankCheckpoint::decode(&b))
            .transpose()
    }

    fn load_eta(&self, iteration: usize) -> Result<Option<EtaCheckpoint>, KpmError> {
        self.read_opt(&format!("eta-{iteration:08}.ckpt"))?
            .map(|b| EtaCheckpoint::decode(&b))
            .transpose()
    }

    fn eta_iterations(&self) -> Result<Vec<usize>, KpmError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("eta-")
                .and_then(|s| s.strip_suffix(".ckpt"))
            {
                if let Ok(it) = num.parse::<usize>() {
                    out.push(it);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn ranks_at(&self, iteration: usize) -> Result<Vec<usize>, KpmError> {
        let prefix = format!("rank-{iteration:08}-");
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix(prefix.as_str())
                .and_then(|s| s.strip_suffix(".ckpt"))
            {
                if let Ok(r) = num.parse::<usize>() {
                    out.push(r);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rank(iter: usize, rank: usize, rows: usize, width: usize) -> RankCheckpoint {
        let n = rows * width;
        RankCheckpoint {
            iteration: iter,
            rank,
            row_begin: rank * rows,
            row_end: (rank + 1) * rows,
            width,
            halo_sent: 12345,
            v: (0..n)
                .map(|i| Complex64::new(i as f64, -(i as f64)))
                .collect(),
            w: (0..n)
                .map(|i| Complex64::new(0.5 * i as f64, 2.0))
                .collect(),
        }
    }

    #[test]
    fn rank_record_roundtrips_exactly() {
        let ck = sample_rank(7, 2, 13, 3);
        let back = RankCheckpoint::decode(&ck.encode()).expect("decode");
        assert_eq!(ck, back);
    }

    #[test]
    fn eta_record_roundtrips_exactly() {
        let width = 4;
        let iter = 5;
        let ck = EtaCheckpoint {
            iteration: iter,
            width,
            eta: (0..EtaCheckpoint::expected_len(iter, width))
                .map(|i| Complex64::new(i as f64 * 0.1, 1.0 / (i + 1) as f64))
                .collect(),
        };
        let back = EtaCheckpoint::decode(&ck.encode()).expect("decode");
        assert_eq!(ck, back);
    }

    #[test]
    fn bitflip_is_detected() {
        let ck = sample_rank(1, 0, 8, 2);
        let mut bytes = ck.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let err = RankCheckpoint::decode(&bytes).expect_err("corruption must be caught");
        assert!(matches!(err, KpmError::CheckpointCorrupt { .. }));
    }

    #[test]
    fn truncation_is_detected() {
        let ck = sample_rank(1, 0, 8, 2);
        let bytes = ck.encode();
        let err = RankCheckpoint::decode(&bytes[..bytes.len() - 3]).expect_err("truncated");
        assert!(matches!(err, KpmError::CheckpointCorrupt { .. }));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let eta = EtaCheckpoint {
            iteration: 0,
            width: 1,
            eta: vec![Complex64::real(1.0); 2],
        };
        let err = RankCheckpoint::decode(&eta.encode()).expect_err("kind mismatch");
        assert!(matches!(err, KpmError::CheckpointCorrupt { .. }));
    }

    #[test]
    fn memory_store_roundtrip_and_inventory() {
        let store = MemoryCheckpointStore::new();
        for rank in 0..3 {
            store.save_rank(&sample_rank(4, rank, 10, 2)).unwrap();
        }
        store
            .save_eta(&EtaCheckpoint {
                iteration: 4,
                width: 2,
                eta: vec![Complex64::default(); EtaCheckpoint::expected_len(4, 2)],
            })
            .unwrap();
        assert_eq!(store.eta_iterations().unwrap(), vec![4]);
        assert_eq!(store.ranks_at(4).unwrap(), vec![0, 1, 2]);
        assert!(store.load_rank(4, 1).unwrap().is_some());
        assert!(store.load_rank(4, 9).unwrap().is_none());
        assert!(store.total_bytes() > 0);
        // 3 ranks tile rows 0..30.
        assert_eq!(latest_consistent(&store, 30).unwrap(), Some(4));
        // But they do not tile a 40-row problem.
        assert_eq!(latest_consistent(&store, 40).unwrap(), None);
    }

    #[test]
    fn corrupt_store_entry_surfaces_on_load() {
        let store = MemoryCheckpointStore::new();
        store.save_rank(&sample_rank(2, 0, 5, 1)).unwrap();
        assert!(store.corrupt_rank(2, 0));
        let err = store.load_rank(2, 0).expect_err("must surface corruption");
        assert!(matches!(err, KpmError::CheckpointCorrupt { .. }));
    }

    #[test]
    fn dir_store_roundtrips_via_files() {
        let dir = std::env::temp_dir().join(format!(
            "kpm-ckpt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DirCheckpointStore::new(&dir).expect("create dir store");
        let ck = sample_rank(3, 1, 6, 2);
        store.save_rank(&ck).unwrap();
        store
            .save_eta(&EtaCheckpoint {
                iteration: 3,
                width: 2,
                eta: vec![Complex64::real(1.0); EtaCheckpoint::expected_len(3, 2)],
            })
            .unwrap();
        let back = store.load_rank(3, 1).unwrap().expect("present");
        assert_eq!(ck, back);
        assert_eq!(store.eta_iterations().unwrap(), vec![3]);
        assert_eq!(store.ranks_at(3).unwrap(), vec![1]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
