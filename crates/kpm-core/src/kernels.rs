//! Damping kernels for the truncated Chebyshev expansion.
//!
//! Truncating the KPM series at `M` moments produces Gibbs oscillations;
//! multiplying the moments by kernel coefficients `g_m` restores
//! positivity and controls resolution (Weiße et al., Rev. Mod. Phys. 78,
//! 275 (2006) — paper ref. [7]). Jackson is the standard choice for
//! densities of states; Lorentz for Green-function-like quantities;
//! Dirichlet (`g_m = 1`) is the raw truncation.

/// A damping kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// The Jackson kernel — optimal resolution for DOS; the broadening
    /// at `x = 0` is `≈ π / M`.
    Jackson,
    /// The Lorentz kernel with parameter `λ` (typical: 3–5); yields
    /// Lorentzian broadening, matching retarded Green functions.
    Lorentz(f64),
    /// No damping (sharp truncation; exhibits Gibbs oscillations).
    Dirichlet,
}

impl Kernel {
    /// The coefficients `g_0 .. g_{m_count-1}` for `m_count` moments.
    pub fn coefficients(&self, m_count: usize) -> Vec<f64> {
        match *self {
            Kernel::Jackson => jackson(m_count),
            Kernel::Lorentz(lambda) => lorentz(m_count, lambda),
            Kernel::Dirichlet => vec![1.0; m_count],
        }
    }
}

/// Jackson kernel coefficients for `n` moments:
/// `g_m = [(n - m + 1) cos(πm/(n+1)) + sin(πm/(n+1)) cot(π/(n+1))] / (n+1)`.
fn jackson(n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let np1 = n as f64 + 1.0;
    let cot = 1.0 / (std::f64::consts::PI / np1).tan();
    (0..n)
        .map(|m| {
            let arg = std::f64::consts::PI * m as f64 / np1;
            ((n as f64 - m as f64 + 1.0) * arg.cos() + arg.sin() * cot) / np1
        })
        .collect()
}

/// Lorentz kernel coefficients: `g_m = sinh(λ(1 - m/n)) / sinh(λ)`.
fn lorentz(n: usize, lambda: f64) -> Vec<f64> {
    assert!(lambda > 0.0, "Lorentz kernel parameter must be positive");
    (0..n)
        .map(|m| (lambda * (1.0 - m as f64 / n as f64)).sinh() / lambda.sinh())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jackson_g0_is_one_and_decreasing() {
        let g = Kernel::Jackson.coefficients(128);
        assert!((g[0] - 1.0).abs() < 1e-12);
        for w in g.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "Jackson coefficients must decay");
        }
        assert!(g[127] > 0.0 && g[127] < 1e-2);
    }

    #[test]
    fn lorentz_g0_is_one_and_positive() {
        let g = Kernel::Lorentz(4.0).coefficients(64);
        assert!((g[0] - 1.0).abs() < 1e-12);
        for &v in &g {
            assert!(v > 0.0 && v <= 1.0);
        }
    }

    #[test]
    fn dirichlet_is_all_ones() {
        assert_eq!(Kernel::Dirichlet.coefficients(5), vec![1.0; 5]);
    }

    #[test]
    fn jackson_kernel_is_positive_definite() {
        // The Jackson-damped delta approximation must be non-negative
        // everywhere: reconstruct delta(x - x0) from exact moments
        // mu_m = T_m(x0) and check positivity on a grid.
        use crate::chebyshev::{damped_series, t};
        let m_count = 64;
        let x0 = 0.31;
        let mu: Vec<f64> = (0..m_count).map(|m| t(m, x0)).collect();
        let g = Kernel::Jackson.coefficients(m_count);
        for i in 0..201 {
            let x = -0.999 + 1.998 * i as f64 / 200.0;
            let v = damped_series(&mu, &g, x);
            assert!(v > -1e-10, "Jackson reconstruction negative at {x}: {v}");
        }
    }

    #[test]
    fn dirichlet_shows_gibbs_oscillations() {
        // Same reconstruction without damping must go negative.
        use crate::chebyshev::{damped_series, t};
        let m_count = 64;
        let x0 = 0.31;
        let mu: Vec<f64> = (0..m_count).map(|m| t(m, x0)).collect();
        let g = Kernel::Dirichlet.coefficients(m_count);
        let has_negative = (0..201).any(|i| {
            let x = -0.999 + 1.998 * i as f64 / 200.0;
            damped_series(&mu, &g, x) < -1e-6
        });
        assert!(has_negative, "sharp truncation should oscillate below zero");
    }

    #[test]
    fn jackson_resolution_narrows_with_more_moments() {
        // FWHM of the delta reconstruction shrinks ~ 1/M.
        use crate::chebyshev::{damped_series, t};
        let width = |m_count: usize| -> f64 {
            let mu: Vec<f64> = (0..m_count).map(|m| t(m, 0.0)).collect();
            let g = Kernel::Jackson.coefficients(m_count);
            let peak = damped_series(&mu, &g, 0.0);
            let mut half_width = 1.0;
            for i in 1..2000 {
                let x = i as f64 / 2000.0;
                if damped_series(&mu, &g, x) < peak / 2.0 {
                    half_width = x;
                    break;
                }
            }
            half_width
        };
        let w32 = width(32);
        let w128 = width(128);
        assert!(w128 < w32 / 2.0, "w32={w32} w128={w128}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn lorentz_requires_positive_lambda() {
        Kernel::Lorentz(0.0).coefficients(4);
    }
}
