//! Retarded Green function reconstruction.
//!
//! KPM moments determine not only the spectral density but the full
//! retarded Green function (Weiße et al., Rev. Mod. Phys. 78, 275 —
//! paper ref. [7]): with `x = cos θ`,
//!
//! ```text
//! G(x + i0) = -(1/√(1-x²)) [ g₀μ₀·(-i) + 2 Σ_{m≥1} g_m μ_m e^{-imθ}·(-i)·… ]
//! ```
//!
//! which splits into `Im G(x) = -π ρ(x)` (the DOS) and
//!
//! `Re G(x) = -(2/√(1-x²)) Σ_{m≥1} g_m μ_m sin(mθ)`,
//!
//! i.e. the Hilbert transform of the density comes for free from the
//! same moments — no extra matrix work. Used for self-energies,
//! embedding, and transport kernels downstream of KPM.

use kpm_num::Complex64;
use kpm_topo::ScaleFactors;

use crate::kernels::Kernel;
use crate::moments::MomentSet;

/// The retarded Green function `G(E + i0)` sampled on an energy grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GreenCurve {
    /// Sample energies.
    pub energies: Vec<f64>,
    /// `G(E + i0)` values.
    pub values: Vec<Complex64>,
}

/// Evaluates `G(x + i0)` at one Chebyshev coordinate `x ∈ (-1, 1)`.
pub fn green_at(moments: &MomentSet, g: &[f64], x: f64) -> Complex64 {
    assert!((-1.0..=1.0).contains(&x), "x must be inside [-1, 1]");
    let mu = moments.as_slice();
    assert_eq!(mu.len(), g.len(), "moments/kernel length mismatch");
    let theta = x.acos();
    let root = (1.0 - x * x).sqrt().max(f64::MIN_POSITIVE);
    let mut re = 0.0;
    let mut im = if mu.is_empty() { 0.0 } else { g[0] * mu[0] };
    for m in 1..mu.len() {
        let mf = m as f64;
        re -= 2.0 * g[m] * mu[m] * (mf * theta).sin();
        im += 2.0 * g[m] * mu[m] * (mf * theta).cos();
    }
    Complex64::new(re / root, -im / root)
}

/// Reconstructs `G(E + i0)` on `n_points` Chebyshev nodes mapped back
/// to energy. The rescaling Jacobian multiplies by `a`, matching the
/// DOS convention (`Im G(E) = -π ρ(E)` per site).
pub fn reconstruct_green(
    moments: &MomentSet,
    kernel: Kernel,
    sf: ScaleFactors,
    n_points: usize,
) -> GreenCurve {
    let g = kernel.coefficients(moments.len());
    let nodes = crate::chebyshev::chebyshev_nodes(n_points);
    let mut energies = Vec::with_capacity(n_points);
    let mut values = Vec::with_capacity(n_points);
    for &x in &nodes {
        energies.push(sf.to_energy(x));
        values.push(green_at(moments, &g, x).scale(sf.a));
    }
    GreenCurve { energies, values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chebyshev::t;
    use crate::dos::reconstruct;
    use crate::solver::{kpm_moments, KpmParams, KpmVariant};
    use kpm_topo::model::random_hermitian;

    /// Moments of a single pole at `x0`: μ_m = T_m(x0), constructed via
    /// the inverse of the product identities: the η pairs that the
    /// solver would produce for this measure are
    /// `η_{2m} = (T_{2m}(x0)+μ₀)/2`, `η_{2m+1} = (T_{2m+1}(x0)+μ₁)/2`.
    fn pole_moments(x0: f64, m_count: usize) -> MomentSet {
        let iters = (m_count - 2) / 2;
        let eta: Vec<(f64, Complex64)> = (1..=iters)
            .map(|m| {
                (
                    (t(2 * m, x0) + 1.0) / 2.0,
                    Complex64::real((t(2 * m + 1, x0) + t(1, x0)) / 2.0),
                )
            })
            .collect();
        MomentSet::from_eta(1.0, t(1, x0), &eta)
    }

    #[test]
    fn imaginary_part_is_minus_pi_dos() {
        let h = random_hermitian(100, 3, 4);
        let sf = kpm_topo::ScaleFactors::from_gershgorin(&h, 0.01);
        let p = KpmParams {
            num_moments: 64,
            num_random: 8,
            seed: 11,
            parallel: false,
            threads: 0,
            power: 1,
            first_touch: false,
        };
        let set = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        let dos = reconstruct(&set, Kernel::Jackson, sf, 257);
        let green = reconstruct_green(&set, Kernel::Jackson, sf, 257);
        for ((e, rho), gv) in dos.energies.iter().zip(&dos.values).zip(&green.values) {
            assert!(
                (gv.im + std::f64::consts::PI * rho).abs() < 1e-9 * (1.0 + rho.abs()),
                "at E={e}: Im G = {}, -pi rho = {}",
                gv.im,
                -std::f64::consts::PI * rho
            );
        }
    }

    #[test]
    fn single_pole_real_part_matches_resolvent() {
        // mu_m = T_m(x0) is the spectral measure delta(x - x0), whose
        // resolvent is 1/(x - x0). Away from the pole the damped
        // reconstruction must approach it.
        let x0 = -0.2;
        let m_count = 512;
        let set = pole_moments(x0, m_count);
        let g = Kernel::Jackson.coefficients(m_count);
        for &x in &[0.35f64, 0.6, -0.7] {
            let got = green_at(&set, &g, x).re;
            let want = 1.0 / (x - x0);
            assert!(
                (got - want).abs() < 0.05 * want.abs(),
                "x={x}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn kramers_kronig_consistency() {
        // Re G at x must equal the principal-value integral of the
        // density: P∫ rho(x')/(x - x') dx'. Evaluate the PV integral by
        // Gauss-Chebyshev quadrature with the singular point excluded
        // symmetrically.
        let h = random_hermitian(80, 3, 6);
        let sf = kpm_topo::ScaleFactors::from_gershgorin(&h, 0.01);
        let p = KpmParams {
            num_moments: 128,
            num_random: 16,
            seed: 12,
            parallel: false,
            threads: 0,
            power: 1,
            first_touch: false,
        };
        let set = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        let g = Kernel::Jackson.coefficients(set.len());

        let k = 20_001; // odd, fine grid for the PV integral
        let nodes = crate::chebyshev::chebyshev_nodes(k);
        // Density in Chebyshev coordinates (without the 1/sqrt weight
        // so Gauss-Chebyshev quadrature absorbs it).
        let series: Vec<f64> = nodes
            .iter()
            .map(|&xp| {
                crate::chebyshev::damped_series(set.as_slice(), &g, xp) / std::f64::consts::PI
            })
            .collect();
        let x = 0.27;
        let pv: f64 = nodes
            .iter()
            .zip(&series)
            .filter(|(&xp, _)| (xp - x).abs() > 5e-4)
            .map(|(&xp, &s)| s / (x - xp))
            .sum::<f64>()
            * std::f64::consts::PI
            / k as f64;
        let re_g = green_at(&set, &g, x).re;
        assert!(
            (re_g - pv).abs() < 0.05 * (1.0 + re_g.abs()),
            "Re G = {re_g} vs PV integral = {pv}"
        );
    }

    #[test]
    #[should_panic(expected = "inside [-1, 1]")]
    fn outside_interval_panics() {
        let set = MomentSet::zeros(4);
        let g = Kernel::Dirichlet.coefficients(4);
        green_at(&set, &g, 1.5);
    }
}
