//! Deterministic fault injection for the message-passing runtime.
//!
//! A [`FaultPlan`] describes which failures to inject into a
//! [`World`](crate::runtime::World): per-message drop, duplication and
//! delay (decided by a seeded hash of the message coordinates, so a
//! plan replays bit-identically), plus a schedule of rank crashes tied
//! to Chebyshev iterations. Tests and benches attach a plan through
//! [`WorldConfig`](crate::runtime::WorldConfig) and the resilient
//! distributed driver consults the crash schedule at its iteration
//! boundaries.
//!
//! Crash entries are *one-shot*: once a crash has fired it never fires
//! again, so a checkpoint-restart loop naturally makes progress past
//! the failure on the next attempt — the same contract a real system
//! has with a node that died once.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// What the fault layer decided to do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageFate {
    /// Silently lose the message.
    pub drop: bool,
    /// Deliver a second (replayed) copy.
    pub duplicate: bool,
    /// Hold the message back for this long before delivery.
    pub delay: Option<Duration>,
}

impl MessageFate {
    /// A fate that leaves the message untouched.
    pub const CLEAN: MessageFate = MessageFate {
        drop: false,
        duplicate: false,
        delay: None,
    };
}

/// One scheduled rank death.
#[derive(Debug)]
struct CrashSpec {
    rank: usize,
    at_iteration: usize,
    triggered: AtomicBool,
}

/// Counters of injected faults, for reporting and test assertions.
#[derive(Debug, Default)]
pub struct FaultStats {
    pub dropped: u64,
    pub duplicated: u64,
    pub delayed: u64,
    pub crashed: u64,
}

/// A seeded, replayable schedule of failures.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    drop_prob: f64,
    dup_prob: f64,
    delay_prob: f64,
    max_delay: Duration,
    crashes: Vec<CrashSpec>,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    crashed: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_delay: Duration::ZERO,
            crashes: Vec::new(),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            crashed: AtomicU64::new(0),
        }
    }

    /// Loses each message with probability `p`.
    pub fn with_message_drops(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_prob = p;
        self
    }

    /// Delivers a second copy of each message with probability `p`
    /// (at-least-once delivery; the runtime deduplicates).
    pub fn with_message_duplication(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.dup_prob = p;
        self
    }

    /// Holds each message back by up to `max_delay` with probability
    /// `p`, reordering deliveries across senders.
    pub fn with_message_delays(mut self, p: f64, max_delay: Duration) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.delay_prob = p;
        self.max_delay = max_delay;
        self
    }

    /// Kills `rank` when it reaches Chebyshev iteration `at_iteration`
    /// (one-shot: a restarted run passes the same point unharmed).
    pub fn with_rank_crash(mut self, rank: usize, at_iteration: usize) -> Self {
        self.crashes.push(CrashSpec {
            rank,
            at_iteration,
            triggered: AtomicBool::new(false),
        });
        self
    }

    /// True if any per-message fault (drop/dup/delay) can fire.
    pub fn has_message_faults(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0 || self.delay_prob > 0.0
    }

    /// True if no message is ever lost outright (duplication and delay
    /// are lossless; drops and crashes are not).
    pub fn is_lossless(&self) -> bool {
        self.drop_prob == 0.0 && self.crashes.is_empty()
    }

    /// Deterministic fate of the message `(from, to, tag, seq)`.
    pub fn decide(&self, from: usize, to: usize, tag: u64, seq: u64) -> MessageFate {
        if !self.has_message_faults() {
            return MessageFate::CLEAN;
        }
        // Independent draws from a stream keyed by the message identity.
        let mut state = splitmix(
            self.seed
                ^ (from as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (to as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                ^ tag.wrapping_mul(0x1656_67B1_9E37_79F9)
                ^ seq.wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        let mut draw = || {
            state = splitmix(state);
            (state >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        };
        let fate = MessageFate {
            drop: draw() < self.drop_prob,
            duplicate: draw() < self.dup_prob,
            delay: if draw() < self.delay_prob {
                let frac = draw();
                Some(Duration::from_secs_f64(self.max_delay.as_secs_f64() * frac))
            } else {
                None
            },
        };
        if fate.drop {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        if fate.duplicate {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
        }
        if fate.delay.is_some() {
            self.delayed.fetch_add(1, Ordering::Relaxed);
        }
        fate
    }

    /// True exactly once per matching crash entry: the first time
    /// `rank` asks at or past its scheduled iteration.
    pub fn crash_pending(&self, rank: usize, iteration: usize) -> bool {
        for spec in &self.crashes {
            if spec.rank == rank
                && iteration >= spec.at_iteration
                && !spec.triggered.swap(true, Ordering::AcqRel)
            {
                self.crashed.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Snapshot of how many faults have fired so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            crashed: self.crashed.load(Ordering::Relaxed),
        }
    }
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(7).with_message_drops(0.3);
        let b = FaultPlan::new(7).with_message_drops(0.3);
        for seq in 0..200 {
            assert_eq!(a.decide(0, 1, 5, seq), b.decide(0, 1, 5, seq));
        }
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan::new(42).with_message_drops(0.25);
        let n = 4000;
        let dropped = (0..n).filter(|&s| plan.decide(1, 2, 0, s).drop).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "rate = {rate}");
        assert_eq!(plan.stats().dropped, dropped as u64);
    }

    #[test]
    fn clean_plan_touches_nothing() {
        let plan = FaultPlan::new(1);
        assert_eq!(plan.decide(0, 1, 0, 0), MessageFate::CLEAN);
        assert!(plan.is_lossless());
        assert!(!plan.has_message_faults());
    }

    #[test]
    fn crashes_fire_exactly_once() {
        let plan = FaultPlan::new(0).with_rank_crash(2, 10);
        assert!(!plan.crash_pending(2, 9));
        assert!(!plan.crash_pending(1, 10));
        assert!(plan.crash_pending(2, 10));
        assert!(!plan.crash_pending(2, 10), "one-shot crash fired twice");
        assert!(!plan.crash_pending(2, 11));
        assert_eq!(plan.stats().crashed, 1);
    }

    #[test]
    fn delays_stay_bounded() {
        let plan = FaultPlan::new(3).with_message_delays(1.0, Duration::from_millis(10));
        for seq in 0..100 {
            let fate = plan.decide(0, 1, 0, seq);
            let d = fate.delay.expect("p = 1 always delays");
            assert!(d <= Duration::from_millis(10));
        }
    }
}
