//! The distributed blocked KPM solver (functional layer).
//!
//! Executes optimization stage 2 (paper Fig. 5) across ranks: every rank
//! owns a weighted row block, exchanges halo rows of the current
//! Chebyshev block before each sweep, runs the local augmented SpMMV,
//! and contributes partial scalar products. Two reduction policies
//! reproduce the paper's Table III comparison:
//!
//! * `reduce_every_iteration = false` — the optimized scheme: partial η
//!   sums accumulate locally and a *single* global reduction runs at the
//!   very end (paper Section II: "a careful implementation reduces the
//!   amount of global reductions ... to a single one").
//! * `reduce_every_iteration = true` — the `aug_spmmv()*` variant with
//!   one global reduction per iteration.

use kpm_num::{BlockVector, Complex64, Vector};
use kpm_sparse::aug::{aug_spmmv_rect, spmmv_rect};
use kpm_sparse::CrsMatrix;
use kpm_topo::ScaleFactors;
use rand::rngs::StdRng;
use rand::SeedableRng;

use kpm_core::moments::MomentSet;
use kpm_core::solver::KpmParams;

use crate::decomp::{decompose, partition_rows, LocalProblem};
use crate::runtime::{Communicator, World};

/// Result of a distributed KPM run.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// The stochastically averaged Chebyshev moments (identical on all
    /// ranks; validated against the single-process solver).
    pub moments: MomentSet,
    /// Total halo payload bytes sent across all ranks and iterations.
    pub halo_bytes: u64,
    /// Number of global reductions performed.
    pub global_reductions: usize,
}

/// Runs the distributed blocked KPM over `weights.len()` ranks.
///
/// Starting vectors are generated exactly as in
/// [`kpm_core::solver::kpm_moments`], so for equal seeds the moments
/// must agree with the shared-memory stage-2 solver up to reduction
/// order.
pub fn distributed_kpm(
    h: &CrsMatrix,
    sf: ScaleFactors,
    params: &KpmParams,
    weights: &[f64],
    reduce_every_iteration: bool,
) -> DistReport {
    assert_eq!(h.nrows(), h.ncols(), "KPM needs a square matrix");
    let n = h.nrows();
    let r = params.num_random;
    let iters = params.iterations();

    // Identical starting vectors to the shared-memory solver.
    let mut rng = StdRng::seed_from_u64(params.seed);
    let starts: Vec<Vector> = (0..r)
        .map(|_| {
            let mut v = Vector::random(n, &mut rng);
            v.normalize();
            v
        })
        .collect();

    let ranges = partition_rows(n, weights, 4.min(n));
    let parts = decompose(h, &ranges);

    let results = World::run(parts.len(), |mut comm| {
        let local = &parts[comm.rank()];
        rank_main(&mut comm, local, sf, &starts, iters, reduce_every_iteration)
    });

    // All ranks return identical reduced data; take rank 0's.
    let (eta_flat, halo_sent, reductions) = results.into_iter().next().expect("rank 0 result");
    let halo_bytes: u64 = halo_sent;

    // Unflatten: [mu0[j], mu1[j]] ++ per-iteration [(even[j], odd[j])].
    let mut acc = MomentSet::zeros(params.num_moments);
    for j in 0..r {
        let mu0 = eta_flat[j].re;
        let mu1 = eta_flat[r + j].re;
        let mut eta = Vec::with_capacity(iters);
        for m in 0..iters {
            let base = 2 * r + m * 2 * r;
            let even = eta_flat[base + j].re;
            let odd = eta_flat[base + r + j];
            eta.push((even, odd));
        }
        acc.accumulate(&MomentSet::from_eta(mu0, mu1, &eta));
    }
    DistReport {
        moments: acc,
        halo_bytes,
        global_reductions: reductions,
    }
}

/// Per-rank worker: returns the globally reduced flat η array, the
/// all-rank total of halo bytes, and the reduction count.
fn rank_main(
    comm: &mut Communicator,
    local: &LocalProblem,
    sf: ScaleFactors,
    starts: &[Vector],
    iters: usize,
    reduce_every_iteration: bool,
) -> (Vec<Complex64>, u64, usize) {
    let r = starts.len();
    let n_local = local.n_local();
    let n_ext = local.matrix.ncols();
    let mut reductions = 0usize;
    let mut halo_sent = 0u64;

    // Halo slot offsets per recv-plan group (groups appear in ascending
    // owner order, matching the sorted halo layout).
    let mut slot_offsets = Vec::with_capacity(local.recv_plan.len());
    let mut off = n_local;
    for (_, rows) in &local.recv_plan {
        slot_offsets.push(off);
        off += rows.len();
    }
    debug_assert_eq!(off, n_ext);

    // V holds the current Chebyshev block on the extended index space;
    // W the previous/next one.
    let mut v = BlockVector::zeros(n_ext, r);
    let mut w = BlockVector::zeros(n_ext, r);
    for (j, s) in starts.iter().enumerate() {
        for i in 0..n_local {
            v.set(i, j, s[local.row_begin + i]);
        }
    }

    // --- Initialization: mu0, nu1 = H~ nu0, mu1 (local partials). ---
    let mut tag = 0u64;
    exchange_halo(comm, local, &mut v, &slot_offsets, &mut halo_sent, &mut tag);
    let mut mu0 = vec![Complex64::default(); r];
    for i in 0..n_local {
        let row = v.row(i);
        for j in 0..r {
            mu0[j] += Complex64::real(row[j].norm_sqr());
        }
    }
    spmmv_rect(&local.matrix, &v, &mut w);
    let mut mu1 = vec![Complex64::default(); r];
    for i in 0..n_local {
        // w <- a (w - b v) on local rows; mu1 += conj(w) v.
        #[allow(clippy::needless_range_loop)] // j indexes three aligned arrays
        for j in 0..r {
            let wi = (w.get(i, j) - v.get(i, j).scale(sf.b)).scale(sf.a);
            w.set(i, j, wi);
            mu1[j] = wi.conj().mul_add(v.get(i, j), mu1[j]);
        }
    }

    // Local eta storage: flat layout [mu0 | mu1 | iter0(even|odd) | ...].
    let mut eta_flat: Vec<Complex64> = Vec::with_capacity(2 * r + iters * 2 * r);
    eta_flat.extend_from_slice(&mu0);
    eta_flat.extend_from_slice(&mu1);

    // --- Chebyshev loop. ---
    for _m in 0..iters {
        v.swap(&mut w);
        exchange_halo(comm, local, &mut v, &slot_offsets, &mut halo_sent, &mut tag);
        let dots = aug_spmmv_rect(&local.matrix, sf.a, sf.b, &v, &mut w);
        if reduce_every_iteration {
            let mut pair: Vec<Complex64> = Vec::with_capacity(2 * r);
            pair.extend(dots.eta_even.iter().map(|&x| Complex64::real(x)));
            pair.extend_from_slice(&dots.eta_odd);
            let reduced = comm.allreduce_sum(&pair);
            reductions += 1;
            eta_flat.extend_from_slice(&reduced);
        } else {
            eta_flat.extend(dots.eta_even.iter().map(|&x| Complex64::real(x)));
            eta_flat.extend_from_slice(&dots.eta_odd);
        }
    }

    // --- Final reduction(s). ---
    let reduced = if reduce_every_iteration {
        // Only the init moments still need summing; the per-iteration
        // entries are already global.
        let head = comm.allreduce_sum(&eta_flat[..2 * r]);
        reductions += 1;
        let mut all = head;
        all.extend_from_slice(&eta_flat[2 * r..]);
        all
    } else {
        reductions += 1;
        comm.allreduce_sum(&eta_flat)
    };
    let halo_total = comm
        .allreduce_scalar(Complex64::real(halo_sent as f64))
        .re as u64;
    (reduced, halo_total, reductions)
}

/// One halo exchange of the current block `v`.
fn exchange_halo(
    comm: &mut Communicator,
    local: &LocalProblem,
    v: &mut BlockVector,
    slot_offsets: &[usize],
    halo_sent: &mut u64,
    tag: &mut u64,
) {
    let r = v.width();
    let t = *tag;
    *tag += 1;
    for (dst, rows) in &local.send_plan {
        let mut buf = Vec::with_capacity(rows.len() * r);
        for &lr in rows {
            buf.extend_from_slice(v.row(lr as usize));
        }
        *halo_sent += (buf.len() * 16) as u64;
        comm.send(*dst, t, buf);
    }
    for (g, (src, rows)) in local.recv_plan.iter().enumerate() {
        let buf = comm.recv(*src, t);
        assert_eq!(buf.len(), rows.len() * r, "halo payload size mismatch");
        let base = slot_offsets[g];
        for (i, chunk) in buf.chunks(r).enumerate() {
            v.row_mut(base + i).copy_from_slice(chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_core::solver::{kpm_moments, KpmVariant};
    use kpm_topo::model::random_hermitian;
    use kpm_topo::TopoHamiltonian;

    fn params(m: usize, r: usize) -> KpmParams {
        KpmParams {
            num_moments: m,
            num_random: r,
            seed: 777,
            parallel: false,
        }
    }

    #[test]
    fn two_ranks_match_shared_memory_solver() {
        let h = TopoHamiltonian::clean(4, 4, 3).assemble();
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(32, 4);
        let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv);
        let dist = distributed_kpm(&h, sf, &p, &[1.0, 1.0], false);
        assert!(
            reference.max_abs_diff(&dist.moments) < 1e-9,
            "diff = {}",
            reference.max_abs_diff(&dist.moments)
        );
        assert_eq!(dist.global_reductions, 1);
        assert!(dist.halo_bytes > 0);
    }

    #[test]
    fn weighted_heterogeneous_split_matches_too() {
        // CPU:GPU-like weights (1 : 2.3) over 3 ranks.
        let h = TopoHamiltonian::clean(4, 4, 2).assemble();
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(16, 2);
        let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv);
        let dist = distributed_kpm(&h, sf, &p, &[1.0, 2.3, 0.7], false);
        assert!(reference.max_abs_diff(&dist.moments) < 1e-9);
    }

    #[test]
    fn per_iteration_reduction_gives_identical_moments() {
        let h = random_hermitian(160, 3, 5);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(16, 3);
        let end = distributed_kpm(&h, sf, &p, &[1.0, 1.0], false);
        let every = distributed_kpm(&h, sf, &p, &[1.0, 1.0], true);
        assert!(end.moments.max_abs_diff(&every.moments) < 1e-10);
        // M/2 - 1 iterations + 1 init reduction.
        assert_eq!(every.global_reductions, p.iterations() + 1);
        assert_eq!(end.global_reductions, 1);
    }

    #[test]
    fn four_ranks_on_random_matrix() {
        let h = random_hermitian(240, 4, 9);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(24, 2);
        let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv);
        let dist = distributed_kpm(&h, sf, &p, &[1.0; 4], false);
        assert!(reference.max_abs_diff(&dist.moments) < 1e-9);
    }

    #[test]
    fn single_rank_needs_no_halo() {
        let h = random_hermitian(100, 3, 11);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(16, 2);
        let dist = distributed_kpm(&h, sf, &p, &[1.0], false);
        assert_eq!(dist.halo_bytes, 0);
        let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv);
        assert!(reference.max_abs_diff(&dist.moments) < 1e-9);
    }

    #[test]
    fn halo_traffic_grows_with_rank_count() {
        let h = TopoHamiltonian::clean(4, 4, 6).assemble();
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(16, 2);
        let two = distributed_kpm(&h, sf, &p, &[1.0; 2], false);
        let four = distributed_kpm(&h, sf, &p, &[1.0; 4], false);
        assert!(four.halo_bytes > two.halo_bytes);
    }
}
