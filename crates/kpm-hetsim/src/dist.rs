//! The distributed blocked KPM solver (functional layer).
//!
//! Executes optimization stage 2 (paper Fig. 5) across ranks: every rank
//! owns a weighted row block, exchanges halo rows of the current
//! Chebyshev block before each sweep, runs the local augmented SpMMV,
//! and contributes partial scalar products. Two reduction policies
//! reproduce the paper's Table III comparison:
//!
//! * `reduce_every_iteration = false` — the optimized scheme: partial η
//!   sums accumulate locally and a *single* global reduction runs at the
//!   very end (paper Section II: "a careful implementation reduces the
//!   amount of global reductions ... to a single one").
//! * `reduce_every_iteration = true` — the `aug_spmmv()*` variant with
//!   one global reduction per iteration.
//!
//! On top of the plain driver, [`distributed_kpm_resilient`] adds the
//! fault-tolerant execution mode: receive deadlines instead of hangs,
//! periodic checkpoints of `(m, ν_m, ν_{m+1}, η prefix)` through a
//! [`CheckpointStore`], and automatic restart from the newest consistent
//! checkpoint when a rank dies — either on the same rank count or
//! redistributing the rows over the survivors
//! ([`RestartStrategy::DropCrashed`]). Checkpoints store the *globally
//! reduced* η prefix, so a resumed run reproduces the uninterrupted
//! moments bit for bit.

use std::sync::Arc;
use std::time::Duration;

use kpm_num::{BlockVector, Complex64, KpmError, Vector};
use kpm_obs::{metrics, span::span};
use kpm_sparse::{CrsMatrix, FormatSpec, SparseKernels};
use kpm_topo::ScaleFactors;

use kpm_core::checkpoint::{latest_consistent, CheckpointStore, EtaCheckpoint, RankCheckpoint};
use kpm_core::moments::MomentSet;
use kpm_core::solver::{moments_from_flat_eta, starting_vectors, KpmParams};

use crate::decomp::{decompose_formatted, partition_rows, LocalProblem};
use crate::fault::FaultPlan;
use crate::runtime::{Communicator, RankTelemetry, World, WorldConfig};

/// Result of a distributed KPM run.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// The stochastically averaged Chebyshev moments (identical on all
    /// ranks; validated against the single-process solver).
    pub moments: MomentSet,
    /// Total halo payload bytes sent across all ranks and iterations.
    pub halo_bytes: u64,
    /// Number of global reductions performed.
    pub global_reductions: usize,
    /// Per-rank link/fault telemetry from the world that produced the
    /// moments (the final world, for resilient runs), sorted by rank.
    pub telemetry: Vec<RankTelemetry>,
}

/// Runs the distributed blocked KPM over `weights.len()` ranks.
///
/// Starting vectors are generated exactly as in
/// [`kpm_core::solver::kpm_moments`], so for equal seeds the moments
/// must agree with the shared-memory stage-2 solver up to reduction
/// order.
pub fn distributed_kpm(
    h: &CrsMatrix,
    sf: ScaleFactors,
    params: &KpmParams,
    weights: &[f64],
    reduce_every_iteration: bool,
) -> Result<DistReport, KpmError> {
    distributed_kpm_faulty(h, sf, params, weights, reduce_every_iteration, None)
}

/// [`distributed_kpm`] with an explicit local-matrix storage format.
///
/// Every rank converts its remapped row block to `format` before the
/// Chebyshev loop; since the SELL augmented kernels are bitwise
/// identical to their CRS counterparts, the moments are bitwise
/// identical to [`distributed_kpm`] for any valid `C`/`σ`.
pub fn distributed_kpm_formatted(
    h: &CrsMatrix,
    sf: ScaleFactors,
    params: &KpmParams,
    weights: &[f64],
    reduce_every_iteration: bool,
    format: &FormatSpec,
) -> Result<DistReport, KpmError> {
    distributed_kpm_faulty_formatted(h, sf, params, weights, reduce_every_iteration, None, format)
}

/// [`distributed_kpm`] with an optional fault plan attached — the entry
/// point the lossless-fault property tests drive (duplication and delay
/// must not change a single bit of the moments).
pub fn distributed_kpm_faulty(
    h: &CrsMatrix,
    sf: ScaleFactors,
    params: &KpmParams,
    weights: &[f64],
    reduce_every_iteration: bool,
    plan: Option<Arc<FaultPlan>>,
) -> Result<DistReport, KpmError> {
    distributed_kpm_faulty_formatted(
        h,
        sf,
        params,
        weights,
        reduce_every_iteration,
        plan,
        &FormatSpec::Crs,
    )
}

/// The fully general distributed driver: fault plan and local storage
/// format both explicit.
#[allow(clippy::too_many_arguments)]
pub fn distributed_kpm_faulty_formatted(
    h: &CrsMatrix,
    sf: ScaleFactors,
    params: &KpmParams,
    weights: &[f64],
    reduce_every_iteration: bool,
    plan: Option<Arc<FaultPlan>>,
    format: &FormatSpec,
) -> Result<DistReport, KpmError> {
    validate_inputs(h, params, weights)?;
    let n = h.nrows();
    let r = params.num_random;
    let iters = params.iterations();
    let starts = starting_vectors(n, params);

    let ranges = partition_rows(n, weights, 4.min(n));
    let parts = decompose_formatted(h, &ranges, format)?;

    let mut cfg = WorldConfig::new(parts.len());
    if let Some(p) = plan {
        // Injected faults may stall a link; bound every receive. Two
        // seconds dwarfs any injected delay but keeps lossy-plan tests
        // from hanging for long.
        cfg = cfg.with_faults(p).with_recv_timeout(Duration::from_secs(2));
    }
    let _sp = span("dist.run", "dist").arg("ranks", parts.len());
    let mut outcome = World::run_config(cfg, |mut comm| {
        let local = &parts[comm.rank()];
        rank_main(&mut comm, local, sf, &starts, iters, reduce_every_iteration)
    });
    let telemetry = std::mem::take(&mut outcome.telemetry);
    let results = outcome.into_results()?;

    // All ranks return identical reduced data; take rank 0's.
    let (eta_flat, halo_bytes, global_reductions) = results
        .into_iter()
        .next()
        .ok_or(KpmError::RankCrashed { rank: 0 })?;
    Ok(DistReport {
        moments: moments_from_flat_eta(&eta_flat, params.num_moments, r, iters),
        halo_bytes,
        global_reductions,
        telemetry,
    })
}

fn validate_inputs(h: &CrsMatrix, params: &KpmParams, weights: &[f64]) -> Result<(), KpmError> {
    if h.nrows() != h.ncols() {
        return Err(KpmError::InvalidMatrix {
            what: "shape",
            details: format!(
                "KPM needs a square matrix (got {} x {})",
                h.nrows(),
                h.ncols()
            ),
        });
    }
    params.validate()?;
    // NaN weights must fail too, hence the negated comparison.
    if weights.is_empty() || !weights.iter().all(|w| *w > 0.0) {
        return Err(KpmError::InvalidParams {
            what: "weights",
            details: format!("weights must be a non-empty positive list (got {weights:?})"),
        });
    }
    Ok(())
}

/// Per-rank worker: returns the globally reduced flat η array, the
/// all-rank total of halo bytes, and the reduction count.
fn rank_main(
    comm: &mut Communicator,
    local: &LocalProblem,
    sf: ScaleFactors,
    starts: &[Vector],
    iters: usize,
    reduce_every_iteration: bool,
) -> Result<(Vec<Complex64>, u64, usize), KpmError> {
    let r = starts.len();
    let mut reductions = 0usize;
    let mut halo_sent = 0u64;

    let slot_offsets = halo_slot_offsets(local);
    let (mut v, mut w, mut eta_flat) = init_rank_state(
        comm,
        local,
        sf,
        starts,
        &slot_offsets,
        &mut halo_sent,
        iters,
    )?;

    // --- Chebyshev loop. ---
    for m in 0..iters {
        v.swap(&mut w);
        exchange_halo(
            comm,
            local,
            &mut v,
            &slot_offsets,
            &mut halo_sent,
            m as u64 + 1,
        )?;
        let dots = local.matrix.aug_spmmv_rect(sf.a, sf.b, &v, &mut w);
        if reduce_every_iteration {
            let mut pair: Vec<Complex64> = Vec::with_capacity(2 * r);
            pair.extend(dots.eta_even.iter().map(|&x| Complex64::real(x)));
            pair.extend_from_slice(&dots.eta_odd);
            let reduced = comm.allreduce_sum(&pair)?;
            reductions += 1;
            check_reduced_partials(m, &reduced, &eta_flat, r)?;
            eta_flat.extend_from_slice(&reduced);
        } else {
            eta_flat.extend(dots.eta_even.iter().map(|&x| Complex64::real(x)));
            eta_flat.extend_from_slice(&dots.eta_odd);
        }
    }

    // --- Final reduction(s). ---
    let reduced = if reduce_every_iteration {
        // Only the init moments still need summing; the per-iteration
        // entries are already global.
        let head = comm.allreduce_sum(&eta_flat[..2 * r])?;
        reductions += 1;
        let mut all = head;
        all.extend_from_slice(&eta_flat[2 * r..]);
        all
    } else {
        reductions += 1;
        comm.allreduce_sum(&eta_flat)?
    };
    let halo_total = comm.allreduce_scalar(Complex64::real(halo_sent as f64))?.re as u64;
    Ok((reduced, halo_total, reductions))
}

/// Halo slot offsets per recv-plan group (groups appear in ascending
/// owner order, matching the sorted halo layout).
fn halo_slot_offsets(local: &LocalProblem) -> Vec<usize> {
    let mut slot_offsets = Vec::with_capacity(local.recv_plan.len());
    let mut off = local.n_local();
    for (_, rows) in &local.recv_plan {
        slot_offsets.push(off);
        off += rows.len();
    }
    debug_assert_eq!(off, local.matrix.ncols());
    slot_offsets
}

/// Fresh-start initialization shared by the plain and resilient rank
/// workers: loads the start columns, exchanges the initial halo (tag 0),
/// computes the local `µ0`/`µ1` partials, and returns
/// `(ν0-block, ν1-block, η-flat prefix)` on the extended index space.
fn init_rank_state(
    comm: &mut Communicator,
    local: &LocalProblem,
    sf: ScaleFactors,
    starts: &[Vector],
    slot_offsets: &[usize],
    halo_sent: &mut u64,
    iters: usize,
) -> Result<(BlockVector, BlockVector, Vec<Complex64>), KpmError> {
    let r = starts.len();
    let n_local = local.n_local();
    let n_ext = local.matrix.ncols();

    // V holds the current Chebyshev block on the extended index space;
    // W the previous/next one.
    let mut v = BlockVector::zeros(n_ext, r);
    let mut w = BlockVector::zeros(n_ext, r);
    for (j, s) in starts.iter().enumerate() {
        for i in 0..n_local {
            v.set(i, j, s[local.row_begin + i]);
        }
    }

    // --- Initialization: mu0, nu1 = H~ nu0, mu1 (local partials). ---
    exchange_halo(comm, local, &mut v, slot_offsets, halo_sent, 0)?;
    let mut mu0 = vec![Complex64::default(); r];
    for i in 0..n_local {
        let row = v.row(i);
        for j in 0..r {
            mu0[j] += Complex64::real(row[j].norm_sqr());
        }
    }
    local.matrix.spmmv_rect(&v, &mut w);
    let mut mu1 = vec![Complex64::default(); r];
    for i in 0..n_local {
        // w <- a (w - b v) on local rows; mu1 += conj(w) v.
        #[allow(clippy::needless_range_loop)] // j indexes three aligned arrays
        for j in 0..r {
            let wi = (w.get(i, j) - v.get(i, j).scale(sf.b)).scale(sf.a);
            w.set(i, j, wi);
            mu1[j] = wi.conj().mul_add(v.get(i, j), mu1[j]);
        }
    }

    // Local eta storage: flat layout [mu0 | mu1 | iter0(even|odd) | ...].
    let mut eta_flat: Vec<Complex64> = Vec::with_capacity(2 * r + iters * 2 * r);
    eta_flat.extend_from_slice(&mu0);
    eta_flat.extend_from_slice(&mu1);
    Ok((v, w, eta_flat))
}

/// Guardrail on globally reduced per-iteration partials (only global
/// values are meaningful to test — a local partial is just one rank's
/// share). `prefix` carries the reduced `µ0` in its first `r` slots when
/// reductions run per iteration.
fn check_reduced_partials(
    iteration: usize,
    reduced: &[Complex64],
    prefix: &[Complex64],
    r: usize,
) -> Result<(), KpmError> {
    for j in 0..r {
        let even = reduced[j].re;
        let odd = reduced[r + j];
        if !even.is_finite() {
            return Err(KpmError::NonFinite {
                context: "eta_even",
                iteration,
            });
        }
        if !odd.is_finite() {
            return Err(KpmError::NonFinite {
                context: "eta_odd",
                iteration,
            });
        }
        let bound = 1e3 * prefix[j].re.max(1.0);
        if even > bound {
            return Err(KpmError::SpectralBoundsViolated {
                iteration,
                value: even,
                bound,
            });
        }
    }
    Ok(())
}

/// One halo exchange of the current block `v` under `tag`.
fn exchange_halo(
    comm: &mut Communicator,
    local: &LocalProblem,
    v: &mut BlockVector,
    slot_offsets: &[usize],
    halo_sent: &mut u64,
    tag: u64,
) -> Result<(), KpmError> {
    let r = v.width();
    for (dst, rows) in &local.send_plan {
        let mut buf = Vec::with_capacity(rows.len() * r);
        for &lr in rows {
            buf.extend_from_slice(v.row(lr as usize));
        }
        *halo_sent += (buf.len() * 16) as u64;
        comm.send(*dst, tag, buf)?;
    }
    for (g, (src, rows)) in local.recv_plan.iter().enumerate() {
        let buf = comm.recv(*src, tag)?;
        if buf.len() != rows.len() * r {
            return Err(KpmError::InvalidParams {
                what: "halo payload",
                details: format!(
                    "rank {} got {} halo values from {src}, expected {}",
                    comm.rank(),
                    buf.len(),
                    rows.len() * r
                ),
            });
        }
        let base = slot_offsets[g];
        for (i, chunk) in buf.chunks(r).enumerate() {
            v.row_mut(base + i).copy_from_slice(chunk);
        }
    }
    Ok(())
}

// --- Resilient driver ------------------------------------------------

/// How to rebuild the world after a rank dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartStrategy {
    /// Re-run on the same rank count (the crashed "node" comes back).
    SameRanks,
    /// Drop crashed ranks and redistribute their rows over the
    /// survivors, reusing the weighted splitter.
    DropCrashed,
}

/// Policy knobs of [`distributed_kpm_resilient`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Sweeps between checkpoints (≥ 1).
    pub checkpoint_interval: usize,
    /// Receive deadline; a silent peer is declared lost after this.
    pub recv_timeout: Duration,
    /// How many restarts to attempt before giving up.
    pub max_restarts: usize,
    /// What to do with the ranks of a crashed attempt.
    pub restart: RestartStrategy,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            checkpoint_interval: 4,
            recv_timeout: Duration::from_secs(2),
            max_restarts: 2,
            restart: RestartStrategy::SameRanks,
        }
    }
}

/// Outcome of a resilient run.
#[derive(Debug, Clone)]
pub struct ResilientReport {
    /// The final moments and traffic accounting (halo bytes count only
    /// work actually performed, including lost pre-crash progress).
    pub report: DistReport,
    /// Restarts that were needed (0 = clean run).
    pub restarts: usize,
    /// The checkpoint iteration each restart resumed from.
    pub resumed_from: Vec<usize>,
    /// Ranks in the final (successful) world.
    pub final_ranks: usize,
}

/// Restored per-rank state handed into a resumed world.
struct ResumeState {
    start_iter: usize,
    /// Per new rank: local rows of ν_m / ν_{m+1}, row-major interleaved.
    v_slices: Vec<Vec<Complex64>>,
    w_slices: Vec<Vec<Complex64>>,
    /// Globally reduced η prefix (rank 0 seeds this; others run zeros so
    /// the final reduction counts it exactly once).
    eta_prefix: Vec<Complex64>,
    /// Halo bytes already spent before the restart.
    halo_restored: u64,
}

/// The distributed stage-2 solver with checkpoint/restart and receive
/// deadlines. Uses the single-final-reduction scheme (plus one reduction
/// per checkpoint). On success the moments are bitwise identical to the
/// fault-free [`distributed_kpm`] run with the same parameters.
pub fn distributed_kpm_resilient(
    h: &CrsMatrix,
    sf: ScaleFactors,
    params: &KpmParams,
    weights: &[f64],
    plan: Option<Arc<FaultPlan>>,
    cfg: &ResilienceConfig,
    store: &dyn CheckpointStore,
) -> Result<ResilientReport, KpmError> {
    distributed_kpm_resilient_formatted(h, sf, params, weights, plan, cfg, store, &FormatSpec::Crs)
}

/// [`distributed_kpm_resilient`] with an explicit local storage format.
/// Checkpoints store the format-independent recurrence vectors, so a
/// restart may even change the format without changing the moments.
#[allow(clippy::too_many_arguments)]
pub fn distributed_kpm_resilient_formatted(
    h: &CrsMatrix,
    sf: ScaleFactors,
    params: &KpmParams,
    weights: &[f64],
    plan: Option<Arc<FaultPlan>>,
    cfg: &ResilienceConfig,
    store: &dyn CheckpointStore,
    format: &FormatSpec,
) -> Result<ResilientReport, KpmError> {
    validate_inputs(h, params, weights)?;
    if cfg.checkpoint_interval == 0 {
        return Err(KpmError::InvalidParams {
            what: "checkpoint_interval",
            details: "checkpoint interval must be >= 1 sweeps".to_string(),
        });
    }
    let n = h.nrows();
    let r = params.num_random;
    let iters = params.iterations();
    let starts = starting_vectors(n, params);

    let mut weights_now: Vec<f64> = weights.to_vec();
    let mut restarts = 0usize;
    let mut resumed_from: Vec<usize> = Vec::new();

    loop {
        // Restart attempts get their own span so a recovered run shows
        // exactly one `dist.restart` per world rebuild in the trace.
        let _attempt_sp = if restarts > 0 {
            Some(span("dist.restart", "dist").arg("attempt", restarts))
        } else {
            None
        };
        let ranges = partition_rows(n, &weights_now, 4.min(n));
        let parts = decompose_formatted(h, &ranges, format)?;
        let size = parts.len();

        // Restore from the newest consistent checkpoint, reslicing the
        // global recurrence state onto the current decomposition.
        let resume = match latest_consistent(store, n)? {
            Some(it) => Some(load_resume_state(store, it, n, r, &ranges)?),
            None => None,
        };
        if let Some(s) = &resume {
            if restarts > 0 {
                resumed_from.push(s.start_iter);
            }
        } else if restarts > 0 {
            resumed_from.push(0);
        }

        let mut wcfg = WorldConfig::new(size).with_recv_timeout(cfg.recv_timeout);
        if let Some(p) = &plan {
            wcfg = wcfg.with_faults(Arc::clone(p));
        }
        let resume_ref = resume.as_ref();
        let mut outcome = World::run_config(wcfg, |mut comm| {
            let rank = comm.rank();
            rank_resilient(
                &mut comm,
                &parts[rank],
                sf,
                &starts,
                iters,
                resume_ref,
                store,
                cfg.checkpoint_interval,
            )
        });

        if outcome.all_ok() {
            let telemetry = std::mem::take(&mut outcome.telemetry);
            let results = outcome.into_results()?;
            let (eta_flat, halo_bytes, global_reductions) = results
                .into_iter()
                .next()
                .ok_or(KpmError::RankCrashed { rank: 0 })?;
            return Ok(ResilientReport {
                report: DistReport {
                    moments: moments_from_flat_eta(&eta_flat, params.num_moments, r, iters),
                    halo_bytes,
                    global_reductions,
                    telemetry,
                },
                restarts,
                resumed_from,
                final_ranks: size,
            });
        }

        // Something died. Budget check, then rebuild the world.
        restarts += 1;
        metrics::counter_inc("dist.restarts");
        if restarts > cfg.max_restarts {
            let last = outcome
                .results
                .iter()
                .find_map(|res| res.as_ref().err())
                .map(|e| e.to_string())
                .unwrap_or_else(|| "unknown".to_string());
            return Err(KpmError::RestartsExhausted {
                attempts: restarts,
                last_error: last,
            });
        }
        if cfg.restart == RestartStrategy::DropCrashed {
            let crashed: Vec<usize> = outcome
                .results
                .iter()
                .enumerate()
                .filter(|(rank, res)| {
                    matches!(res, Err(KpmError::RankCrashed { rank: r2 }) if r2 == rank)
                })
                .map(|(rank, _)| rank)
                .collect();
            if crashed.len() == weights_now.len() {
                return Err(KpmError::RestartsExhausted {
                    attempts: restarts,
                    last_error: "every rank crashed; no survivors to restart on".to_string(),
                });
            }
            if !crashed.is_empty() {
                weights_now = weights_now
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !crashed.contains(i))
                    .map(|(_, w)| *w)
                    .collect();
            }
        }
    }
}

/// Reassembles the global recurrence state at checkpoint `it` from the
/// per-rank records of the *old* decomposition, then slices it for the
/// `ranges` of the new one.
fn load_resume_state(
    store: &dyn CheckpointStore,
    it: usize,
    n: usize,
    r: usize,
    ranges: &[(usize, usize)],
) -> Result<ResumeState, KpmError> {
    let eta = store
        .load_eta(it)?
        .ok_or_else(|| KpmError::CheckpointMissing {
            details: format!("eta record at iteration {it}"),
        })?;
    if eta.width != r || eta.eta.len() != EtaCheckpoint::expected_len(it, r) {
        return Err(KpmError::CheckpointCorrupt {
            details: "eta checkpoint geometry does not match this run".to_string(),
        });
    }

    let mut v_global = vec![Complex64::default(); n * r];
    let mut w_global = vec![Complex64::default(); n * r];
    let mut halo_restored = 0u64;
    for rank in store.ranks_at(it)? {
        let ck = store
            .load_rank(it, rank)?
            .ok_or_else(|| KpmError::CheckpointMissing {
                details: format!("rank {rank} record at iteration {it}"),
            })?;
        if ck.width != r || ck.row_end > n {
            return Err(KpmError::CheckpointCorrupt {
                details: "rank checkpoint geometry does not match this run".to_string(),
            });
        }
        let base = ck.row_begin * r;
        v_global[base..base + ck.v.len()].copy_from_slice(&ck.v);
        w_global[base..base + ck.w.len()].copy_from_slice(&ck.w);
        halo_restored += ck.halo_sent;
    }

    let slice = |global: &[Complex64], (b, e): (usize, usize)| global[b * r..e * r].to_vec();
    Ok(ResumeState {
        start_iter: it,
        v_slices: ranges.iter().map(|&rg| slice(&v_global, rg)).collect(),
        w_slices: ranges.iter().map(|&rg| slice(&w_global, rg)).collect(),
        eta_prefix: eta.eta,
        halo_restored,
    })
}

/// The resilient per-rank worker: consults the crash schedule at every
/// iteration boundary, checkpoints every `interval` sweeps, and seeds
/// its state from `resume` when restarting.
#[allow(clippy::too_many_arguments)]
fn rank_resilient(
    comm: &mut Communicator,
    local: &LocalProblem,
    sf: ScaleFactors,
    starts: &[Vector],
    iters: usize,
    resume: Option<&ResumeState>,
    store: &dyn CheckpointStore,
    interval: usize,
) -> Result<(Vec<Complex64>, u64, usize), KpmError> {
    let r = starts.len();
    let rank = comm.rank();
    let n_local = local.n_local();
    let n_ext = local.matrix.ncols();
    let mut reductions = 0usize;
    let mut halo_sent = 0u64;
    let slot_offsets = halo_slot_offsets(local);

    let (mut v, mut w, mut eta_flat, start_iter) = match resume {
        Some(state) => {
            // Restore local rows; halo slots refresh at the next
            // exchange. Rank 0 carries the reduced prefix (and the
            // pre-crash halo accounting); everyone else runs zeros so
            // the final reduction counts each exactly once.
            let mut v = BlockVector::zeros(n_ext, r);
            let mut w = BlockVector::zeros(n_ext, r);
            for i in 0..n_local {
                v.row_mut(i)
                    .copy_from_slice(&state.v_slices[rank][i * r..(i + 1) * r]);
                w.row_mut(i)
                    .copy_from_slice(&state.w_slices[rank][i * r..(i + 1) * r]);
            }
            let eta_flat = if rank == 0 {
                halo_sent = state.halo_restored;
                state.eta_prefix.clone()
            } else {
                vec![Complex64::default(); state.eta_prefix.len()]
            };
            (v, w, eta_flat, state.start_iter)
        }
        None => {
            comm.crash_point(0)?;
            let (v, w, eta_flat) = init_rank_state(
                comm,
                local,
                sf,
                starts,
                &slot_offsets,
                &mut halo_sent,
                iters,
            )?;
            (v, w, eta_flat, 0)
        }
    };

    for m in start_iter..iters {
        comm.crash_point(m)?;
        v.swap(&mut w);
        exchange_halo(
            comm,
            local,
            &mut v,
            &slot_offsets,
            &mut halo_sent,
            m as u64 + 1,
        )?;
        let dots = local.matrix.aug_spmmv_rect(sf.a, sf.b, &v, &mut w);
        eta_flat.extend(dots.eta_even.iter().map(|&x| Complex64::real(x)));
        eta_flat.extend_from_slice(&dots.eta_odd);

        let done = m + 1;
        if done.is_multiple_of(interval) && done < iters {
            // Checkpoint: one extra global reduction gives every rank
            // the reduced prefix; rank 0 persists it, every rank
            // persists its local recurrence state.
            let reduced = comm.allreduce_sum(&eta_flat)?;
            reductions += 1;
            check_reduced_partials(m, &reduced[2 * r + m * 2 * r..], &reduced, r)?;
            store.save_rank(&RankCheckpoint {
                iteration: done,
                rank,
                row_begin: local.row_begin,
                row_end: local.row_end,
                width: r,
                halo_sent,
                v: interleave_local_rows(&v, n_local),
                w: interleave_local_rows(&w, n_local),
            })?;
            if rank == 0 {
                store.save_eta(&EtaCheckpoint {
                    iteration: done,
                    width: r,
                    eta: reduced,
                })?;
            }
        }
    }

    let reduced = comm.allreduce_sum(&eta_flat)?;
    reductions += 1;
    let halo_total = comm.allreduce_scalar(Complex64::real(halo_sent as f64))?.re as u64;
    Ok((reduced, halo_total, reductions))
}

fn interleave_local_rows(b: &BlockVector, n_local: usize) -> Vec<Complex64> {
    let r = b.width();
    let mut out = Vec::with_capacity(n_local * r);
    for i in 0..n_local {
        out.extend_from_slice(b.row(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_core::checkpoint::MemoryCheckpointStore;
    use kpm_core::solver::{kpm_moments, KpmVariant};
    use kpm_topo::model::random_hermitian;
    use kpm_topo::TopoHamiltonian;

    fn params(m: usize, r: usize) -> KpmParams {
        KpmParams {
            num_moments: m,
            num_random: r,
            seed: 777,
            parallel: false,
            threads: 0,
            power: 1,
            first_touch: false,
        }
    }

    #[test]
    fn two_ranks_match_shared_memory_solver() {
        let h = TopoHamiltonian::clean(4, 4, 3).assemble();
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(32, 4);
        let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        let dist = distributed_kpm(&h, sf, &p, &[1.0, 1.0], false).unwrap();
        assert!(
            reference.max_abs_diff(&dist.moments) < 1e-9,
            "diff = {}",
            reference.max_abs_diff(&dist.moments)
        );
        assert_eq!(dist.global_reductions, 1);
        assert!(dist.halo_bytes > 0);
    }

    #[test]
    fn weighted_heterogeneous_split_matches_too() {
        // CPU:GPU-like weights (1 : 2.3) over 3 ranks.
        let h = TopoHamiltonian::clean(4, 4, 2).assemble();
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(16, 2);
        let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        let dist = distributed_kpm(&h, sf, &p, &[1.0, 2.3, 0.7], false).unwrap();
        assert!(reference.max_abs_diff(&dist.moments) < 1e-9);
    }

    #[test]
    fn per_iteration_reduction_gives_identical_moments() {
        let h = random_hermitian(160, 3, 5);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(16, 3);
        let end = distributed_kpm(&h, sf, &p, &[1.0, 1.0], false).unwrap();
        let every = distributed_kpm(&h, sf, &p, &[1.0, 1.0], true).unwrap();
        assert!(end.moments.max_abs_diff(&every.moments) < 1e-10);
        // M/2 - 1 iterations + 1 init reduction.
        assert_eq!(every.global_reductions, p.iterations() + 1);
        assert_eq!(end.global_reductions, 1);
    }

    #[test]
    fn four_ranks_on_random_matrix() {
        let h = random_hermitian(240, 4, 9);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(24, 2);
        let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        let dist = distributed_kpm(&h, sf, &p, &[1.0; 4], false).unwrap();
        assert!(reference.max_abs_diff(&dist.moments) < 1e-9);
    }

    #[test]
    fn single_rank_needs_no_halo() {
        let h = random_hermitian(100, 3, 11);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(16, 2);
        let dist = distributed_kpm(&h, sf, &p, &[1.0], false).unwrap();
        assert_eq!(dist.halo_bytes, 0);
        let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        assert!(reference.max_abs_diff(&dist.moments) < 1e-9);
    }

    #[test]
    fn halo_traffic_grows_with_rank_count() {
        let h = TopoHamiltonian::clean(4, 4, 6).assemble();
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(16, 2);
        let two = distributed_kpm(&h, sf, &p, &[1.0; 2], false).unwrap();
        let four = distributed_kpm(&h, sf, &p, &[1.0; 4], false).unwrap();
        assert!(four.halo_bytes > two.halo_bytes);
    }

    #[test]
    fn sell_local_format_is_bitwise_identical_to_crs() {
        let h = random_hermitian(200, 4, 7);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(24, 3);
        let crs = distributed_kpm(&h, sf, &p, &[1.0, 1.7, 0.9], false).unwrap();
        for (c, sigma) in [(4usize, 16usize), (8, 8), (32, 32)] {
            let spec = FormatSpec::Sell {
                chunk_height: c,
                sigma,
            };
            let sell =
                distributed_kpm_formatted(&h, sf, &p, &[1.0, 1.7, 0.9], false, &spec).unwrap();
            assert_eq!(
                crs.moments.as_slice(),
                sell.moments.as_slice(),
                "SELL-{c}-{sigma} distributed moments diverged from CRS"
            );
            assert_eq!(crs.halo_bytes, sell.halo_bytes);
        }
    }

    #[test]
    fn resilient_sell_recovery_matches_reference() {
        let h = random_hermitian(160, 4, 19);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(32, 2);
        let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        let plan = Arc::new(FaultPlan::new(5).with_rank_crash(1, 6));
        let store = MemoryCheckpointStore::new();
        let cfg = ResilienceConfig {
            checkpoint_interval: 3,
            recv_timeout: Duration::from_millis(500),
            max_restarts: 2,
            restart: RestartStrategy::SameRanks,
        };
        let spec = FormatSpec::Sell {
            chunk_height: 8,
            sigma: 16,
        };
        let res = distributed_kpm_resilient_formatted(
            &h,
            sf,
            &p,
            &[1.0, 1.0],
            Some(plan),
            &cfg,
            &store,
            &spec,
        )
        .unwrap();
        assert_eq!(res.restarts, 1);
        let diff = reference.max_abs_diff(&res.report.moments);
        assert!(diff < 1e-10, "recovered SELL moments diverged: {diff}");
    }

    #[test]
    fn resilient_clean_run_matches_plain_distributed() {
        let h = random_hermitian(200, 4, 13);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(24, 3);
        let plain = distributed_kpm(&h, sf, &p, &[1.0, 1.0], false).unwrap();
        let store = MemoryCheckpointStore::new();
        let res = distributed_kpm_resilient(
            &h,
            sf,
            &p,
            &[1.0, 1.0],
            None,
            &ResilienceConfig::default(),
            &store,
        )
        .unwrap();
        assert_eq!(res.restarts, 0);
        assert_eq!(
            plain.moments.as_slice(),
            res.report.moments.as_slice(),
            "checkpoint reductions changed the moments"
        );
    }

    #[test]
    fn crash_mid_run_recovers_from_checkpoint_same_ranks() {
        let h = random_hermitian(160, 4, 21);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(40, 2); // 19 sweeps
        let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        let crash_at = p.iterations() / 2;
        let plan = Arc::new(FaultPlan::new(3).with_rank_crash(1, crash_at));
        let store = MemoryCheckpointStore::new();
        let cfg = ResilienceConfig {
            checkpoint_interval: 3,
            recv_timeout: Duration::from_millis(500),
            max_restarts: 2,
            restart: RestartStrategy::SameRanks,
        };
        let res = distributed_kpm_resilient(&h, sf, &p, &[1.0, 1.0, 1.0], Some(plan), &cfg, &store)
            .unwrap();
        assert_eq!(res.restarts, 1);
        assert_eq!(res.final_ranks, 3);
        assert_eq!(res.resumed_from.len(), 1);
        assert!(res.resumed_from[0] <= crash_at, "resumed past the crash");
        let diff = reference.max_abs_diff(&res.report.moments);
        assert!(diff < 1e-10, "recovered moments diverged: {diff}");
    }

    #[test]
    fn crash_recovers_by_redistributing_over_survivors() {
        let h = random_hermitian(240, 4, 31);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(32, 2); // 15 sweeps
        let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        let plan = Arc::new(FaultPlan::new(9).with_rank_crash(2, 8));
        let store = MemoryCheckpointStore::new();
        let cfg = ResilienceConfig {
            checkpoint_interval: 4,
            recv_timeout: Duration::from_millis(500),
            max_restarts: 2,
            restart: RestartStrategy::DropCrashed,
        };
        let res = distributed_kpm_resilient(&h, sf, &p, &[1.0, 1.0, 1.0], Some(plan), &cfg, &store)
            .unwrap();
        assert_eq!(res.restarts, 1);
        assert_eq!(res.final_ranks, 2, "crashed rank was not dropped");
        let diff = reference.max_abs_diff(&res.report.moments);
        assert!(diff < 1e-10, "redistributed moments diverged: {diff}");
    }

    #[test]
    fn unrecoverable_crash_exhausts_restart_budget() {
        let h = random_hermitian(80, 3, 41);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let p = params(16, 1);
        // Crash rank 0 on every attempt: three separate one-shot specs.
        let plan = Arc::new(
            FaultPlan::new(1)
                .with_rank_crash(0, 2)
                .with_rank_crash(0, 0)
                .with_rank_crash(0, 0),
        );
        let store = MemoryCheckpointStore::new();
        let cfg = ResilienceConfig {
            checkpoint_interval: 2,
            recv_timeout: Duration::from_millis(200),
            max_restarts: 2,
            restart: RestartStrategy::SameRanks,
        };
        let err = distributed_kpm_resilient(&h, sf, &p, &[1.0, 1.0], Some(plan), &cfg, &store)
            .expect_err("three crashes must exhaust two restarts");
        assert!(
            matches!(err, KpmError::RestartsExhausted { attempts: 3, .. }),
            "{err:?}"
        );
    }
}
