//! Cluster-scale performance model: Piz Daint (paper Fig. 12, Table III).
//!
//! Models the heterogeneous Cray XC30: one SNB socket + one K20X per
//! node, 2-D domain decomposition over the lattice's x/y extents, Aries
//! network halo exchange, PCIe staging for the GPU's share, and the
//! global-reduction synchronization cost that separates `aug_spmmv()`
//! from `aug_spmmv()*` in Table III.
//!
//! Calibrated constants and what they stand for:
//! * `net_bw_gbs` — sustained per-node halo-exchange bandwidth on the
//!   Aries dragonfly (well below the link peak once all nodes exchange
//!   simultaneously),
//! * `sync_per_hop_s` — per-tree-level cost of a global reduction
//!   *including* the load-imbalance/OS-noise straggler delay a global
//!   synchronization surfaces; calibrated so removing the per-iteration
//!   reduction buys the paper's 8% at 1024 nodes.

use kpm_num::KpmError;
use kpm_perfmodel::machine::{Machine, SNB};
use kpm_simgpu::GpuDevice;
use kpm_sparse::CrsMatrix;

use crate::node::{node_performance, Stage};

/// An `Nx × Ny × Nz` lattice domain (matrix dimension `4·Nx·Ny·Nz`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domain {
    /// Extent in x.
    pub nx: usize,
    /// Extent in y.
    pub ny: usize,
    /// Extent in z.
    pub nz: usize,
}

impl Domain {
    /// Matrix rows.
    pub fn rows(&self) -> u64 {
        4 * self.nx as u64 * self.ny as u64 * self.nz as u64
    }
}

/// One point of a scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Number of heterogeneous nodes.
    pub nodes: usize,
    /// Global domain at this point.
    pub domain: Domain,
    /// Aggregate sustained performance in Tflop/s.
    pub tflops: f64,
    /// Parallel efficiency relative to the curve's first point.
    pub efficiency: f64,
}

/// One row of paper Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Solver version.
    pub version: &'static str,
    /// Sustained aggregate performance in Tflop/s.
    pub tflops: f64,
    /// Node count used.
    pub nodes: usize,
    /// Node hours to finish the R = 32, M = 2000 solve of the largest
    /// system.
    pub node_hours: f64,
}

/// The modelled machine.
#[derive(Debug, Clone, Copy)]
pub struct ClusterModel {
    /// CPU socket per node.
    pub cpu: Machine,
    /// GPU per node.
    pub gpu: GpuDevice,
    /// Block width of the stage-2 solver.
    pub r: usize,
    /// CPU excess-traffic factor.
    pub omega: f64,
    /// Sustained per-node halo bandwidth (GB/s).
    pub net_bw_gbs: f64,
    /// Per-message network latency (s).
    pub net_latency_s: f64,
    /// PCIe staging bandwidth (GB/s).
    pub pcie_bw_gbs: f64,
    /// Fraction of the node's rows owned by the GPU process.
    pub gpu_share: f64,
    /// Per-tree-level global-reduction cost (s).
    pub sync_per_hop_s: f64,
    /// Overlap communication with computation (the GPU-CPU-MPI pipeline
    /// named as a "promising optimization" in paper Section VII).
    pub pipelined: bool,
    /// Heterogeneous node performance per stage (Gflop/s), precomputed.
    node_stage1_gflops: f64,
    node_stage2_gflops: f64,
}

impl ClusterModel {
    /// The Piz Daint model (SNB + K20X per node), with node rates
    /// derived from `bench` (a matrix with the workload's 13 nnz/row).
    pub fn piz_daint(bench: &CrsMatrix, r: usize) -> Self {
        let omega = 1.3;
        let gpu = GpuDevice::k20x();
        let s1 = node_performance(&SNB, &gpu, Stage::Stage1, r, bench, omega);
        let s2 = node_performance(&SNB, &gpu, Stage::Stage2, r, bench, omega);
        Self {
            cpu: SNB,
            gpu,
            r,
            omega,
            net_bw_gbs: 5.0,
            net_latency_s: 1.5e-6,
            pcie_bw_gbs: 6.0,
            gpu_share: s2.gpu_gflops / (s2.gpu_gflops + s2.cpu_gflops),
            sync_per_hop_s: 2.0e-3,
            pipelined: false,
            node_stage1_gflops: s1.het_gflops,
            node_stage2_gflops: s2.het_gflops,
        }
    }

    /// Enables the communication pipeline of the paper's outlook:
    /// halo download/upload and network transfer proceed in chunks
    /// concurrently with the local sweep, so only the non-overlappable
    /// remainder is exposed.
    pub fn with_pipelining(mut self) -> Self {
        self.pipelined = true;
        self
    }

    /// Heterogeneous per-node rate of a stage, compute + PCIe only.
    ///
    /// The cluster model is defined only for the optimized stages; a
    /// silent fallback rate for the naive BLAS-1 chain would skew every
    /// projection, so asking for it is a typed error.
    pub fn node_gflops(&self, stage: Stage) -> Result<f64, KpmError> {
        match stage {
            Stage::Stage1 => Ok(self.node_stage1_gflops),
            Stage::Stage2 => Ok(self.node_stage2_gflops),
            Stage::Naive => Err(KpmError::Unsupported {
                what: "cluster stage",
                details: "cluster projections are defined only for the optimized \
                          stages (aug_spmv/aug_spmmv); the naive chain is never \
                          run at cluster scale"
                    .into(),
            }),
        }
    }

    /// Flops of one blocked sweep on one node's share of `domain` split
    /// over a `px × py` grid.
    fn flops_per_node_sweep(&self, domain: Domain, px: usize, py: usize) -> f64 {
        let local_rows = domain.rows() as f64 / (px * py) as f64;
        self.r as f64 * local_rows * (13.0 * 8.0 + 34.0)
    }

    /// One iteration's wall time on `nodes = px·py` nodes.
    ///
    /// `reduce_every_iteration` charges the global-reduction
    /// synchronization each sweep (the `aug_spmmv()*` of Table III).
    pub fn iteration_time(
        &self,
        domain: Domain,
        px: usize,
        py: usize,
        stage: Stage,
        reduce_every_iteration: bool,
    ) -> Result<f64, KpmError> {
        let nodes = px * py;
        let flops = self.flops_per_node_sweep(domain, px, py);
        let t_comp = flops / (self.node_gflops(stage)? * 1e9);

        // Network halo: 2 faces per decomposed direction. A face in x
        // carries (Ny_loc · Nz) lattice sites, 4 rows each, R wide,
        // 16 B per entry.
        let nx_loc = domain.nx as f64 / px as f64;
        let ny_loc = domain.ny as f64 / py as f64;
        let site_bytes = 4.0 * self.r as f64 * 16.0;
        let mut halo_bytes = 0.0;
        let mut messages = 0.0;
        if px > 1 {
            halo_bytes += 2.0 * ny_loc * domain.nz as f64 * site_bytes;
            messages += 2.0;
        }
        if py > 1 {
            halo_bytes += 2.0 * nx_loc * domain.nz as f64 * site_bytes;
            messages += 2.0;
        }
        let t_net = halo_bytes / (self.net_bw_gbs * 1e9) + messages * self.net_latency_s;
        // The GPU's share of the halo is staged through PCIe in both
        // directions (paper Section VI-A: assembly on the GPU, pinned
        // copies to the host).
        let t_pcie = 2.0 * self.gpu_share * halo_bytes / (self.pcie_bw_gbs * 1e9);

        let t_reduce = if reduce_every_iteration {
            self.allreduce_time(nodes)
        } else {
            0.0
        };
        if self.pipelined {
            // Overlapped transfers: communication hides behind compute
            // except for a small non-overlappable startup chunk.
            let t_comm = t_net + t_pcie;
            let exposed = (t_comm - t_comp).max(0.05 * t_comm);
            Ok(t_comp + exposed + t_reduce)
        } else {
            Ok(t_comp + t_net + t_pcie + t_reduce)
        }
    }

    /// Cost of one global reduction over `nodes` nodes (2 ranks each).
    pub fn allreduce_time(&self, nodes: usize) -> f64 {
        let ranks = (2 * nodes).max(2) as f64;
        self.sync_per_hop_s * ranks.log2()
    }

    /// Aggregate sustained Tflop/s on `px·py` nodes.
    pub fn sustained_tflops(
        &self,
        domain: Domain,
        px: usize,
        py: usize,
        stage: Stage,
        reduce_every_iteration: bool,
    ) -> Result<f64, KpmError> {
        let t = self.iteration_time(domain, px, py, stage, reduce_every_iteration)?;
        let flops = self.flops_per_node_sweep(domain, px, py) * (px * py) as f64;
        Ok(flops / t / 1e12)
    }

    /// Weak scaling, "Square" case (paper Fig. 12): base 400×100×40 on
    /// one node; at 4 nodes the tile becomes 400×400; afterwards node
    /// count quadruples while x and y double. Node counts: 1, 4, 16,
    /// 64, 256, 1024 (up to `max_nodes`).
    pub fn weak_scaling_square(&self, max_nodes: usize) -> Result<Vec<ScalingPoint>, KpmError> {
        let mut points = Vec::new();
        let mut nodes = 1usize;
        let mut domain = Domain {
            nx: 400,
            ny: 100,
            nz: 40,
        };
        let mut grid = (1usize, 1usize);
        while nodes <= max_nodes {
            let tflops = self.sustained_tflops(domain, grid.0, grid.1, Stage::Stage2, false)?;
            points.push(ScalingPoint {
                nodes,
                domain,
                tflops,
                efficiency: 0.0,
            });
            if nodes == 1 {
                nodes = 4;
                domain = Domain {
                    nx: 400,
                    ny: 400,
                    nz: 40,
                };
                grid = (2, 2);
            } else {
                nodes *= 4;
                domain.nx *= 2;
                domain.ny *= 2;
                grid = (grid.0 * 2, grid.1 * 2);
            }
        }
        Ok(finalize_efficiency(points))
    }

    /// Weak scaling, "Bar" case: Ny = 100 and Nz = 40 fixed, Nx grows by
    /// 400 per node; 1-D decomposition along x.
    pub fn weak_scaling_bar(&self, max_nodes: usize) -> Result<Vec<ScalingPoint>, KpmError> {
        let mut points = Vec::new();
        let mut nodes = 1usize;
        while nodes <= max_nodes {
            let domain = Domain {
                nx: 400 * nodes,
                ny: 100,
                nz: 40,
            };
            let tflops = self.sustained_tflops(domain, nodes, 1, Stage::Stage2, false)?;
            points.push(ScalingPoint {
                nodes,
                domain,
                tflops,
                efficiency: 0.0,
            });
            nodes *= 4;
        }
        Ok(finalize_efficiency(points))
    }

    /// Strong scaling of a fixed domain over the given node counts
    /// (near-square process grids).
    pub fn strong_scaling(
        &self,
        domain: Domain,
        node_counts: &[usize],
    ) -> Result<Vec<ScalingPoint>, KpmError> {
        let points = node_counts
            .iter()
            .map(|&nodes| {
                let (px, py) = near_square_grid(nodes);
                let tflops = self.sustained_tflops(domain, px, py, Stage::Stage2, false)?;
                Ok(ScalingPoint {
                    nodes,
                    domain,
                    tflops,
                    efficiency: 0.0,
                })
            })
            .collect::<Result<Vec<_>, KpmError>>()?;
        Ok(finalize_efficiency(points))
    }

    /// Paper Table III: the largest system (Bar at 1024 nodes,
    /// N ≈ 6.5·10⁹) solved with R = 32, M = 2000 by the three solver
    /// variants.
    pub fn table3(&self) -> Result<Vec<Table3Row>, KpmError> {
        let domain = Domain {
            nx: 400 * 1024,
            ny: 100,
            nz: 40,
        };
        let m = 2000usize;
        let sweeps = (m / 2) as f64;
        let total_flops = self.r as f64 * domain.rows() as f64 * (13.0 * 8.0 + 34.0) * sweeps;

        let mut rows = Vec::new();
        // Throughput mode: R independent aug_spmv runs (the paper ran
        // this variant on 288 nodes).
        {
            let nodes = 288;
            let (px, py) = (nodes, 1);
            let scaled = Domain {
                nx: domain.nx, // same global system, fewer nodes
                ..domain
            };
            let tflops = self.sustained_tflops(scaled, px, py, Stage::Stage1, false)?;
            rows.push(Table3Row {
                version: "aug_spmv()",
                tflops,
                nodes,
                node_hours: total_flops / (tflops * 1e12) * nodes as f64 / 3600.0,
            });
        }
        // Blocked with a global reduction every iteration.
        {
            let nodes = 1024;
            let tflops = self.sustained_tflops(domain, nodes, 1, Stage::Stage2, true)?;
            rows.push(Table3Row {
                version: "aug_spmmv()*",
                tflops,
                nodes,
                node_hours: total_flops / (tflops * 1e12) * nodes as f64 / 3600.0,
            });
        }
        // Blocked with a single reduction at the end.
        {
            let nodes = 1024;
            let tflops = self.sustained_tflops(domain, nodes, 1, Stage::Stage2, false)?;
            rows.push(Table3Row {
                version: "aug_spmmv()",
                tflops,
                nodes,
                node_hours: total_flops / (tflops * 1e12) * nodes as f64 / 3600.0,
            });
        }
        Ok(rows)
    }
}

/// Largest `px <= sqrt(n)` dividing `n`, paired with `n/px`.
fn near_square_grid(n: usize) -> (usize, usize) {
    let mut px = (n as f64).sqrt() as usize;
    while px > 1 && !n.is_multiple_of(px) {
        px -= 1;
    }
    (px.max(1), n / px.max(1))
}

fn finalize_efficiency(mut points: Vec<ScalingPoint>) -> Vec<ScalingPoint> {
    if let Some(first) = points.first().copied() {
        let per_node_base = first.tflops / first.nodes as f64;
        for p in &mut points {
            p.efficiency = p.tflops / (per_node_base * p.nodes as f64);
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_topo::TopoHamiltonian;

    fn model() -> ClusterModel {
        let bench = TopoHamiltonian::clean(32, 16, 8).assemble();
        ClusterModel::piz_daint(&bench, 32)
    }

    #[test]
    fn weak_scaling_square_reaches_paper_scale() {
        let m = model();
        let pts = m.weak_scaling_square(1024).expect("optimized stage");
        assert_eq!(pts.last().unwrap().nodes, 1024);
        let t = pts.last().unwrap().tflops;
        // Paper: > 100 Tflop/s on 1024 nodes.
        assert!(t > 80.0 && t < 160.0, "1024-node Tflop/s = {t}");
        // Final domain is the paper's 6400x6400x40.
        assert_eq!(pts.last().unwrap().domain.nx, 6400);
        assert_eq!(pts.last().unwrap().domain.ny, 6400);
    }

    #[test]
    fn bar_scales_better_than_square_at_4_nodes() {
        // The square case pays for the new y-direction cuts when going
        // to 4 nodes (paper: "drop in parallel efficiency in this
        // region").
        let m = model();
        let sq = m.weak_scaling_square(4).expect("optimized stage");
        let bar = m.weak_scaling_bar(4).expect("optimized stage");
        assert!(bar[1].efficiency >= sq[1].efficiency);
        assert!(sq[1].efficiency < 1.0);
        assert!(sq[1].efficiency > 0.75, "{}", sq[1].efficiency);
    }

    #[test]
    fn weak_scaling_efficiency_stays_high() {
        let m = model();
        for p in m.weak_scaling_bar(1024).expect("optimized stage") {
            assert!(p.efficiency > 0.9, "bar {}: {}", p.nodes, p.efficiency);
        }
        for p in m.weak_scaling_square(1024).expect("optimized stage") {
            assert!(p.efficiency > 0.8, "square {}: {}", p.nodes, p.efficiency);
        }
    }

    #[test]
    fn strong_scaling_efficiency_declines() {
        let m = model();
        let domain = Domain {
            nx: 400,
            ny: 400,
            nz: 40,
        };
        let pts = m
            .strong_scaling(domain, &[4, 16, 64, 256])
            .expect("optimized stage");
        for w in pts.windows(2) {
            assert!(w[1].efficiency <= w[0].efficiency + 1e-9);
            assert!(w[1].tflops > w[0].tflops, "still speeds up");
        }
        assert!(pts.last().unwrap().efficiency < 0.9);
    }

    #[test]
    fn table3_reproduces_paper_ordering_and_magnitudes() {
        let m = model();
        let rows = m.table3().expect("optimized stage");
        assert_eq!(rows.len(), 3);
        let spmv = &rows[0];
        let star = &rows[1];
        let best = &rows[2];
        // Paper: 14.9 / 107 / 116 Tflop/s and 164 / 81 / 75 node-hours.
        assert_eq!(spmv.nodes, 288);
        assert_eq!(best.nodes, 1024);
        assert!(spmv.tflops < star.tflops && star.tflops < best.tflops);
        // Paper: 164 vs 75 node-hours (2.2x); the model lands near 2x.
        assert!(
            spmv.node_hours > 1.8 * best.node_hours,
            "throughput mode must cost ~2x: {} vs {}",
            spmv.node_hours,
            best.node_hours
        );
        // Single end reduction buys ~8% (paper: 8%).
        let gain = best.tflops / star.tflops;
        assert!(gain > 1.03 && gain < 1.2, "reduction gain = {gain}");
        // Magnitudes within a factor ~1.6 of the paper.
        assert!(spmv.tflops > 9.0 && spmv.tflops < 25.0, "{}", spmv.tflops);
        assert!(best.tflops > 80.0 && best.tflops < 180.0, "{}", best.tflops);
    }

    #[test]
    fn pipelining_improves_throughput() {
        // The outlook optimization: overlapped communication lifts both
        // the weak-scaling plateau and the strong-scaling tail.
        let bench = TopoHamiltonian::clean(32, 16, 8).assemble();
        let plain = ClusterModel::piz_daint(&bench, 32);
        let piped = ClusterModel::piz_daint(&bench, 32).with_pipelining();
        let d = Domain {
            nx: 6400,
            ny: 6400,
            nz: 40,
        };
        let t_plain = plain
            .sustained_tflops(d, 32, 32, Stage::Stage2, false)
            .expect("optimized stage");
        let t_piped = piped
            .sustained_tflops(d, 32, 32, Stage::Stage2, false)
            .expect("optimized stage");
        assert!(t_piped > t_plain, "{t_piped} vs {t_plain}");
        // Strong-scaling tail benefits more (comm-dominated).
        let small = Domain {
            nx: 400,
            ny: 400,
            nz: 40,
        };
        let s_plain = plain
            .strong_scaling(small, &[4, 256])
            .expect("optimized stage");
        let s_piped = piped
            .strong_scaling(small, &[4, 256])
            .expect("optimized stage");
        let gain_small = s_piped[1].tflops / s_plain[1].tflops;
        let gain_big = t_piped / t_plain;
        assert!(gain_small >= gain_big, "{gain_small} vs {gain_big}");
    }

    #[test]
    fn naive_stage_is_a_typed_error_not_a_panic() {
        let m = model();
        let d = Domain {
            nx: 400,
            ny: 100,
            nz: 40,
        };
        assert!(matches!(
            m.node_gflops(Stage::Naive),
            Err(KpmError::Unsupported {
                what: "cluster stage",
                ..
            })
        ));
        // The error propagates through every projection entry point.
        assert!(m.iteration_time(d, 2, 2, Stage::Naive, false).is_err());
        assert!(m.sustained_tflops(d, 2, 2, Stage::Naive, false).is_err());
        // The optimized stages are untouched.
        assert!(m.node_gflops(Stage::Stage2).expect("stage2") > 0.0);
    }

    #[test]
    fn near_square_grid_factors() {
        assert_eq!(near_square_grid(1), (1, 1));
        assert_eq!(near_square_grid(16), (4, 4));
        assert_eq!(near_square_grid(12), (3, 4));
        assert_eq!(near_square_grid(7), (1, 7));
    }

    #[test]
    fn allreduce_cost_grows_with_node_count() {
        let m = model();
        assert!(m.allreduce_time(1024) > m.allreduce_time(4));
        assert!(m.allreduce_time(1024) > 0.0);
    }
}
