//! Node-level performance model (paper Fig. 11).
//!
//! Predicts the sustained KPM performance of one heterogeneous node
//! (one CPU socket + one GPU, as on Piz Daint) for each optimization
//! stage, for CPU-only, GPU-only and combined execution. The CPU side
//! uses the roofline machinery of `kpm-perfmodel`; the GPU side uses the
//! trace-driven simulator of `kpm-simgpu`; the heterogeneous combination
//! adds the PCIe halo-exchange overhead and the sacrificed management
//! core (paper Section VI-B: one CPU core per GPU is "sacrificed" for
//! kernel launches and transfers).

use kpm_perfmodel::balance::min_code_balance;
use kpm_perfmodel::machine::Machine;
use kpm_perfmodel::roofline::memory_bound;
use kpm_simgpu::{simulate, GpuDevice, GpuKernel};
use kpm_sparse::CrsMatrix;

/// The three optimization stages of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Paper Fig. 3: SpMV + separate BLAS-1 kernels.
    Naive,
    /// Paper Fig. 4: fused augmented SpMV (R = 1 per sweep).
    Stage1,
    /// Paper Fig. 5: blocked augmented SpMMV.
    Stage2,
}

/// Code balance of a stage at block width `r` (minimum, Ω = 1).
fn stage_balance(stage: Stage, nnzr: f64, r: usize) -> f64 {
    use kpm_num::accounting::{F_A, F_M, S_D, S_I};
    let flops = nnzr * (F_A + F_M) as f64 + (7 * F_A) as f64 / 2.0 + (9 * F_M) as f64 / 2.0;
    match stage {
        // Naive: matrix once + 13 vector transfers per iteration.
        Stage::Naive => (nnzr * (S_D + S_I) as f64 + 13.0 * S_D as f64) / flops,
        // Stage 1: fused kernel at R = 1.
        Stage::Stage1 => min_code_balance(nnzr, 1),
        Stage::Stage2 => min_code_balance(nnzr, r),
    }
}

/// Empirical GPU efficiency factors for the pre-blocking stages: the
/// naive chain pays kernel-launch and separate-reduction overheads; the
/// single-vector augmented kernel is latency-limited by its fused dot
/// products at degenerate warp occupancy. Calibrated against the
/// paper's measured GPU-only speedup of 2.3x from naive to stage 2.
const GPU_NAIVE_EFFICIENCY: f64 = 0.70;
const GPU_STAGE1_EFFICIENCY: f64 = 0.50;

/// The naive CPU chain of separate BLAS-1 kernels loses ~30% to loop
/// overheads and synchronization between kernels relative to its pure
/// bandwidth roofline (calibrated so the paper's "more than a factor of
/// 10" total node speedup holds).
const CPU_NAIVE_EFFICIENCY: f64 = 0.70;

/// PCIe bandwidth available for halo staging (pinned memory, GB/s).
const PCIE_BW_GBS: f64 = 6.0;

/// Performance of one *CPU socket* at `stage`, using `cores` of its
/// cores (paper: the full socket when CPU-only, cores-1 when a GPU
/// must be managed).
pub fn cpu_performance(machine: &Machine, stage: Stage, r: usize, cores: usize, omega: f64) -> f64 {
    assert!(
        cores >= 1 && cores <= machine.cores,
        "core count out of range"
    );
    let nnzr = 13.0;
    let b = stage_balance(stage, nnzr, r) * omega;
    let p_mem = memory_bound(machine, b);
    match stage {
        // Memory-bound stages: bandwidth is shared, losing a core does
        // not matter once saturated.
        Stage::Naive => CPU_NAIVE_EFFICIENCY * p_mem.min(machine.peak_of_cores(cores)),
        Stage::Stage1 => p_mem.min(machine.peak_of_cores(cores)),
        // Stage 2 decouples from memory: in-core execution scales with
        // the cores actually computing (paper Section VI-B).
        Stage::Stage2 => {
            let p_llc_full = machine.llc_ceiling_gflops;
            let p_core = p_llc_full / machine.cores as f64;
            p_mem.min(p_core * cores as f64)
        }
    }
}

/// Performance of one GPU at `stage`. Stage 2 runs the trace-driven
/// simulator on `matrix`; the earlier stages use the balance model with
/// the calibrated efficiency factors.
pub fn gpu_performance(device: &GpuDevice, stage: Stage, r: usize, matrix: &CrsMatrix) -> f64 {
    let nnzr = 13.0;
    match stage {
        Stage::Naive => {
            GPU_NAIVE_EFFICIENCY * memory_bound(&device.machine, stage_balance(stage, nnzr, 1))
        }
        Stage::Stage1 => {
            GPU_STAGE1_EFFICIENCY * memory_bound(&device.machine, stage_balance(stage, nnzr, 1))
        }
        Stage::Stage2 => simulate(device, matrix, r, GpuKernel::AugFull).gflops(),
    }
}

/// Node-level prediction for one stage (one Fig. 11 bar group).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePerformance {
    /// Which stage.
    pub stage: Stage,
    /// CPU-only (full socket).
    pub cpu_gflops: f64,
    /// GPU-only.
    pub gpu_gflops: f64,
    /// Heterogeneous CPU+GPU.
    pub het_gflops: f64,
    /// Parallel efficiency of the heterogeneous run relative to the sum
    /// of the single-device numbers (the percentages atop Fig. 11).
    pub efficiency: f64,
}

/// Evaluates the Fig. 11 model for one stage.
///
/// `matrix` is the single-device benchmark matrix (the paper's
/// 200×100×40 domain — any matrix with the same row occupancy gives the
/// same rates); `r` is the block width of stage 2 (the paper uses 32);
/// `omega` the measured excess-traffic factor of the CPU kernel.
pub fn node_performance(
    cpu: &Machine,
    gpu: &GpuDevice,
    stage: Stage,
    r: usize,
    matrix: &CrsMatrix,
    omega: f64,
) -> NodePerformance {
    let cpu_only = cpu_performance(cpu, stage, r, cpu.cores, omega);
    let gpu_only = gpu_performance(gpu, stage, r, matrix);

    // Heterogeneous run: one management core sacrificed; each device
    // gets rows proportional to its speed; both then finish one sweep
    // in the same compute time. PCIe halo staging adds a serial phase.
    let cpu_part = cpu_performance(cpu, stage, r, cpu.cores - 1, omega);
    let combined = cpu_part + gpu_only;

    // Per-sweep accounting on the paper's heterogeneous node domain
    // (400×100×40, N = 6.4e6 rows — Fig. 11's workload): compute time
    // vs PCIe transfer of the device-boundary halo (both directions),
    // plus a fixed launch/synchronization cost per sweep. The passed
    // matrix only sets the kernel *rates*; the overhead ratio must be
    // evaluated at the real problem size.
    const NOMINAL_NODE_ROWS: f64 = 6_400_000.0;
    let n = NOMINAL_NODE_ROWS;
    let flops_per_sweep = (r as f64) * n * (13.0 * 8.0 + 34.0);
    let t_comp = flops_per_sweep / (combined * 1e9);
    // Boundary rows between the CPU and GPU row blocks: one lattice
    // plane of the stencil (the row block boundary cuts one x-y plane;
    // its halo is ~ N / Nz rows on each side, Nz = 40).
    let boundary_rows = n / 40.0;
    let halo_bytes = 2.0 * boundary_rows * (r as f64) * 16.0;
    let t_pcie = halo_bytes / (PCIE_BW_GBS * 1e9) + 50e-6;
    let het = flops_per_sweep / ((t_comp + t_pcie) * 1e9);
    NodePerformance {
        stage,
        cpu_gflops: cpu_only,
        gpu_gflops: gpu_only,
        het_gflops: het,
        efficiency: het / combined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_perfmodel::machine::SNB;
    use kpm_topo::TopoHamiltonian;

    fn bench_matrix() -> CrsMatrix {
        // Scaled-down stand-in for the paper's 200x100x40 single-device
        // domain; rates depend only on row occupancy and cache-to-block
        // ratios, both preserved.
        TopoHamiltonian::clean(32, 16, 8).assemble()
    }

    fn fig11(stage: Stage) -> NodePerformance {
        node_performance(&SNB, &GpuDevice::k20x(), stage, 32, &bench_matrix(), 1.3)
    }

    #[test]
    fn stages_improve_monotonically_on_every_target() {
        let naive = fig11(Stage::Naive);
        let s1 = fig11(Stage::Stage1);
        let s2 = fig11(Stage::Stage2);
        assert!(naive.cpu_gflops < s1.cpu_gflops && s1.cpu_gflops < s2.cpu_gflops);
        assert!(naive.gpu_gflops < s1.gpu_gflops && s1.gpu_gflops < s2.gpu_gflops);
        assert!(naive.het_gflops < s1.het_gflops && s1.het_gflops < s2.het_gflops);
    }

    #[test]
    fn gpu_speedup_naive_to_stage2_near_paper_2_3x() {
        let naive = fig11(Stage::Naive);
        let s2 = fig11(Stage::Stage2);
        let speedup = s2.gpu_gflops / naive.gpu_gflops;
        assert!(
            speedup > 1.9 && speedup < 2.8,
            "GPU naive->stage2 speedup = {speedup}"
        );
    }

    #[test]
    fn heterogeneous_gain_over_gpu_only_near_paper_36pct() {
        let s2 = fig11(Stage::Stage2);
        let gain = s2.het_gflops / s2.gpu_gflops;
        assert!(gain > 1.2 && gain < 1.6, "heterogeneous gain = {gain}");
    }

    #[test]
    fn parallel_efficiency_in_paper_band() {
        // Paper Fig. 11: 85-90% for the optimized stages.
        for stage in [Stage::Stage1, Stage::Stage2] {
            let p = fig11(stage);
            assert!(
                p.efficiency > 0.80 && p.efficiency < 0.97,
                "{stage:?}: efficiency = {}",
                p.efficiency
            );
        }
    }

    #[test]
    fn total_node_speedup_naive_cpu_to_het_stage2_exceeds_10x() {
        // Paper Section VI-B: "more than a factor of 10".
        let naive = fig11(Stage::Naive);
        let s2 = fig11(Stage::Stage2);
        let speedup = s2.het_gflops / naive.cpu_gflops;
        assert!(speedup > 9.0, "total speedup = {speedup}");
    }

    #[test]
    fn losing_a_core_hurts_stage2_but_not_stage1() {
        let full = cpu_performance(&SNB, Stage::Stage2, 32, 8, 1.3);
        let less = cpu_performance(&SNB, Stage::Stage2, 32, 7, 1.3);
        assert!(less < full);
        let full1 = cpu_performance(&SNB, Stage::Stage1, 1, 8, 1.0);
        let less1 = cpu_performance(&SNB, Stage::Stage1, 1, 7, 1.0);
        assert!((full1 - less1).abs() < 1e-9, "stage 1 is bandwidth-bound");
    }

    #[test]
    fn node_stage2_lands_near_100_gflops() {
        // Fig. 11 / Fig. 12 baseline: the heterogeneous node sustains
        // on the order of 100 Gflop/s.
        let s2 = fig11(Stage::Stage2);
        assert!(
            s2.het_gflops > 70.0 && s2.het_gflops < 140.0,
            "het = {}",
            s2.het_gflops
        );
    }
}
