//! Automatic load-balancing weights (paper Section VII, outlook).
//!
//! The paper tunes the per-process weights "experimentally" and names
//! automatic weight determination as future work ("take this burden
//! away from the user"). This module implements it two ways:
//!
//! * [`weights_from_rates`] — the paper's own "good guess": weights
//!   proportional to measured single-device performance,
//! * [`refine_weights`] — iterative refinement from observed per-rank
//!   sweep times: a rank that finished early gets more rows. Under the
//!   linear cost model `t_i = rows_i / speed_i` one step lands exactly
//!   on the balanced distribution; measurement noise is handled by
//!   damping.

/// Weights proportional to per-device sustained rates (Gflop/s or any
/// consistent unit). The paper: "a good guess is to calculate the
/// weights from the single-device performance numbers."
pub fn weights_from_rates(rates: &[f64]) -> Vec<f64> {
    assert!(!rates.is_empty(), "need at least one device");
    assert!(rates.iter().all(|r| *r > 0.0), "rates must be positive");
    let total: f64 = rates.iter().sum();
    rates.iter().map(|r| r / total).collect()
}

/// One refinement step: given current `weights` and the measured
/// per-rank sweep times, returns improved weights. `damping` in (0, 1]
/// controls how far to move (1 = full correction, appropriate for
/// noise-free measurements).
pub fn refine_weights(weights: &[f64], times: &[f64], damping: f64) -> Vec<f64> {
    assert_eq!(weights.len(), times.len(), "one time per rank");
    assert!(
        (0.0..=1.0).contains(&damping) && damping > 0.0,
        "damping in (0,1]"
    );
    assert!(times.iter().all(|t| *t > 0.0), "times must be positive");
    // Implied speed of rank i: rows_i / t_i ∝ w_i / t_i. Balanced
    // weights are proportional to speeds.
    let speeds: Vec<f64> = weights.iter().zip(times).map(|(w, t)| w / t).collect();
    let total: f64 = speeds.iter().sum();
    let target: Vec<f64> = speeds.iter().map(|s| s / total).collect();
    let total_w: f64 = weights.iter().sum();
    let mut out: Vec<f64> = weights
        .iter()
        .zip(&target)
        .map(|(w, t)| (1.0 - damping) * (w / total_w) + damping * t)
        .collect();
    let norm: f64 = out.iter().sum();
    for w in &mut out {
        *w /= norm;
    }
    out
}

/// Load imbalance of a sweep: `max(times) / mean(times) - 1`
/// (0 = perfectly balanced).
pub fn imbalance(times: &[f64]) -> f64 {
    assert!(!times.is_empty(), "need at least one time");
    let max = times.iter().cloned().fold(f64::MIN, f64::max);
    let mean: f64 = times.iter().sum::<f64>() / times.len() as f64;
    max / mean - 1.0
}

/// Runs the refinement loop against a cost model `time(rows_fraction,
/// rank)` until the imbalance drops below `tol` or `max_iters` is hit.
/// Returns the final weights and the imbalance trace.
pub fn balance_with_model<F>(
    initial: &[f64],
    time_model: F,
    tol: f64,
    max_iters: usize,
) -> (Vec<f64>, Vec<f64>)
where
    F: Fn(f64, usize) -> f64,
{
    let mut weights: Vec<f64> = {
        let s: f64 = initial.iter().sum();
        initial.iter().map(|w| w / s).collect()
    };
    let mut trace = Vec::new();
    for _ in 0..max_iters {
        let times: Vec<f64> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| time_model(*w, i))
            .collect();
        let imb = imbalance(&times);
        trace.push(imb);
        if imb < tol {
            break;
        }
        weights = refine_weights(&weights, &times, 1.0);
    }
    (weights, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_normalize_to_unit_sum() {
        let w = weights_from_rates(&[46.0, 85.0]); // SNB, K20X stage-2
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w[1] / w[0] - 85.0 / 46.0).abs() < 1e-12);
    }

    #[test]
    fn one_refinement_step_balances_linear_model() {
        // Devices with speeds 1 : 2 : 4, starting from equal weights.
        let speeds = [1.0, 2.0, 4.0];
        let w0 = vec![1.0 / 3.0; 3];
        let times: Vec<f64> = w0.iter().zip(&speeds).map(|(w, s)| w / s).collect();
        let w1 = refine_weights(&w0, &times, 1.0);
        // Balanced: weights proportional to speed.
        for (w, s) in w1.iter().zip(&speeds) {
            assert!((w - s / 7.0).abs() < 1e-12);
        }
        let t1: Vec<f64> = w1.iter().zip(&speeds).map(|(w, s)| w / s).collect();
        assert!(imbalance(&t1) < 1e-12);
    }

    #[test]
    fn damping_moves_part_way() {
        let w0 = [0.5, 0.5];
        let times = [2.0, 1.0];
        let half = refine_weights(&w0, &times, 0.5);
        let full = refine_weights(&w0, &times, 1.0);
        assert!(half[1] > w0[1] && half[1] < full[1]);
    }

    #[test]
    fn balance_loop_converges_with_nonlinear_model() {
        // Speeds differ and there is a fixed per-sweep overhead on rank
        // 0 (the "sacrificed core" effect): the loop still converges.
        let model = |w: f64, rank: usize| -> f64 {
            let speed = [30.0f64, 80.0][rank];
            let overhead = [3e-3f64, 0.0][rank];
            w / speed + overhead
        };
        let (weights, trace) = balance_with_model(&[1.0, 1.0], model, 1e-3, 50);
        assert!(trace.last().unwrap() < &1e-3, "trace: {trace:?}");
        // GPU rank ends with the lion's share.
        assert!(weights[1] > 0.7, "{weights:?}");
        // Imbalance decreased from the first iterate.
        assert!(trace[0] > *trace.last().unwrap());
    }

    #[test]
    fn imbalance_metric() {
        assert!(imbalance(&[1.0, 1.0, 1.0]) < 1e-15);
        assert!((imbalance(&[2.0, 1.0, 1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn zero_rate_rejected() {
        weights_from_rates(&[1.0, 0.0]);
    }
}
