//! Heterogeneous and distributed execution (paper Section VI).
//!
//! The paper runs KPM data-parallel across CPU sockets and GPUs — one
//! MPI process per device, weighted row distribution, halo exchange —
//! on up to 1024 nodes of Piz Daint. This crate reproduces that stack
//! in two complementary layers:
//!
//! * a **functional layer** that really executes the distributed
//!   algorithm, with OS threads standing in for MPI ranks:
//!   - [`runtime`] — a typed message-passing runtime (send/recv with
//!     deadlines, barrier, allreduce) over std channels, with typed
//!     errors instead of panics on communication failure,
//!   - [`fault`] — deterministic fault injection (message drop /
//!     duplication / delay, scheduled rank crashes) attachable to a
//!     world via [`runtime::WorldConfig`],
//!   - [`decomp`] — weighted 1-D row-block decomposition and the halo
//!     communication plan derived from the matrix sparsity pattern,
//!   - [`dist`] — the distributed blocked KPM solver; its moments are
//!     validated against the single-process solver, plus a resilient
//!     driver that checkpoints and restarts across injected crashes,
//! * a **performance layer** that models the machines we cannot run on:
//!   - [`node`] — node-level performance per optimization stage for
//!     CPU, GPU and CPU+GPU execution (paper Fig. 11),
//!   - [`cluster`] — weak/strong scaling on the modelled Cray XC30
//!     (paper Fig. 12) and the resource-efficiency comparison of
//!     blocking vs throughput mode (paper Table III),
//!   - [`autotune`] — automatic load-balancing weights, the paper's
//!     Section VII outlook item, including iterative refinement from
//!     observed sweep times.

pub mod autotune;
pub mod cluster;
pub mod decomp;
pub mod dist;
pub mod fault;
pub mod node;
pub mod runtime;

pub use decomp::{partition_rows, LocalProblem};
pub use fault::{FaultPlan, FaultStats};
pub use runtime::{Communicator, World, WorldConfig, WorldOutcome};
