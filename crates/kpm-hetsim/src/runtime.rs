//! MPI-like message-passing runtime over OS threads.
//!
//! The paper uses one MPI process per device "already on the node level"
//! so the same code scales from one heterogeneous node to the full
//! machine (Section VI-A). This module provides that programming model
//! in-process: [`World::run`] spawns one thread per rank and hands each
//! a [`Communicator`] with point-to-point send/recv, barrier, and
//! allreduce collectives. Message channels are unbounded, so sends
//! never block (eager MPI semantics for the message sizes used here).

use std::sync::{Arc, Barrier};

use crossbeam_channel::{unbounded, Receiver, Sender};
use kpm_num::Complex64;

/// A tagged message payload.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sender rank.
    pub from: usize,
    /// User tag (e.g. iteration number).
    pub tag: u64,
    /// Payload.
    pub data: Vec<Complex64>,
}

/// Per-rank communication endpoint.
pub struct Communicator {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>, // senders[d] delivers to rank d
    inbox: Receiver<Message>,
    /// Messages received but not yet matched by tag/source.
    stash: Vec<Message>,
    barrier: Arc<Barrier>,
}

impl Communicator {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends `data` to rank `to` with `tag`. Never blocks.
    pub fn send(&self, to: usize, tag: u64, data: Vec<Complex64>) {
        assert!(to < self.size, "destination rank out of range");
        self.senders[to]
            .send(Message {
                from: self.rank,
                tag,
                data,
            })
            .expect("receiver thread alive for the World's lifetime");
    }

    /// Receives the next message from `from` with `tag`, blocking until
    /// it arrives. Out-of-order arrivals are stashed and matched later.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<Complex64> {
        if let Some(pos) = self
            .stash
            .iter()
            .position(|m| m.from == from && m.tag == tag)
        {
            return self.stash.swap_remove(pos).data;
        }
        loop {
            let msg = self.inbox.recv().expect("world alive");
            if msg.from == from && msg.tag == tag {
                return msg.data;
            }
            self.stash.push(msg);
        }
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Global element-wise sum of `local` over all ranks; every rank
    /// returns the identical result. Deterministic reduction order
    /// (by ascending rank at rank 0, then broadcast), so the result does
    /// not depend on timing.
    pub fn allreduce_sum(&mut self, local: &[Complex64]) -> Vec<Complex64> {
        const TAG_GATHER: u64 = u64::MAX - 1;
        const TAG_BCAST: u64 = u64::MAX - 2;
        if self.size == 1 {
            return local.to_vec();
        }
        if self.rank == 0 {
            let mut acc = local.to_vec();
            for src in 1..self.size {
                let part = self.recv(src, TAG_GATHER);
                assert_eq!(part.len(), acc.len(), "allreduce length mismatch");
                for (a, b) in acc.iter_mut().zip(&part) {
                    *a += *b;
                }
            }
            for dst in 1..self.size {
                self.send(dst, TAG_BCAST, acc.clone());
            }
            acc
        } else {
            self.send(0, TAG_GATHER, local.to_vec());
            self.recv(0, TAG_BCAST)
        }
    }

    /// Global sum of a scalar.
    pub fn allreduce_scalar(&mut self, x: Complex64) -> Complex64 {
        self.allreduce_sum(&[x])[0]
    }
}

/// A fixed-size group of ranks running one closure each.
pub struct World;

impl World {
    /// Runs `f(communicator)` on `size` ranks (threads) and returns each
    /// rank's result, indexed by rank.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Send + Sync,
    {
        assert!(size >= 1, "need at least one rank");
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(Barrier::new(size));
        let mut comms: Vec<Communicator> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| Communicator {
                rank,
                size,
                senders: senders.clone(),
                inbox,
                stash: Vec::new(),
                barrier: Arc::clone(&barrier),
            })
            .collect();
        drop(senders);

        crossbeam::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for comm in comms.drain(..) {
                let fref = &f;
                handles.push(scope.spawn(move |_| fref(comm)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread must not panic"))
                .collect()
        })
        .expect("world scope")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex64 {
        Complex64::real(re)
    }

    #[test]
    fn ranks_are_distinct_and_sized() {
        let got = World::run(4, |comm| (comm.rank(), comm.size()));
        assert_eq!(got, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn ring_send_recv() {
        let got = World::run(3, |mut comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, vec![c(comm.rank() as f64)]);
            comm.recv(prev, 7)[0].re
        });
        assert_eq!(got, vec![2.0, 0.0, 1.0]);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let got = World::run(2, |mut comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1.
                comm.send(1, 2, vec![c(20.0)]);
                comm.send(1, 1, vec![c(10.0)]);
                0.0
            } else {
                // Receive in the opposite order.
                let a = comm.recv(0, 1)[0].re;
                let b = comm.recv(0, 2)[0].re;
                a + b
            }
        });
        assert_eq!(got[1], 30.0);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let got = World::run(5, |mut comm| {
            let local = vec![c(comm.rank() as f64), c(1.0)];
            let sum = comm.allreduce_sum(&local);
            (sum[0].re, sum[1].re)
        });
        for (a, b) in got {
            assert_eq!(a, 10.0); // 0+1+2+3+4
            assert_eq!(b, 5.0);
        }
    }

    #[test]
    fn allreduce_scalar_deterministic() {
        let a = World::run(7, |mut comm| {
            comm.allreduce_scalar(Complex64::new(0.1 * comm.rank() as f64, -1.0))
        });
        let b = World::run(7, |mut comm| {
            comm.allreduce_scalar(Complex64::new(0.1 * comm.rank() as f64, -1.0))
        });
        assert_eq!(a, b);
        assert!((a[0].im + 7.0).abs() < 1e-12);
    }

    #[test]
    fn barrier_does_not_deadlock() {
        let got = World::run(4, |comm| {
            for _ in 0..10 {
                comm.barrier();
            }
            comm.rank()
        });
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn single_rank_world() {
        let got = World::run(1, |mut comm| comm.allreduce_scalar(c(42.0)).re);
        assert_eq!(got, vec![42.0]);
    }
}
