//! MPI-like message-passing runtime over OS threads, with typed error
//! handling, receive deadlines, and pluggable fault injection.
//!
//! The paper uses one MPI process per device "already on the node level"
//! so the same code scales from one heterogeneous node to the full
//! machine (Section VI-A). This module provides that programming model
//! in-process: [`World::run`] spawns one thread per rank and hands each
//! a [`Communicator`] with point-to-point send/recv, barrier, and
//! allreduce collectives.
//!
//! Resilience semantics (this is what later scaling PRs test against):
//!
//! * [`Communicator::send`] returns `Err(KpmError::SendFailed)` when the
//!   destination rank has terminated, instead of panicking.
//! * [`Communicator::recv_timeout`] polls with exponential backoff and
//!   returns `Err(KpmError::RankUnreachable)` when the deadline expires,
//!   so a lost peer is *detected* rather than hung on.
//! * Deliveries are exactly-once: every message carries a per-link
//!   sequence number and receivers discard replayed copies, so a
//!   [`FaultPlan`] injecting duplicates cannot corrupt collectives that
//!   reuse tags.
//! * The out-of-order stash is bounded ([`WorldConfig::stash_capacity`])
//!   and overflow surfaces as `Err(KpmError::StashOverflow)` instead of
//!   unbounded memory growth under a message storm.
//! * A drop-time leak ledger counts every logical message sent and
//!   consumed; [`World::run`] asserts nothing was left undelivered after
//!   a fault-free world, and [`WorldOutcome::undelivered`] reports the
//!   count otherwise.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use kpm_num::{Complex64, KpmError};
use kpm_obs::metrics;

use crate::fault::FaultPlan;

/// Default bound on out-of-order messages a rank will hold.
pub const DEFAULT_STASH_CAPACITY: usize = 4096;

/// Smallest backoff slice of [`Communicator::recv_timeout`].
const BACKOFF_MIN: Duration = Duration::from_micros(200);

/// Largest backoff slice of [`Communicator::recv_timeout`].
const BACKOFF_MAX: Duration = Duration::from_millis(50);

/// Multiplicative jitter on one backoff slice, scaling `base` by a
/// factor in `[0.5, 1.5)` drawn from a splitmix64 stream advanced in
/// `state`. Ranks that lose the same peer at the same instant would
/// otherwise double their slices in lockstep and keep polling on the
/// identical schedule; per-rank seeding decorrelates them while keeping
/// each rank's schedule deterministic.
fn jittered_backoff(base: Duration, state: &mut u64) -> Duration {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let draw = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    base.mul_f64(0.5 + draw)
}

/// A tagged message payload.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sender rank.
    pub from: usize,
    /// User tag (e.g. iteration number).
    pub tag: u64,
    /// Payload.
    pub data: Vec<Complex64>,
    /// Per-link sequence number (assigned by the sender). Fault-injected
    /// duplicate copies reuse the original's number, so receivers
    /// deduplicate by `(from, seq)` and the leak ledger stays exact.
    seq: u64,
    /// Sender's Lamport timestamp at send time (0 when tracing is
    /// disabled). Receivers max-merge it into the global clock so
    /// cross-rank span orderings reflect the happens-before relation.
    clock: u64,
}

/// Message accounting shared by every rank of a world: `leaked = sent -
/// consumed - expired` after all ranks have finished.
#[derive(Debug, Default)]
struct Ledger {
    /// Logical messages dispatched into some rank's inbox.
    sent: AtomicU64,
    /// Logical messages returned from a `recv`.
    consumed: AtomicU64,
    /// Logical messages that became undeliverable through injected
    /// faults (e.g. a delayed copy whose receiver terminated first).
    expired: AtomicU64,
}

struct WorldShared {
    ledger: Ledger,
    /// Join handles of delay-injection timer threads.
    timers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    faults: Option<Arc<FaultPlan>>,
    /// Per-rank link telemetry, flushed when each communicator drops.
    telemetry: Mutex<Vec<RankTelemetry>>,
}

/// Per-rank link/retry/fault telemetry, collected unconditionally
/// (plain integer bumps on thread-local state) and surfaced through
/// [`WorldOutcome::telemetry`]. When `kpm-obs` instrumentation is
/// enabled the totals are also mirrored into the global metrics
/// registry at rank teardown (`runtime.*` / `fault.injected.*`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankTelemetry {
    /// Which rank this row describes.
    pub rank: usize,
    /// Logical messages this rank successfully dispatched.
    pub msgs_sent: u64,
    /// Messages this rank's application consumed.
    pub msgs_consumed: u64,
    /// Replayed copies discarded by exactly-once dedup.
    pub dup_discarded: u64,
    /// Sends the fault plan dropped on the wire.
    pub injected_drops: u64,
    /// Sends the fault plan duplicated.
    pub injected_dups: u64,
    /// Sends the fault plan delayed.
    pub injected_delays: u64,
    /// Receive deadlines that expired (peer silent or gone).
    pub recv_timeouts: u64,
    /// Empty backoff slices waited inside `recv_timeout`.
    pub backoff_slices: u64,
    /// Messages parked in the out-of-order stash.
    pub stashed: u64,
    /// High-water mark of the stash depth.
    pub stash_peak: u64,
    /// True if this rank hit a scheduled crash point.
    pub crashed: bool,
}

impl RankTelemetry {
    /// Mirrors this rank's totals into the global metrics registry
    /// (no-op while instrumentation is disabled).
    fn publish(&self) {
        metrics::counter_add("runtime.msg.sent", self.msgs_sent);
        metrics::counter_add("runtime.msg.consumed", self.msgs_consumed);
        metrics::counter_add("runtime.msg.dup_discarded", self.dup_discarded);
        metrics::counter_add("fault.injected.drop", self.injected_drops);
        metrics::counter_add("fault.injected.duplicate", self.injected_dups);
        metrics::counter_add("fault.injected.delay", self.injected_delays);
        metrics::counter_add("runtime.recv.timeout", self.recv_timeouts);
        metrics::counter_add("runtime.recv.backoff_slices", self.backoff_slices);
        metrics::counter_add("runtime.stash.stashed", self.stashed);
        metrics::gauge_max("runtime.stash.peak", self.stash_peak as f64);
        if self.crashed {
            metrics::counter_inc("fault.injected.crash");
        }
    }
}

/// Per-rank communication endpoint.
pub struct Communicator {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>, // senders[d] delivers to rank d
    inbox: Receiver<Message>,
    /// Messages received but not yet matched by tag/source.
    stash: Vec<Message>,
    stash_capacity: usize,
    /// Sequence numbers already delivered, per source rank.
    seen: Vec<HashSet<u64>>,
    /// Next sequence number per destination rank.
    next_seq: Vec<u64>,
    /// Set once a simulated crash fired; all later traffic fails.
    crashed: bool,
    /// Splitmix64 state driving [`jittered_backoff`], seeded per rank.
    backoff_state: u64,
    default_timeout: Option<Duration>,
    barrier: Arc<Barrier>,
    shared: Arc<WorldShared>,
    tele: RankTelemetry,
}

impl Communicator {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends `data` to rank `to` with `tag`. Never blocks; returns an
    /// error if the destination rank has terminated (its inbox is gone)
    /// or this rank has crashed.
    pub fn send(&mut self, to: usize, tag: u64, data: Vec<Complex64>) -> Result<(), KpmError> {
        if self.crashed {
            return Err(KpmError::RankCrashed { rank: self.rank });
        }
        if to >= self.size {
            return Err(KpmError::InvalidParams {
                what: "destination rank",
                details: format!("rank {to} out of range for world of {}", self.size),
            });
        }
        let seq = self.next_seq[to];
        self.next_seq[to] += 1;
        let fate = match &self.shared.faults {
            Some(plan) => plan.decide(self.rank, to, tag, seq),
            None => crate::fault::MessageFate::CLEAN,
        };
        // Count every injected fault the plan decided on, even when a
        // drop co-fires with a duplicate/delay, so per-rank telemetry
        // totals equal `FaultPlan::stats` exactly.
        if fate.drop {
            self.tele.injected_drops += 1;
        }
        if fate.duplicate {
            self.tele.injected_dups += 1;
        }
        if fate.delay.is_some() {
            self.tele.injected_delays += 1;
        }
        if fate.drop {
            // The message is lost on the wire: the sender cannot know.
            return Ok(());
        }
        let msg = Message {
            from: self.rank,
            tag,
            data,
            seq,
            clock: kpm_obs::clock::tick(),
        };
        let mut replay_delivered = false;
        if fate.duplicate {
            // Replayed copy, delivered immediately; receivers drop it by
            // sequence number if the original also arrives.
            // A failed duplicate is not an error: the original decides.
            replay_delivered = self.senders[to].send(msg.clone()).is_ok();
        }
        match fate.delay {
            Some(delay) => {
                self.shared.ledger.sent.fetch_add(1, Ordering::Relaxed);
                self.tele.msgs_sent += 1;
                let sender = self.senders[to].clone();
                let shared = Arc::clone(&self.shared);
                let handle = std::thread::spawn(move || {
                    std::thread::sleep(delay);
                    if sender.send(msg).is_err() {
                        // Receiver terminated before the delayed copy
                        // landed: the message expired in flight.
                        shared.ledger.expired.fetch_add(1, Ordering::Relaxed);
                    }
                });
                self.shared
                    .timers
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(handle);
                Ok(())
            }
            None => match self.senders[to].send(msg) {
                Ok(()) => {
                    self.shared.ledger.sent.fetch_add(1, Ordering::Relaxed);
                    self.tele.msgs_sent += 1;
                    Ok(())
                }
                // A receiver may legitimately consume the replayed copy,
                // finish, and close its inbox before the original lands;
                // the logical message still arrived exactly once.
                Err(_) if replay_delivered => {
                    self.shared.ledger.sent.fetch_add(1, Ordering::Relaxed);
                    self.tele.msgs_sent += 1;
                    Ok(())
                }
                Err(_) => Err(KpmError::SendFailed {
                    from: self.rank,
                    to,
                    tag,
                }),
            },
        }
    }

    /// Receives the next message from `from` with `tag`. Blocks until it
    /// arrives, or until the world-default receive timeout expires if
    /// one was configured ([`WorldConfig::default_recv_timeout`]).
    /// Out-of-order arrivals are stashed and matched later.
    pub fn recv(&mut self, from: usize, tag: u64) -> Result<Vec<Complex64>, KpmError> {
        match self.default_timeout {
            Some(t) => self.recv_timeout(from, tag, t),
            None => self.recv_blocking(from, tag),
        }
    }

    /// Receives with an explicit deadline. Polls the inbox with
    /// exponentially growing backoff slices (200 µs up to 50 ms, each
    /// scaled by seeded per-rank jitter in `[0.5, 1.5)` so ranks do not
    /// poll in lockstep) and returns `Err(KpmError::RankUnreachable)`
    /// once `timeout` has elapsed without a matching message — the
    /// caller decides whether to retry, restart from a checkpoint, or
    /// abort.
    pub fn recv_timeout(
        &mut self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<Complex64>, KpmError> {
        if self.crashed {
            return Err(KpmError::RankCrashed { rank: self.rank });
        }
        if let Some(data) = self.take_stashed(from, tag) {
            return Ok(data);
        }
        let start = Instant::now();
        let deadline = start + timeout;
        let mut slice = BACKOFF_MIN;
        loop {
            let now = Instant::now();
            if now >= deadline {
                self.tele.recv_timeouts += 1;
                return Err(KpmError::RankUnreachable {
                    rank: self.rank,
                    peer: from,
                    tag,
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
            let wait = jittered_backoff(slice, &mut self.backoff_state).min(deadline - now);
            match self.inbox.recv_timeout(wait) {
                Ok(msg) => {
                    if let Some(data) = self.accept(msg, from, tag)? {
                        return Ok(data);
                    }
                    // A message arrived (even if it was for another
                    // tag): the link is alive, reset the backoff.
                    slice = BACKOFF_MIN;
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.tele.backoff_slices += 1;
                    slice = (slice * 2).min(BACKOFF_MAX);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.tele.recv_timeouts += 1;
                    return Err(KpmError::RankUnreachable {
                        rank: self.rank,
                        peer: from,
                        tag,
                        waited_ms: start.elapsed().as_millis() as u64,
                    });
                }
            }
        }
    }

    fn recv_blocking(&mut self, from: usize, tag: u64) -> Result<Vec<Complex64>, KpmError> {
        if self.crashed {
            return Err(KpmError::RankCrashed { rank: self.rank });
        }
        if let Some(data) = self.take_stashed(from, tag) {
            return Ok(data);
        }
        loop {
            let msg = self.inbox.recv().map_err(|_| KpmError::RankUnreachable {
                rank: self.rank,
                peer: from,
                tag,
                waited_ms: 0,
            })?;
            if let Some(data) = self.accept(msg, from, tag)? {
                return Ok(data);
            }
        }
    }

    /// Pops a stashed message matching `(from, tag)`, if any.
    fn take_stashed(&mut self, from: usize, tag: u64) -> Option<Vec<Complex64>> {
        let pos = self
            .stash
            .iter()
            .position(|m| m.from == from && m.tag == tag)?;
        self.shared.ledger.consumed.fetch_add(1, Ordering::Relaxed);
        self.tele.msgs_consumed += 1;
        Some(self.stash.swap_remove(pos).data)
    }

    /// Ingests one arrived message: deduplicates replays, returns the
    /// payload if it matches, stashes it (bounded) otherwise.
    fn accept(
        &mut self,
        msg: Message,
        want_from: usize,
        want_tag: u64,
    ) -> Result<Option<Vec<Complex64>>, KpmError> {
        if !self.seen[msg.from].insert(msg.seq) {
            // Second copy of an already-arrived message (at-least-once
            // delivery): discard for exactly-once semantics.
            self.tele.dup_discarded += 1;
            return Ok(None);
        }
        // Lamport merge: pull the receiver's clock past the sender's
        // stamp so subsequent spans on this rank order after the send.
        kpm_obs::clock::observe(msg.clock);
        if msg.from == want_from && msg.tag == want_tag {
            self.shared.ledger.consumed.fetch_add(1, Ordering::Relaxed);
            self.tele.msgs_consumed += 1;
            return Ok(Some(msg.data));
        }
        if self.stash.len() >= self.stash_capacity {
            return Err(KpmError::StashOverflow {
                rank: self.rank,
                capacity: self.stash_capacity,
            });
        }
        self.stash.push(msg);
        self.tele.stashed += 1;
        self.tele.stash_peak = self.tele.stash_peak.max(self.stash.len() as u64);
        Ok(None)
    }

    /// Synchronizes all ranks. Only safe in fault-free worlds: a crashed
    /// rank never reaches the barrier, so resilient code paths must use
    /// message-based synchronization (allreduce with deadlines) instead.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Marks this rank dead if the attached [`FaultPlan`] schedules a
    /// crash at `iteration`. Returns `Err(KpmError::RankCrashed)` on the
    /// crash; every later operation on this communicator fails too, and
    /// dropping it closes the inbox so peers observe `SendFailed` /
    /// receive timeouts.
    pub fn crash_point(&mut self, iteration: usize) -> Result<(), KpmError> {
        if self.crashed {
            return Err(KpmError::RankCrashed { rank: self.rank });
        }
        if let Some(plan) = &self.shared.faults {
            if plan.crash_pending(self.rank, iteration) {
                self.crashed = true;
                self.tele.crashed = true;
                return Err(KpmError::RankCrashed { rank: self.rank });
            }
        }
        Ok(())
    }

    /// Global element-wise sum of `local` over all ranks; every rank
    /// returns the identical result. Deterministic reduction order
    /// (by ascending rank at rank 0, then broadcast), so the result does
    /// not depend on timing.
    pub fn allreduce_sum(&mut self, local: &[Complex64]) -> Result<Vec<Complex64>, KpmError> {
        const TAG_GATHER: u64 = u64::MAX - 1;
        const TAG_BCAST: u64 = u64::MAX - 2;
        if self.size == 1 {
            return Ok(local.to_vec());
        }
        if self.rank == 0 {
            let mut acc = local.to_vec();
            for src in 1..self.size {
                let part = self.recv(src, TAG_GATHER)?;
                if part.len() != acc.len() {
                    return Err(KpmError::InvalidParams {
                        what: "allreduce length",
                        details: format!(
                            "rank {src} contributed {} elements, expected {}",
                            part.len(),
                            acc.len()
                        ),
                    });
                }
                for (a, b) in acc.iter_mut().zip(&part) {
                    *a += *b;
                }
            }
            for dst in 1..self.size {
                self.send(dst, TAG_BCAST, acc.clone())?;
            }
            Ok(acc)
        } else {
            self.send(0, TAG_GATHER, local.to_vec())?;
            self.recv(0, TAG_BCAST)
        }
    }

    /// Global sum of a scalar.
    pub fn allreduce_scalar(&mut self, x: Complex64) -> Result<Complex64, KpmError> {
        Ok(self.allreduce_sum(&[x])?[0])
    }
}

impl Drop for Communicator {
    /// Drop-time leak check: any message still sitting in the inbox or
    /// stash was sent but never delivered to the application. Replayed
    /// duplicates and already-seen copies don't count — they were
    /// delivered through their original.
    fn drop(&mut self) {
        for msg in self.stash.drain(..) {
            // Stashed messages were counted `sent` but never consumed;
            // they surface via the sent/consumed imbalance.
            debug_assert!(self.seen[msg.from].contains(&msg.seq));
        }
        while let Ok(msg) = self.inbox.try_recv() {
            if !self.seen[msg.from].insert(msg.seq) {
                self.tele.dup_discarded += 1;
                continue; // duplicate of a delivered message
            }
            let _ = msg; // counted as sent, never consumed -> leak
        }
        self.tele.rank = self.rank;
        self.tele.publish();
        self.shared
            .telemetry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(self.tele.clone());
    }
}

/// Configuration of a message-passing world.
#[derive(Clone)]
pub struct WorldConfig {
    /// Number of ranks (threads).
    pub size: usize,
    /// Faults to inject; `None` runs clean.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Bound on each rank's out-of-order stash.
    pub stash_capacity: usize,
    /// Deadline applied by plain [`Communicator::recv`] calls; `None`
    /// blocks forever (classic MPI semantics).
    pub default_recv_timeout: Option<Duration>,
}

impl WorldConfig {
    /// A fault-free world of `size` ranks with blocking receives.
    pub fn new(size: usize) -> Self {
        WorldConfig {
            size,
            fault_plan: None,
            stash_capacity: DEFAULT_STASH_CAPACITY,
            default_recv_timeout: None,
        }
    }

    /// Attaches a fault plan.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Applies `timeout` to every plain `recv`.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.default_recv_timeout = Some(timeout);
        self
    }

    /// Bounds the out-of-order stash.
    pub fn with_stash_capacity(mut self, capacity: usize) -> Self {
        self.stash_capacity = capacity;
        self
    }
}

/// What a configured world run produced.
#[derive(Debug)]
pub struct WorldOutcome<T> {
    /// Per-rank results; a rank that returned an error or panicked is an
    /// `Err`.
    pub results: Vec<Result<T, KpmError>>,
    /// Logical messages sent but never delivered to the application.
    /// Zero for every correct protocol on a lossless plan.
    pub undelivered: u64,
    /// Per-rank link/retry/fault telemetry, sorted by rank. Ranks whose
    /// thread died without unwinding cleanly may be missing.
    pub telemetry: Vec<RankTelemetry>,
}

impl<T> WorldOutcome<T> {
    /// Unwraps all ranks, returning the first error if any rank failed.
    pub fn into_results(self) -> Result<Vec<T>, KpmError> {
        let mut out = Vec::with_capacity(self.results.len());
        for r in self.results {
            out.push(r?);
        }
        Ok(out)
    }

    /// True when every rank succeeded.
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(|r| r.is_ok())
    }
}

/// A fixed-size group of ranks running one closure each.
pub struct World;

impl World {
    /// Runs `f(communicator)` on `size` ranks (threads) and returns each
    /// rank's result, indexed by rank. Fault-free compatibility entry
    /// point: panics if a rank panics or if the world leaked messages.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Send + Sync,
    {
        let outcome = Self::run_config(WorldConfig::new(size), |comm| Ok(f(comm)));
        assert_eq!(
            outcome.undelivered, 0,
            "world leaked {} undelivered message(s)",
            outcome.undelivered
        );
        outcome
            .into_results()
            // kpm::allow(no_panic): World::run is the documented panicking
            // compatibility wrapper; fault-tolerant callers use run_config.
            .expect("rank thread must not panic in World::run")
    }

    /// Runs a configured world. Rank closures return `Result`; a rank
    /// that panics is reported as `Err(KpmError::RankCrashed)` instead
    /// of poisoning the whole world. Delay-injection timers are joined
    /// before returning, and the leak ledger is settled into
    /// [`WorldOutcome::undelivered`].
    pub fn run_config<T, F>(config: WorldConfig, f: F) -> WorldOutcome<T>
    where
        T: Send,
        F: Fn(Communicator) -> Result<T, KpmError> + Send + Sync,
    {
        let size = config.size;
        assert!(size >= 1, "need at least one rank");
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(Barrier::new(size));
        let shared = Arc::new(WorldShared {
            ledger: Ledger::default(),
            timers: Mutex::new(Vec::new()),
            faults: config.fault_plan.clone(),
            telemetry: Mutex::new(Vec::new()),
        });
        let mut comms: Vec<Communicator> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| Communicator {
                rank,
                size,
                senders: senders.clone(),
                inbox,
                stash: Vec::new(),
                stash_capacity: config.stash_capacity,
                seen: vec![HashSet::new(); size],
                next_seq: vec![0; size],
                crashed: false,
                backoff_state: (rank as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                default_timeout: config.default_recv_timeout,
                barrier: Arc::clone(&barrier),
                shared: Arc::clone(&shared),
                tele: RankTelemetry::default(),
            })
            .collect();
        drop(senders);

        let results: Vec<Result<T, KpmError>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for comm in comms.drain(..) {
                let fref = &f;
                let rank = comm.rank;
                let builder = std::thread::Builder::new().name(format!("kpm-rank-{rank}"));
                handles.push((rank, builder.spawn_scoped(scope, move || fref(comm))));
            }
            handles
                .into_iter()
                .map(|(rank, h)| match h {
                    Ok(h) => match h.join() {
                        Ok(result) => result,
                        Err(_) => Err(KpmError::RankCrashed { rank }),
                    },
                    // The OS refused the thread; report the rank as
                    // crashed instead of tearing down the world (its
                    // Communicator was dropped, so peers see a closed
                    // inbox, exactly as after a real crash).
                    Err(_) => Err(KpmError::RankCrashed { rank }),
                })
                .collect()
        });

        // Let every in-flight delayed message land or expire before
        // settling the ledger.
        let timers = std::mem::take(&mut *shared.timers.lock().unwrap_or_else(|e| e.into_inner()));
        for t in timers {
            let _ = t.join();
        }
        let sent = shared.ledger.sent.load(Ordering::Relaxed);
        let consumed = shared.ledger.consumed.load(Ordering::Relaxed);
        let expired = shared.ledger.expired.load(Ordering::Relaxed);
        let mut telemetry =
            std::mem::take(&mut *shared.telemetry.lock().unwrap_or_else(|e| e.into_inner()));
        telemetry.sort_by_key(|t| t.rank);
        WorldOutcome {
            results,
            undelivered: sent.saturating_sub(consumed + expired),
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex64 {
        Complex64::real(re)
    }

    #[test]
    fn ranks_are_distinct_and_sized() {
        let got = World::run(4, |comm| (comm.rank(), comm.size()));
        assert_eq!(got, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn ring_send_recv() {
        let got = World::run(3, |mut comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, vec![c(comm.rank() as f64)])
                .expect("ring send");
            comm.recv(prev, 7).expect("ring recv")[0].re
        });
        assert_eq!(got, vec![2.0, 0.0, 1.0]);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let got = World::run(2, |mut comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1.
                comm.send(1, 2, vec![c(20.0)]).unwrap();
                comm.send(1, 1, vec![c(10.0)]).unwrap();
                0.0
            } else {
                // Receive in the opposite order.
                let a = comm.recv(0, 1).unwrap()[0].re;
                let b = comm.recv(0, 2).unwrap()[0].re;
                a + b
            }
        });
        assert_eq!(got[1], 30.0);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let got = World::run(5, |mut comm| {
            let local = vec![c(comm.rank() as f64), c(1.0)];
            let sum = comm.allreduce_sum(&local).expect("allreduce");
            (sum[0].re, sum[1].re)
        });
        for (a, b) in got {
            assert_eq!(a, 10.0); // 0+1+2+3+4
            assert_eq!(b, 5.0);
        }
    }

    #[test]
    fn allreduce_scalar_deterministic() {
        let a = World::run(7, |mut comm| {
            comm.allreduce_scalar(Complex64::new(0.1 * comm.rank() as f64, -1.0))
                .expect("allreduce")
        });
        let b = World::run(7, |mut comm| {
            comm.allreduce_scalar(Complex64::new(0.1 * comm.rank() as f64, -1.0))
                .expect("allreduce")
        });
        assert_eq!(a, b);
        assert!((a[0].im + 7.0).abs() < 1e-12);
    }

    #[test]
    fn barrier_does_not_deadlock() {
        let got = World::run(4, |comm| {
            for _ in 0..10 {
                comm.barrier();
            }
            comm.rank()
        });
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn single_rank_world() {
        let got = World::run(1, |mut comm| comm.allreduce_scalar(c(42.0)).unwrap().re);
        assert_eq!(got, vec![42.0]);
    }

    #[test]
    fn backoff_jitter_varies_but_stays_deterministic() {
        let base = Duration::from_micros(800);
        let mut state = 0xdead_beef_u64;
        let slices: Vec<Duration> = (0..16)
            .map(|_| jittered_backoff(base, &mut state))
            .collect();
        // Every slice stays inside the documented [0.5, 1.5) band.
        for s in &slices {
            assert!(
                *s >= base / 2 && *s < base * 3 / 2,
                "jitter out of band: {s:?}"
            );
        }
        // Successive slices are not identical: the stream really varies.
        assert!(
            slices.windows(2).any(|w| w[0] != w[1]),
            "jitter produced a constant schedule"
        );
        // Same seed, same schedule: per-rank determinism.
        let mut state2 = 0xdead_beef_u64;
        let again: Vec<Duration> = (0..16)
            .map(|_| jittered_backoff(base, &mut state2))
            .collect();
        assert_eq!(slices, again);
        // A different seed decorrelates the schedule.
        let mut state3 = 0x1234_5678_u64;
        let other: Vec<Duration> = (0..16)
            .map(|_| jittered_backoff(base, &mut state3))
            .collect();
        assert_ne!(slices, other);
    }

    #[test]
    fn recv_timeout_expires_on_silent_peer() {
        let deadline = Duration::from_millis(50);
        let outcome = World::run_config(WorldConfig::new(2), |mut comm| {
            if comm.rank() == 1 {
                // Rank 0 never sends: the deadline must fire, promptly.
                let t0 = Instant::now();
                let err = comm
                    .recv_timeout(0, 9, deadline)
                    .expect_err("no message was ever sent");
                let elapsed = t0.elapsed();
                assert!(
                    matches!(err, KpmError::RankUnreachable { peer: 0, .. }),
                    "unexpected error {err:?}"
                );
                assert!(elapsed >= deadline, "returned before the deadline");
                assert!(
                    elapsed < deadline * 20,
                    "took {elapsed:?}, deadline {deadline:?}"
                );
            }
            Ok(())
        });
        assert!(outcome.all_ok());
        assert_eq!(outcome.undelivered, 0);
    }

    #[test]
    fn send_to_terminated_rank_errors() {
        let outcome = World::run_config(WorldConfig::new(2), |mut comm| {
            if comm.rank() == 0 {
                // Rank 1 exits immediately; once its inbox is gone our
                // send must fail rather than panic. Retry until the
                // drop is observed.
                let t0 = Instant::now();
                loop {
                    match comm.send(1, 1, vec![c(1.0)]) {
                        Err(KpmError::SendFailed { from: 0, to: 1, .. }) => break,
                        Err(e) => panic!("unexpected error {e:?}"),
                        Ok(()) => std::thread::sleep(Duration::from_millis(1)),
                    }
                    assert!(t0.elapsed() < Duration::from_secs(5), "send never failed");
                }
            }
            Ok(())
        });
        // Rank 1 never consumed what rank 0 managed to enqueue.
        assert!(outcome.all_ok());
    }

    #[test]
    fn stash_overflow_surfaces_as_error() {
        let cfg = WorldConfig::new(2).with_stash_capacity(4);
        let outcome = World::run_config(cfg, |mut comm| {
            if comm.rank() == 0 {
                for tag in 0..8 {
                    comm.send(1, tag, vec![c(tag as f64)])?;
                }
                // Tell rank 1 everything is enqueued.
                comm.send(1, 99, vec![c(0.0)])?;
                Ok(())
            } else {
                // Wait for a tag that sorts after 5 unmatched ones.
                match comm.recv_timeout(0, 7, Duration::from_secs(5)) {
                    Err(KpmError::StashOverflow {
                        rank: 1,
                        capacity: 4,
                    }) => Ok(()),
                    other => panic!("expected stash overflow, got {other:?}"),
                }
            }
        });
        assert!(outcome.all_ok());
    }

    #[test]
    fn duplicated_and_delayed_messages_deliver_exactly_once() {
        use crate::fault::FaultPlan;
        let plan = Arc::new(
            FaultPlan::new(11)
                .with_message_duplication(0.8)
                .with_message_delays(0.5, Duration::from_millis(5)),
        );
        let cfg = WorldConfig::new(3).with_faults(Arc::clone(&plan));
        let outcome = World::run_config(cfg, |mut comm| {
            let mut total = 0.0;
            for round in 0..20u64 {
                for peer in 0..comm.size() {
                    if peer != comm.rank() {
                        comm.send(
                            peer,
                            round,
                            vec![c((comm.rank() * 100 + round as usize) as f64)],
                        )?;
                    }
                }
                for peer in 0..comm.size() {
                    if peer != comm.rank() {
                        let got = comm.recv_timeout(peer, round, Duration::from_secs(5))?;
                        total += got[0].re;
                    }
                }
            }
            Ok(total)
        });
        let stats = plan.stats();
        assert!(stats.duplicated > 0, "plan never duplicated");
        assert!(stats.delayed > 0, "plan never delayed");
        assert_eq!(outcome.undelivered, 0, "exactly-once delivery leaked");
        // Every rank saw each peer message exactly once (rank 0 checked).
        let expect: f64 = (0..20u64)
            .map(|round| {
                (1..3)
                    .map(|p| (p * 100 + round as usize) as f64)
                    .sum::<f64>()
            })
            .sum();
        let results = outcome.into_results().expect("all ranks ok");
        assert_eq!(results[0], expect);
    }

    #[test]
    fn dropped_message_is_detected_by_deadline_not_hang() {
        use crate::fault::FaultPlan;
        let plan = Arc::new(FaultPlan::new(5).with_message_drops(1.0));
        let cfg = WorldConfig::new(2).with_faults(plan);
        let outcome = World::run_config(cfg, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![c(1.0)])?; // dropped on the wire
                Ok(0.0)
            } else {
                match comm.recv_timeout(0, 0, Duration::from_millis(40)) {
                    Err(KpmError::RankUnreachable { peer: 0, .. }) => Ok(1.0),
                    other => panic!("expected timeout, got {other:?}"),
                }
            }
        });
        assert!(outcome.all_ok());
        assert_eq!(outcome.undelivered, 0, "dropped messages are not leaks");
    }

    #[test]
    fn crash_point_kills_rank_and_peers_observe_it() {
        use crate::fault::FaultPlan;
        let plan = Arc::new(FaultPlan::new(1).with_rank_crash(1, 3));
        let cfg = WorldConfig::new(2).with_faults(plan);
        let outcome = World::run_config(cfg, |mut comm| {
            for iter in 0..10usize {
                comm.crash_point(iter)?;
                if comm.rank() == 0 {
                    match comm.recv_timeout(1, iter as u64, Duration::from_millis(200)) {
                        Ok(_) => {}
                        Err(KpmError::RankUnreachable { peer: 1, .. }) => {
                            return Ok(iter as f64); // detected the death
                        }
                        Err(e) => return Err(e),
                    }
                } else {
                    comm.send(0, iter as u64, vec![c(iter as f64)])?;
                }
            }
            Ok(f64::NAN)
        });
        assert!(
            matches!(outcome.results[1], Err(KpmError::RankCrashed { rank: 1 })),
            "rank 1 should have crashed: {:?}",
            outcome.results[1]
        );
        match &outcome.results[0] {
            Ok(iter) => assert!(*iter >= 3.0, "detected too early: {iter}"),
            other => panic!("rank 0 should detect the crash, got {other:?}"),
        }
    }

    #[test]
    fn world_leak_ledger_flags_unconsumed_messages() {
        let outcome = World::run_config(WorldConfig::new(2), |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 77, vec![c(1.0)])?; // never received
            }
            Ok(())
        });
        assert!(outcome.all_ok());
        assert_eq!(outcome.undelivered, 1, "leak went undetected");
    }
}
