//! Weighted 1-D row-block decomposition and halo communication plans.
//!
//! The paper distributes matrix and vector rows across processes
//! proportionally to a per-process *weight* — the mechanism that load
//! balances heterogeneous devices (Section VI-A: "From this weight we
//! compute the amount of matrix/vector rows that get assigned to it").
//! The halo plan is derived from the matrix sparsity pattern: a rank
//! must receive exactly the off-range rows its column indices touch.

use kpm_num::KpmError;
use kpm_sparse::{CrsMatrix, FormatSpec, KpmMatrix, SparseKernels};

/// Splits `n` rows into contiguous ranges proportional to `weights`,
/// aligned down to multiples of `align` (4 keeps the orbital blocks of
/// one lattice site on one rank).
pub fn partition_rows(n: usize, weights: &[f64], align: usize) -> Vec<(usize, usize)> {
    assert!(!weights.is_empty(), "need at least one weight");
    assert!(align >= 1, "alignment must be positive");
    assert!(weights.iter().all(|w| *w > 0.0), "weights must be positive");
    let total: f64 = weights.iter().sum();
    let mut ranges = Vec::with_capacity(weights.len());
    let mut begin = 0usize;
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w;
        let mut end = ((n as f64) * acc / total).round() as usize;
        end -= end % align;
        if i == weights.len() - 1 {
            end = n;
        }
        let end = end.max(begin);
        ranges.push((begin, end));
        begin = end;
    }
    ranges
}

/// The local view of one rank under row distribution.
#[derive(Debug, Clone)]
pub struct LocalProblem {
    /// This rank.
    pub rank: usize,
    /// Global row range `[row_begin, row_end)`.
    pub row_begin: usize,
    /// End of the global row range.
    pub row_end: usize,
    /// The local matrix: `n_local` rows over the remapped column space
    /// `local rows ++ halo rows` (halo sorted by global index). Stored
    /// behind the format-erased handle so each rank can run CRS or
    /// SELL-C-σ local kernels (heterogeneous ranks pick their own
    /// format in the paper's CPU+GPU setting).
    pub matrix: KpmMatrix,
    /// Receive plan: for each peer rank, the *global* rows to receive,
    /// in the order they occupy the halo slots.
    pub recv_plan: Vec<(usize, Vec<u32>)>,
    /// Send plan: for each peer rank, the *local* row offsets to gather
    /// and ship.
    pub send_plan: Vec<(usize, Vec<u32>)>,
}

impl LocalProblem {
    /// Number of owned rows.
    pub fn n_local(&self) -> usize {
        self.row_end - self.row_begin
    }

    /// Number of halo slots.
    pub fn n_halo(&self) -> usize {
        self.matrix.ncols() - self.n_local()
    }

    /// Bytes exchanged (sent) per blocked sweep at block width `r`.
    pub fn send_bytes_per_sweep(&self, r: usize) -> u64 {
        self.send_plan
            .iter()
            .map(|(_, rows)| (rows.len() * r * 16) as u64)
            .sum()
    }
}

/// Builds every rank's [`LocalProblem`] from the global matrix and the
/// row ranges of [`partition_rows`], storing the local blocks as CRS.
pub fn decompose(h: &CrsMatrix, ranges: &[(usize, usize)]) -> Vec<LocalProblem> {
    // kpm::allow(no_panic): the CRS spec has no invalid geometry, so the
    // formatted decomposition cannot fail.
    decompose_formatted(h, ranges, &FormatSpec::Crs).expect("CRS decomposition is infallible")
}

/// [`decompose`] with an explicit storage format for the local matrices.
///
/// Every rank's remapped row block is assembled in CRS and then
/// converted through [`KpmMatrix::try_with_format`]; the conversion
/// fails only when `spec` itself is invalid (e.g. a SELL `σ` that is
/// neither 1 nor a multiple of `C`).
pub fn decompose_formatted(
    h: &CrsMatrix,
    ranges: &[(usize, usize)],
    spec: &FormatSpec,
) -> Result<Vec<LocalProblem>, KpmError> {
    assert_eq!(
        h.nrows(),
        h.ncols(),
        "decomposition expects a square matrix"
    );
    assert_eq!(
        ranges.last().map(|r| r.1),
        Some(h.nrows()),
        "ranges must cover all rows"
    );
    let owner_of = |row: usize| -> usize {
        ranges
            .iter()
            .position(|&(b, e)| row >= b && row < e)
            // kpm::allow(no_panic): coverage is asserted on entry; ranges come
            // from partition_rows, which tiles 0..nrows contiguously.
            .expect("row covered by some range")
    };

    // Pass 1: per-rank halo lists (global rows, sorted), grouped by owner.
    let mut halos: Vec<Vec<u32>> = Vec::with_capacity(ranges.len());
    for &(b, e) in ranges {
        halos.push(h.halo_columns(b, e));
    }

    // Pass 2: build local problems.
    let mut problems: Vec<LocalProblem> = Vec::with_capacity(ranges.len());
    for (rank, &(b, e)) in ranges.iter().enumerate() {
        let halo = &halos[rank];
        let n_local = e - b;

        // Column remap: global -> local.
        let remap = |gcol: u32| -> u32 {
            let g = gcol as usize;
            if g >= b && g < e {
                (g - b) as u32
            } else {
                // kpm::allow(no_panic): halo_columns(b, e) returns exactly the
                // sorted non-local columns of rows b..e, so every non-local
                // column in this row block is present by construction.
                let idx = halo.binary_search(&gcol).expect("halo contains column");
                (n_local + idx) as u32
            }
        };

        // Remapped local matrix. Row entries stay sorted under the
        // remap only if halo slots happen to sort after local ones, so
        // rebuild each row sorted.
        let block = h.row_block(b, e);
        let mut row_ptr = Vec::with_capacity(n_local + 1);
        let mut cols = Vec::with_capacity(block.nnz());
        let mut vals = Vec::with_capacity(block.nnz());
        row_ptr.push(0u64);
        let mut entries: Vec<(u32, kpm_num::Complex64)> = Vec::new();
        for r in 0..n_local {
            entries.clear();
            for (k, &c) in block.row_cols(r).iter().enumerate() {
                entries.push((remap(c), block.row_vals(r)[k]));
            }
            entries.sort_unstable_by_key(|x| x.0);
            for &(c, v) in &entries {
                cols.push(c);
                vals.push(v);
            }
            row_ptr.push(cols.len() as u64);
        }
        let matrix = CrsMatrix::from_raw(n_local, n_local + halo.len(), row_ptr, cols, vals);
        let matrix = KpmMatrix::try_with_format(matrix, spec)?;

        // Receive plan: halo rows grouped by owner, preserving sorted
        // order (which is also halo-slot order).
        let mut recv_plan: Vec<(usize, Vec<u32>)> = Vec::new();
        for &grow in halo {
            let owner = owner_of(grow as usize);
            debug_assert_ne!(owner, rank, "halo row owned by self");
            match recv_plan.iter_mut().find(|(o, _)| *o == owner) {
                Some((_, rows)) => rows.push(grow),
                None => recv_plan.push((owner, vec![grow])),
            }
        }

        problems.push(LocalProblem {
            rank,
            row_begin: b,
            row_end: e,
            matrix,
            recv_plan,
            send_plan: Vec::new(), // filled below
        });
    }

    // Pass 3: invert receive plans into send plans.
    for receiver in 0..problems.len() {
        let plan = problems[receiver].recv_plan.clone();
        for (owner, rows) in plan {
            let local_rows: Vec<u32> = rows
                .iter()
                .map(|&g| (g as usize - problems[owner].row_begin) as u32)
                .collect();
            problems[owner].send_plan.push((receiver, local_rows));
        }
    }
    Ok(problems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_topo::TopoHamiltonian;

    #[test]
    fn equal_weights_split_evenly() {
        let ranges = partition_rows(100, &[1.0, 1.0], 4);
        assert_eq!(ranges, vec![(0, 48), (48, 100)]);
        let ranges = partition_rows(96, &[1.0, 1.0, 1.0], 4);
        assert_eq!(ranges, vec![(0, 32), (32, 64), (64, 96)]);
    }

    #[test]
    fn weighted_split_is_proportional() {
        // Paper usage: GPU ~2x CPU weight.
        let ranges = partition_rows(3000, &[1.0, 2.0], 4);
        let cpu = ranges[0].1 - ranges[0].0;
        let gpu = ranges[1].1 - ranges[1].0;
        assert!((gpu as f64 / cpu as f64 - 2.0).abs() < 0.05);
        assert_eq!(ranges[1].1, 3000);
    }

    #[test]
    fn ranges_are_contiguous_and_aligned() {
        let ranges = partition_rows(1001, &[0.3, 0.5, 0.2], 4);
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges.last().unwrap().1, 1001);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        for &(b, _) in &ranges {
            assert_eq!(b % 4, 0);
        }
    }

    #[test]
    fn decompose_covers_matrix_and_remaps_consistently() {
        let h = TopoHamiltonian::clean(4, 4, 4).assemble();
        let ranges = partition_rows(h.nrows(), &[1.0, 1.5, 0.8], 4);
        let parts = decompose(&h, &ranges);
        assert_eq!(parts.len(), 3);
        let total_local: usize = parts.iter().map(|p| p.n_local()).sum();
        assert_eq!(total_local, h.nrows());
        let total_nnz: usize = parts.iter().map(|p| p.matrix.nnz()).sum();
        assert_eq!(total_nnz, h.nnz());
        for p in &parts {
            // Every local matrix value equals the corresponding global
            // entry under the inverse remap.
            let local = p.matrix.as_crs().expect("decompose stores CRS locals");
            let halo = h.halo_columns(p.row_begin, p.row_end);
            for r in 0..p.n_local() {
                for (k, &c) in local.row_cols(r).iter().enumerate() {
                    let gcol = if (c as usize) < p.n_local() {
                        p.row_begin + c as usize
                    } else {
                        halo[c as usize - p.n_local()] as usize
                    };
                    assert_eq!(
                        local.row_vals(r)[k],
                        h.get(p.row_begin + r, gcol),
                        "rank {} row {r} col {c}",
                        p.rank
                    );
                }
            }
        }
    }

    #[test]
    fn send_and_recv_plans_are_inverse() {
        let h = TopoHamiltonian::clean(6, 4, 2).assemble();
        let ranges = partition_rows(h.nrows(), &[1.0, 1.0, 1.0, 1.0], 4);
        let parts = decompose(&h, &ranges);
        for p in &parts {
            for (owner, rows) in &p.recv_plan {
                // The owner's send plan to `p.rank` lists the same rows
                // in local coordinates.
                let send = parts[*owner]
                    .send_plan
                    .iter()
                    .find(|(dst, _)| *dst == p.rank)
                    .expect("matching send plan");
                let global_sent: Vec<u32> = send
                    .1
                    .iter()
                    .map(|&l| (parts[*owner].row_begin + l as usize) as u32)
                    .collect();
                assert_eq!(&global_sent, rows);
            }
        }
    }

    #[test]
    fn halo_is_empty_for_single_rank() {
        let h = TopoHamiltonian::clean(3, 3, 2).assemble();
        let parts = decompose(&h, &[(0, h.nrows())]);
        assert_eq!(parts[0].n_halo(), 0);
        assert!(parts[0].send_plan.is_empty());
        assert_eq!(parts[0].send_bytes_per_sweep(32), 0);
    }

    #[test]
    fn send_bytes_accounting() {
        let h = TopoHamiltonian::clean(4, 4, 4).assemble();
        let ranges = partition_rows(h.nrows(), &[1.0, 1.0], 4);
        let parts = decompose(&h, &ranges);
        let r = 8;
        for p in &parts {
            let expect: usize = p.send_plan.iter().map(|(_, rows)| rows.len()).sum();
            assert_eq!(p.send_bytes_per_sweep(r), (expect * r * 16) as u64);
            assert!(p.send_bytes_per_sweep(r) > 0);
        }
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_rejected() {
        partition_rows(10, &[1.0, 0.0], 1);
    }

    #[test]
    fn formatted_decomposition_builds_sell_locals() {
        let h = TopoHamiltonian::clean(4, 4, 4).assemble();
        let ranges = partition_rows(h.nrows(), &[1.0, 1.0], 4);
        let spec = FormatSpec::Sell {
            chunk_height: 8,
            sigma: 16,
        };
        let parts = decompose_formatted(&h, &ranges, &spec).unwrap();
        let total_nnz: usize = parts.iter().map(|p| p.matrix.nnz()).sum();
        assert_eq!(total_nnz, h.nnz());
        for p in &parts {
            let sell = p.matrix.as_sell().expect("formatted locals are SELL");
            assert_eq!(sell.chunk_height(), 8);
            assert_eq!(sell.sigma(), 16);
            assert!(p.matrix.stored_elements() >= p.matrix.nnz());
        }
    }

    #[test]
    fn formatted_decomposition_rejects_invalid_sigma() {
        let h = TopoHamiltonian::clean(3, 3, 2).assemble();
        let ranges = partition_rows(h.nrows(), &[1.0], 4);
        let spec = FormatSpec::Sell {
            chunk_height: 4,
            sigma: 6,
        };
        assert!(decompose_formatted(&h, &ranges, &spec).is_err());
    }
}
