//! Offline stand-in for the slice of the `proptest` API this workspace
//! uses: the `proptest!` macro with `#![proptest_config(...)]`, range
//! and tuple strategies, `any::<T>()`, `prop_map`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! The runner is deliberately simple: each test executes a fixed number
//! of cases with inputs drawn from a deterministic per-test stream
//! (FNV-hash of the test name mixed with the case index), reports the
//! first failing case with its number, and treats `prop_assume!`
//! rejections as skipped cases. No shrinking — the deterministic stream
//! means a failure reproduces exactly under `cargo test`.

use std::ops::{Range, RangeInclusive};

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case.
    Reject(String),
    /// An assertion failed — the property is violated.
    Fail(String),
}

/// Deterministic per-test random stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derived strategy applying `f` to every generated value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty strategy range");
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a whole-domain default strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for `T` — mirrors `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rejected: u32 = 0;
                for case in 0..config.cases {
                    let mut proptest_rng =
                        $crate::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg =
                            $crate::Strategy::generate(&($strat), &mut proptest_rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => rejected += 1,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property '{}' failed at case {case}: {msg}", stringify!($name));
                        }
                    }
                }
                assert!(
                    rejected < config.cases,
                    "property '{}' rejected every case",
                    stringify!($name)
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Mirrors `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(n in 4usize..=40, x in -2.0f64..2.0, s in any::<u64>()) {
            prop_assert!((4..=40).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            let _ = s;
        }

        #[test]
        fn tuples_and_map_compose(v in (1usize..=8, any::<u64>()).prop_map(|(n, s)| vec![s; n])) {
            prop_assert!(!v.is_empty() && v.len() <= 8);
            prop_assert_eq!(v[0], v[v.len() - 1]);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
