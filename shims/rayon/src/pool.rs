//! The work-stealing execution engine behind the `par_*` surface.
//!
//! One [`Registry`] owns a set of OS worker threads, one chunk deque per
//! worker plus a global injector. A parallel job ([`Registry::run`])
//! enters as a single index range `[0, len)`; whichever worker picks it
//! up splits it lazily (halving until the piece is at or below the
//! batch grain) and pushes the upper halves onto its own deque, where
//! idle workers steal them from the cold end. The calling thread blocks
//! until every index has been executed, so range bodies may borrow the
//! caller's stack freely.
//!
//! Determinism note: the *execution* split (which thread runs which
//! range, and where ranges are cut) is scheduling-dependent, and the
//! iterator layer above never lets it affect results — ordered
//! reductions are keyed by range start and re-assembled in index order,
//! and the KPM kernels put their floating-point partial sums on fixed
//! chunk boundaries chosen by the *caller*, not by this pool.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// The lifetime-erased range body of one parallel job.
type Body = dyn Fn(usize, usize) + Sync;

thread_local! {
    /// True on pool worker threads: nested `run` calls execute inline
    /// instead of re-entering the (blocked) pool.
    static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Stack of registries pushed by `ThreadPool::install`.
    static INSTALLED: std::cell::RefCell<Vec<Arc<Registry>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// One parallel job: the range body plus completion/panic state.
struct Batch {
    /// The range body. The `'static` lifetime is a lie told through
    /// `transmute`; see the SAFETY argument in [`Registry::run`].
    body: &'static Body,
    /// Ranges at or below this length execute without further splits.
    grain: usize,
    /// Indices not yet executed; the batch is complete at zero.
    pending: AtomicUsize,
    /// Set when any range body panicked.
    panicked: AtomicBool,
    /// First captured panic payload, re-thrown on the calling thread.
    payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Completion flag + condvar the calling thread blocks on.
    done: Mutex<bool>,
    done_cv: Condvar,
}

/// A contiguous index range of one batch, queued for execution.
struct Chunk {
    batch: Arc<Batch>,
    lo: usize,
    hi: usize,
}

/// All queues, guarded by one mutex (splits are grain-coarse, so the
/// lock is taken a bounded number of times per job, not per item).
struct Queues {
    /// Per-worker deques: the owner pushes/pops at the back (LIFO,
    /// cache-warm), thieves steal from the front (FIFO, biggest pieces).
    locals: Vec<VecDeque<Chunk>>,
    /// Entry queue for new jobs from non-worker threads.
    injector: VecDeque<Chunk>,
    /// Owner-pinned chunks: worker `i` pops `pinned[i]` first and no
    /// other worker ever steals from it — the stable part→worker
    /// assignment behind [`Registry::run_pinned`] that the first-touch
    /// placement paths rely on.
    pinned: Vec<VecDeque<Chunk>>,
    shutdown: bool,
}

/// A set of worker threads plus their work queues.
pub(crate) struct Registry {
    threads: usize,
    queues: Mutex<Queues>,
    work_cv: Condvar,
}

impl Registry {
    /// Creates a registry with `threads` workers (0 means 1) and spawns
    /// the worker threads. With one thread no workers are spawned at
    /// all: `run` executes inline and semantics are exactly serial.
    pub(crate) fn new(threads: usize) -> (Arc<Registry>, Vec<JoinHandle<()>>) {
        let n = threads.max(1);
        let registry = Arc::new(Registry {
            threads: n,
            queues: Mutex::new(Queues {
                locals: (0..n).map(|_| VecDeque::new()).collect(),
                injector: VecDeque::new(),
                pinned: (0..n).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
        });
        let mut handles = Vec::new();
        if n > 1 {
            for id in 0..n {
                let r = Arc::clone(&registry);
                let handle = std::thread::Builder::new()
                    .name(format!("kpm-worker-{id}"))
                    .spawn(move || worker_loop(id, &r))
                    .expect("spawn pool worker");
                handles.push(handle);
            }
        }
        (registry, handles)
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.threads
    }

    /// Asks every worker to exit once the queues are empty.
    pub(crate) fn shutdown(&self) {
        self.queues.lock().expect("pool queues").shutdown = true;
        self.work_cv.notify_all();
    }

    /// Executes `body` over disjoint subranges covering `[0, len)`,
    /// in parallel when this registry has more than one thread, and
    /// blocks until all of `[0, len)` has run. Panics from range bodies
    /// propagate to the caller.
    pub(crate) fn run(self: &Arc<Self>, len: usize, body: &(dyn Fn(usize, usize) + Sync)) {
        if len == 0 {
            return;
        }
        if self.threads <= 1 || len == 1 || IS_WORKER.with(|w| w.get()) {
            // Serial registry, trivial job, or nested parallelism from
            // inside a worker (the outer job already owns the pool):
            // execute inline on the current thread.
            body(0, len);
            return;
        }
        // SAFETY: `Batch` (and thus the erased reference) never outlives
        // this call: every queued `Chunk` holds the only other `Arc`s to
        // the batch, `pending` reaches zero exactly when all chunks have
        // been popped and executed, and we block on `done` below until
        // then — so no worker can touch `body` after `run` returns.
        let body: &'static Body =
            unsafe { std::mem::transmute::<&(dyn Fn(usize, usize) + Sync), &'static Body>(body) };
        let batch = Arc::new(Batch {
            body,
            grain: (len / (self.threads * 8)).max(1),
            pending: AtomicUsize::new(len),
            panicked: AtomicBool::new(false),
            payload: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let mut q = self.queues.lock().expect("pool queues");
            q.injector.push_back(Chunk {
                batch: Arc::clone(&batch),
                lo: 0,
                hi: len,
            });
        }
        self.work_cv.notify_all();
        wait_batch(&batch);
    }

    /// Executes `body(p)` for every part `p` in `[0, parts)` with the
    /// **stable assignment** part `p` → worker `p % threads`: each part
    /// is queued on its worker's pinned deque, which no other worker
    /// ever steals from. Blocks until every part has run; panics from
    /// part bodies propagate to the caller.
    ///
    /// This is the chunk→worker mapping surface the first-touch
    /// placement paths fault memory through: the same part index always
    /// reaches the same OS thread (serial registries and calls from
    /// inside a worker run all parts inline on the current thread).
    pub(crate) fn run_pinned(self: &Arc<Self>, parts: usize, body: &(dyn Fn(usize) + Sync)) {
        if parts == 0 {
            return;
        }
        if self.threads <= 1 || IS_WORKER.with(|w| w.get()) {
            for p in 0..parts {
                body(p);
            }
            return;
        }
        let range_body = |lo: usize, hi: usize| {
            for p in lo..hi {
                body(p);
            }
        };
        let range_body: &(dyn Fn(usize, usize) + Sync) = &range_body;
        // SAFETY: same argument as in `run`: `wait_batch` below blocks
        // until `pending` hits zero, i.e. until every queued chunk has
        // executed, so no worker touches the erased body (or the
        // `range_body` closure on this stack frame) after this call
        // returns.
        let body: &'static Body = unsafe {
            std::mem::transmute::<&(dyn Fn(usize, usize) + Sync), &'static Body>(range_body)
        };
        let batch = Arc::new(Batch {
            body,
            // Grain 1 + single-part chunks: `execute` never splits a
            // pinned chunk, so it runs exactly on its assigned worker.
            grain: 1,
            pending: AtomicUsize::new(parts),
            panicked: AtomicBool::new(false),
            payload: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let mut q = self.queues.lock().expect("pool queues");
            for p in 0..parts {
                q.pinned[p % self.threads].push_back(Chunk {
                    batch: Arc::clone(&batch),
                    lo: p,
                    hi: p + 1,
                });
            }
        }
        self.work_cv.notify_all();
        wait_batch(&batch);
    }

    /// Splits a chunk down to the batch grain (sharing the upper halves
    /// through worker `id`'s deque) and executes the remainder.
    fn execute(&self, id: usize, chunk: Chunk) {
        let Chunk { batch, lo, mut hi } = chunk;
        while hi - lo > batch.grain {
            let mid = lo + (hi - lo) / 2;
            {
                let mut q = self.queues.lock().expect("pool queues");
                q.locals[id].push_back(Chunk {
                    batch: Arc::clone(&batch),
                    lo: mid,
                    hi,
                });
            }
            self.work_cv.notify_one();
            hi = mid;
        }
        let executed = hi - lo;
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| (batch.body)(lo, hi))) {
            if !batch.panicked.swap(true, Ordering::SeqCst) {
                *batch.payload.lock().expect("panic payload") = Some(p);
            }
        }
        if batch.pending.fetch_sub(executed, Ordering::SeqCst) == executed {
            let mut done = batch.done.lock().expect("batch done flag");
            *done = true;
            batch.done_cv.notify_all();
        }
    }
}

/// Worker body: pop own deque from the back, then the injector, then
/// steal from the other workers' fronts; sleep on the condvar when the
/// whole registry is empty.
fn worker_loop(id: usize, registry: &Arc<Registry>) {
    IS_WORKER.with(|w| w.set(true));
    loop {
        let chunk = {
            let mut q = registry.queues.lock().expect("pool queues");
            loop {
                if let Some(c) = pop_any(&mut q, id) {
                    break c;
                }
                if q.shutdown {
                    return;
                }
                q = registry.work_cv.wait(q).expect("pool queues");
            }
        };
        registry.execute(id, chunk);
    }
}

/// Blocks until `batch` completes, then re-throws a captured panic on
/// the calling thread. Shared tail of [`Registry::run`] and
/// [`Registry::run_pinned`].
fn wait_batch(batch: &Batch) {
    let mut done = batch.done.lock().expect("batch done flag");
    while !*done {
        done = batch.done_cv.wait(done).expect("batch done flag");
    }
    drop(done);
    if batch.panicked.load(Ordering::SeqCst) {
        let payload = batch.payload.lock().expect("panic payload").take();
        match payload {
            Some(p) => resume_unwind(p),
            None => panic!("parallel job panicked"),
        }
    }
}

fn pop_any(q: &mut Queues, id: usize) -> Option<Chunk> {
    // Pinned chunks first: they are this worker's by assignment and
    // never offered to thieves.
    if let Some(c) = q.pinned[id].pop_front() {
        return Some(c);
    }
    if let Some(c) = q.locals[id].pop_back() {
        return Some(c);
    }
    if let Some(c) = q.injector.pop_front() {
        return Some(c);
    }
    let n = q.locals.len();
    for off in 1..n {
        let victim = (id + off) % n;
        if let Some(c) = q.locals[victim].pop_front() {
            return Some(c);
        }
    }
    None
}

/// RAII guard for `ThreadPool::install`: pushes a registry onto the
/// calling thread's stack, pops it on drop (also on unwind).
pub(crate) struct InstallGuard;

impl InstallGuard {
    pub(crate) fn push(registry: Arc<Registry>) -> InstallGuard {
        INSTALLED.with(|s| s.borrow_mut().push(registry));
        InstallGuard
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// The registry `par_*` calls on this thread execute on: the innermost
/// installed pool if any, else the process-global pool.
pub(crate) fn current_registry() -> Arc<Registry> {
    INSTALLED
        .with(|s| s.borrow().last().cloned())
        .unwrap_or_else(|| Arc::clone(global()))
}

/// The process-global registry, sized by `KPM_THREADS` when set (a
/// positive integer) and by `std::thread::available_parallelism`
/// otherwise. Its workers live for the whole process.
fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let threads = parse_threads(std::env::var("KPM_THREADS").ok().as_deref())
            .unwrap_or_else(default_threads);
        let (registry, handles) = Registry::new(threads);
        for h in handles {
            // Detach: the global pool is never shut down.
            drop(h);
        }
        registry
    })
}

/// Host parallelism fallback when `KPM_THREADS` is unset.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses a `KPM_THREADS`-style override; `None`/empty/zero/garbage all
/// mean "no override".
pub(crate) fn parse_threads(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// Runs `body` over `[0, len)` on the current registry (installed pool
/// or global); the iterator layer's single entry point.
pub(crate) fn run(len: usize, body: &(dyn Fn(usize, usize) + Sync)) {
    current_registry().run(len, body);
}

/// Runs `body(p)` for each part on the current registry with the
/// stable part→worker assignment (see [`Registry::run_pinned`]).
pub(crate) fn run_pinned(parts: usize, body: &(dyn Fn(usize) + Sync)) {
    current_registry().run_pinned(parts, body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn single_thread_registry_runs_inline() {
        let (registry, handles) = Registry::new(1);
        assert!(handles.is_empty());
        let caller = std::thread::current().id();
        let seen = Mutex::new(Vec::new());
        registry.run(10, &|lo, hi| {
            assert_eq!((lo, hi), (0, 10));
            seen.lock().unwrap().push(std::thread::current().id());
        });
        assert_eq!(seen.into_inner().unwrap(), vec![caller]);
    }

    #[test]
    fn run_pinned_covers_each_part_once() {
        let (registry, handles) = Registry::new(4);
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        registry.run_pinned(hits.len(), &|p| {
            hits[p].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        registry.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn run_pinned_assignment_is_stable() {
        // Pinned chunks are never stolen, so part p always executes on
        // worker p % threads: across parts and across repeated calls,
        // parts congruent mod the thread count see the same OS thread.
        let threads = 3;
        let (registry, handles) = Registry::new(threads);
        let parts = 12;
        let mut runs: Vec<Vec<std::thread::ThreadId>> = Vec::new();
        for _ in 0..3 {
            let ids = Mutex::new(vec![None; parts]);
            registry.run_pinned(parts, &|p| {
                ids.lock().unwrap()[p] = Some(std::thread::current().id());
            });
            let ids: Vec<_> = ids.into_inner().unwrap().into_iter().flatten().collect();
            assert_eq!(ids.len(), parts);
            for p in 0..parts {
                assert_eq!(ids[p], ids[p % threads], "part {p} migrated");
            }
            runs.push(ids);
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
        registry.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn run_pinned_serial_registry_runs_inline() {
        let (registry, handles) = Registry::new(1);
        assert!(handles.is_empty());
        let caller = std::thread::current().id();
        let seen = Mutex::new(Vec::new());
        registry.run_pinned(5, &|p| {
            assert!(p < 5);
            seen.lock().unwrap().push(std::thread::current().id());
        });
        assert_eq!(seen.into_inner().unwrap(), vec![caller; 5]);
    }

    #[test]
    fn run_pinned_propagates_panics() {
        let (registry, handles) = Registry::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            registry.run_pinned(8, &|p| {
                if p == 5 {
                    panic!("pinned boom {p}");
                }
            });
        }));
        let payload = result.expect_err("pinned panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("pinned boom 5"), "payload: {msg}");
        // The registry stays usable afterwards.
        let hits = AtomicUsize::new(0);
        registry.run_pinned(4, &|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        registry.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn ranges_cover_index_space_exactly_once() {
        let (registry, handles) = Registry::new(4);
        let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
        registry.run(hits.len(), &|lo, hi| {
            for h in &hits[lo..hi] {
                h.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        registry.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }
}
