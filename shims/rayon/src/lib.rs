//! Offline stand-in for the slice of the `rayon` API this workspace
//! uses. `par_iter`/`par_chunks`/… return the corresponding *standard*
//! iterators, so downstream combinator chains (`zip`, `enumerate`,
//! `map`, `for_each`, `sum`, `collect`) compile unchanged but execute
//! sequentially. Every `*_par` kernel in the workspace is validated
//! against its serial twin, so semantics are identical; only speed is
//! lost until a real work-stealing pool can be vendored.

/// Number of threads a real pool would use on this host.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error (shim; unreachable)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                current_num_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A "pool" that runs closures on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

pub mod prelude {
    //! Extension traits giving slices and `Vec`s the `par_*` methods.

    /// `par_iter`/`par_chunks` on shared slices.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut`/`par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    #[allow(clippy::useless_vec)] // exercising Vec receivers specifically
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let s: i32 = v.par_iter().sum();
        assert_eq!(s, 10);
    }

    #[test]
    fn par_chunks_mut_writes_through() {
        let mut v = vec![0u32; 8];
        v.par_chunks_mut(3)
            .enumerate()
            .for_each(|(i, c)| c.iter_mut().for_each(|x| *x = i as u32));
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn pool_installs_on_caller() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
        assert_eq!(pool.current_num_threads(), 4);
        assert!(super::current_num_threads() >= 1);
    }
}
