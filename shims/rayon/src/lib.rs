//! Offline stand-in for the slice of the `rayon` API this workspace
//! uses — now backed by a real `std::thread` work-stealing pool.
//!
//! `par_iter`/`par_chunks`/… return indexed parallel iterators whose
//! combinator chains (`zip`, `enumerate`, `map`, `for_each`, `sum`,
//! `collect`) compile unchanged against the old serial shim, but
//! execute on worker threads: the index space of each job is split
//! lazily into ranges, kept on per-worker deques, and stolen by idle
//! workers ([`pool`]). Thread count comes from, in order of precedence:
//! an installed [`ThreadPool`], the `KPM_THREADS` environment variable,
//! `std::thread::available_parallelism`.
//!
//! Ordered drivers (`collect`, `sum`) re-assemble range results in
//! index order, so collected values are independent of scheduling; the
//! KPM kernels build on that to keep their floating-point reductions
//! bitwise-identical across thread counts (see DESIGN.md §10).

mod iter;
pub mod pool;

pub use iter::{
    Enumerate, FromParallelIterator, IntoParallelIterator, Map, ParChunks, ParChunksMut, ParIter,
    ParIterMut, ParRange, ParallelIterator, Zip,
};

/// Number of threads `par_*` calls on this thread will use: the
/// innermost installed [`ThreadPool`]'s size, else the global pool's
/// (`KPM_THREADS` or host parallelism).
pub fn current_num_threads() -> usize {
    pool::current_registry().num_threads()
}

/// Runs `body(p)` for every part `p` in `[0, parts)` on the current
/// pool, with the **stable assignment** part `p` → worker
/// `p % threads`: pinned parts are never stolen, so the same part
/// index always executes on the same OS thread (serial pools and calls
/// from inside a worker run all parts inline). Blocks until every part
/// has run; panics propagate to the caller.
///
/// This is the deterministic chunk→worker mapping surface the
/// first-touch (NUMA) placement paths fault memory through. Not part
/// of the real `rayon` API.
pub fn run_pinned(parts: usize, body: impl Fn(usize) + Sync) {
    pool::run_pinned(parts, &body);
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error (shim; unreachable)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; 0 (the default) means `KPM_THREADS` or
    /// host parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            pool::parse_threads(std::env::var("KPM_THREADS").ok().as_deref())
                .unwrap_or_else(pool::default_threads)
        } else {
            self.num_threads
        };
        let (registry, workers) = pool::Registry::new(threads);
        Ok(ThreadPool { registry, workers })
    }
}

/// A pool of OS worker threads. `install` makes the pool current for
/// the duration of a closure; dropping the pool joins its workers.
pub struct ThreadPool {
    registry: std::sync::Arc<pool::Registry>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.registry.num_threads())
            .finish()
    }
}

impl ThreadPool {
    /// Runs `op` with this pool as the target of every nested `par_*`
    /// call (the closure itself runs on the calling thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let _guard = pool::InstallGuard::push(std::sync::Arc::clone(&self.registry));
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

pub mod prelude {
    //! Extension traits giving slices and `Vec`s the `par_*` methods,
    //! plus the parallel-iterator traits themselves.

    pub use crate::iter::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
    use crate::iter::{ParChunks, ParChunksMut, ParIter, ParIterMut};

    /// `par_iter`/`par_chunks` on shared slices.
    pub trait ParallelSlice<T: Sync> {
        fn par_iter(&self) -> ParIter<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<'_, T> {
            ParIter::new(self)
        }

        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
            ParChunks::new(self, chunk_size)
        }
    }

    /// `par_iter_mut`/`par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
            ParIterMut::new(self)
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            ParChunksMut::new(self, chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    #[allow(clippy::useless_vec)] // exercising Vec receivers specifically
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let s: i32 = v.par_iter().sum();
        assert_eq!(s, 10);
    }

    #[test]
    fn par_chunks_mut_writes_through() {
        let mut v = vec![0u32; 8];
        v.par_chunks_mut(3)
            .enumerate()
            .for_each(|(i, c)| c.iter_mut().for_each(|x| *x = i as u32));
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn pool_installs_on_caller() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
        assert_eq!(pool.current_num_threads(), 4);
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn work_runs_on_multiple_os_threads() {
        // Acceptance check for the work-stealing upgrade: a 4-thread
        // pool must execute ranges on at least two distinct OS threads.
        // One worker *could* race through everything, so items stall
        // briefly and the whole observation retries a few times.
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        for _ in 0..50 {
            pool.install(|| {
                (0..64).into_par_iter().for_each(|_| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(std::time::Duration::from_millis(1));
                });
            });
            if ids.lock().unwrap().len() >= 2 {
                break;
            }
        }
        let ids = ids.into_inner().unwrap();
        assert!(ids.len() >= 2, "expected >=2 worker threads, got {ids:?}");
        // Workers are pool threads, not the caller.
        assert!(!ids.contains(&std::thread::current().id()));
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let inner = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        outer.install(|| {
            assert_eq!(super::current_num_threads(), 2);
            inner.install(|| assert_eq!(super::current_num_threads(), 3));
            assert_eq!(super::current_num_threads(), 2);
        });
    }

    #[test]
    fn for_each_visits_every_element_once() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap();
        let hits: Vec<AtomicUsize> = (0..100_000).map(|_| AtomicUsize::new(0)).collect();
        pool.install(|| {
            hits.par_iter().for_each(|h| {
                h.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn collect_preserves_index_order() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let v: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = pool.install(|| v.par_iter().map(|&x| 2 * x).collect());
        assert_eq!(doubled.len(), v.len());
        assert!(doubled.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn collect_into_result_reports_first_error_in_order() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let got: Result<Vec<usize>, usize> = pool.install(|| {
            (0..1000)
                .into_par_iter()
                .map(|i| if i % 300 == 299 { Err(i) } else { Ok(i) })
                .collect()
        });
        assert_eq!(got, Err(299));
        let ok: Result<Vec<usize>, usize> =
            pool.install(|| (0..100).into_par_iter().map(Ok).collect());
        assert_eq!(ok.unwrap().len(), 100);
    }

    #[test]
    fn zip_stops_at_shorter_side() {
        let a = [1u64, 2, 3, 4, 5];
        let b = [10u64, 20, 30];
        let s: u64 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
        assert_eq!(s, 10 + 40 + 90);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..1024).into_par_iter().for_each(|i| {
                    if i == 777 {
                        panic!("boom at {i}");
                    }
                });
            });
        }));
        let payload = result.expect_err("parallel panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 777"), "unexpected payload: {msg}");
        // The pool stays usable after a propagated panic.
        let s: usize = pool.install(|| (0..10).into_par_iter().sum());
        assert_eq!(s, 45);
    }

    #[test]
    fn nested_parallelism_runs_inline_on_workers() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        // Outer par over 4 items, each spawning an inner par job: the
        // inner jobs must not deadlock (workers execute them inline).
        let total = AtomicUsize::new(0);
        pool.install(|| {
            (0..4).into_par_iter().for_each(|_| {
                let inner: usize = (0..100).into_par_iter().sum();
                total.fetch_add(inner, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 4 * 4950);
    }
}
