//! Indexed parallel iterators over the work-stealing pool.
//!
//! Everything here is an *indexed source*: it knows its length and can
//! hand out an ordinary sequential iterator over any subrange of its
//! index space ([`ParallelIterator::range_seq`]). The pool splits the
//! index space into disjoint ranges; adapters (`map`, `zip`,
//! `enumerate`) compose at the range level; drivers (`for_each`, `sum`,
//! `collect`) execute the ranges on the pool.
//!
//! Ordered determinism: `collect` and `sum` tag every executed range
//! with its start index and re-assemble the pieces in index order, so
//! their results are identical to a serial run no matter how the pool
//! happened to split or steal. (Floating-point *reduction trees* in the
//! kernels additionally pin their partial-sum boundaries to fixed chunk
//! sizes via `par_chunks`, which this layer never re-cuts below the
//! chunk granularity.)

use std::marker::PhantomData;
use std::sync::Mutex;

use crate::pool;

/// An indexed parallel iterator: a length plus random access to
/// sequential iterators over subranges.
///
/// # Safety contract of `range_seq`
///
/// Implementations may hand out aliasing mutable access on the promise
/// that concurrent calls receive pairwise-disjoint, in-bounds ranges —
/// which is exactly what the pool guarantees. Only the drivers in this
/// module call `range_seq`.
pub trait ParallelIterator: Sized + Send + Sync {
    /// Element type produced for each index.
    type Item: Send;
    /// Sequential iterator over one index subrange.
    type Seq<'s>: Iterator<Item = Self::Item>
    where
        Self: 's;

    /// Number of indices in the source.
    fn par_len(&self) -> usize;

    /// Sequential iterator over indices `lo..hi`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee `lo <= hi <= self.par_len()` and that
    /// ranges passed to concurrent calls are pairwise disjoint; mutable
    /// sources rely on this for exclusive access.
    unsafe fn range_seq(&self, lo: usize, hi: usize) -> Self::Seq<'_>;

    /// Maps each element through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Pairs elements with a second source (length = the shorter one).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Pairs each element with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Consumes every element on the pool.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let source = &self;
        let f = &f;
        pool::run(source.par_len(), &|lo, hi| {
            // SAFETY: the pool hands out disjoint in-bounds ranges.
            for item in unsafe { source.range_seq(lo, hi) } {
                f(item);
            }
        });
    }

    /// Sums the elements. The pieces are re-assembled in index order
    /// and summed sequentially, so the result does not depend on the
    /// pool's split points or the thread count.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item>,
    {
        collect_vec(self).into_iter().sum()
    }

    /// Collects into any [`FromParallelIterator`] target, in index
    /// order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Conversion into a [`ParallelIterator`] (implemented for `Range<usize>`).
pub trait IntoParallelIterator {
    /// Element type of the resulting iterator.
    type Item: Send;
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds `Self` from the elements of `par`, in index order.
    fn from_par_iter<P>(par: P) -> Self
    where
        P: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P>(par: P) -> Vec<T>
    where
        P: ParallelIterator<Item = T>,
    {
        collect_vec(par)
    }
}

/// Short-circuit-style collection: the elements are gathered in index
/// order, then the *first* `Err` in that order wins — the same error a
/// serial run would report, independent of scheduling.
impl<C, T, E> FromParallelIterator<Result<T, E>> for Result<C, E>
where
    C: FromIterator<T>,
    T: Send,
    E: Send,
{
    fn from_par_iter<P>(par: P) -> Result<C, E>
    where
        P: ParallelIterator<Item = Result<T, E>>,
    {
        collect_vec(par).into_iter().collect()
    }
}

/// Runs `par` on the pool and returns all elements in index order.
fn collect_vec<P: ParallelIterator>(par: P) -> Vec<P::Item> {
    let len = par.par_len();
    let source = &par;
    // Executed ranges arrive in scheduling order; tagging each part with
    // its range start lets the final concatenation restore index order
    // exactly. (This mutex is per-range bookkeeping in the runtime, not
    // a lock inside the user's kernel closure.)
    let parts: Mutex<Vec<(usize, Vec<P::Item>)>> = Mutex::new(Vec::new());
    pool::run(len, &|lo, hi| {
        // SAFETY: the pool hands out disjoint in-bounds ranges.
        let items: Vec<P::Item> = unsafe { source.range_seq(lo, hi) }.collect();
        parts.lock().expect("collect parts").push((lo, items));
    });
    let mut parts = parts.into_inner().expect("collect parts");
    parts.sort_unstable_by_key(|&(lo, _)| lo);
    let mut out = Vec::with_capacity(len);
    for (_, mut part) in parts {
        out.append(&mut part);
    }
    out
}

/// Parallel iterator over `&[T]` (`par_iter`).
#[derive(Clone, Copy)]
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T> ParIter<'a, T> {
    pub(crate) fn new(slice: &'a [T]) -> Self {
        ParIter { slice }
    }
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
    type Seq<'s>
        = std::slice::Iter<'a, T>
    where
        Self: 's;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn range_seq(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
        self.slice[lo..hi].iter()
    }
}

/// Parallel iterator over fixed-size chunks of `&[T]` (`par_chunks`).
#[derive(Clone, Copy)]
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T> ParChunks<'a, T> {
    pub(crate) fn new(slice: &'a [T], size: usize) -> Self {
        assert!(size > 0, "par_chunks: chunk size must be positive");
        ParChunks { slice, size }
    }
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
    type Seq<'s>
        = std::slice::Chunks<'a, T>
    where
        Self: 's;

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    unsafe fn range_seq(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
        // Chunk indices map to element offsets that stay aligned to the
        // chunk size, so a plain sub-slice re-chunks identically.
        let start = lo * self.size;
        let end = (hi * self.size).min(self.slice.len());
        self.slice[start..end].chunks(self.size)
    }
}

/// Parallel iterator over `&mut [T]` (`par_iter_mut`).
pub struct ParIterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

impl<'a, T> ParIterMut<'a, T> {
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        ParIterMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }
}

// SAFETY: the raw pointer stands in for the exclusive borrow captured in
// `_marker`; disjoint subranges of an exclusive slice may move across /
// be shared between threads whenever `T: Send` (same rule as
// `&mut [T]: Send`). Shared access (`Sync`) only ever hands out
// *disjoint* subranges per the `range_seq` contract.
unsafe impl<T: Send> Send for ParIterMut<'_, T> {}
// SAFETY: see the `Send` impl above.
unsafe impl<T: Send> Sync for ParIterMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq<'s>
        = std::slice::IterMut<'a, T>
    where
        Self: 's;

    fn par_len(&self) -> usize {
        self.len
    }

    unsafe fn range_seq(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
        debug_assert!(lo <= hi && hi <= self.len);
        // SAFETY: in-bounds by the contract; exclusivity holds because
        // concurrent callers receive pairwise-disjoint ranges of the
        // exclusively-borrowed slice this was built from.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) }.iter_mut()
    }
}

/// Parallel iterator over fixed-size chunks of `&mut [T]`
/// (`par_chunks_mut`).
pub struct ParChunksMut<'a, T> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _marker: PhantomData<&'a mut [T]>,
}

impl<'a, T> ParChunksMut<'a, T> {
    pub(crate) fn new(slice: &'a mut [T], size: usize) -> Self {
        assert!(size > 0, "par_chunks_mut: chunk size must be positive");
        ParChunksMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            size,
            _marker: PhantomData,
        }
    }
}

// SAFETY: as for `ParIterMut` — disjoint chunk ranges of an exclusive
// slice; chunk index ranges map to disjoint element ranges.
unsafe impl<T: Send> Send for ParChunksMut<'_, T> {}
// SAFETY: see the `Send` impl above.
unsafe impl<T: Send> Sync for ParChunksMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq<'s>
        = std::slice::ChunksMut<'a, T>
    where
        Self: 's;

    fn par_len(&self) -> usize {
        self.len.div_ceil(self.size)
    }

    unsafe fn range_seq(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
        let start = lo * self.size;
        let end = (hi * self.size).min(self.len);
        debug_assert!(start <= end && end <= self.len);
        // SAFETY: chunk ranges `lo..hi` map to element ranges
        // `lo*size..hi*size` (clamped), which are disjoint whenever the
        // chunk ranges are — the `range_seq` contract.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }
            .chunks_mut(self.size)
    }
}

/// Parallel iterator over a `usize` range (`(a..b).into_par_iter()`).
#[derive(Clone, Copy)]
pub struct ParRange {
    start: usize,
    len: usize,
}

impl ParallelIterator for ParRange {
    type Item = usize;
    type Seq<'s>
        = std::ops::Range<usize>
    where
        Self: 's;

    fn par_len(&self) -> usize {
        self.len
    }

    unsafe fn range_seq(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
        (self.start + lo)..(self.start + hi)
    }
}

/// Adapter behind [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    type Seq<'s>
        = std::iter::Map<P::Seq<'s>, &'s F>
    where
        Self: 's;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    unsafe fn range_seq(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
        // SAFETY: contract forwarded unchanged to the base source.
        unsafe { self.base.range_seq(lo, hi) }.map(&self.f)
    }
}

/// Adapter behind [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type Seq<'s>
        = std::iter::Zip<A::Seq<'s>, B::Seq<'s>>
    where
        Self: 's;

    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }

    unsafe fn range_seq(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
        // SAFETY: `lo..hi` is in bounds for both sides (len = min) and
        // disjointness carries over per side.
        unsafe { self.a.range_seq(lo, hi).zip(self.b.range_seq(lo, hi)) }
    }
}

/// Adapter behind [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type Seq<'s>
        = std::iter::Zip<std::ops::Range<usize>, P::Seq<'s>>
    where
        Self: 's;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    unsafe fn range_seq(&self, lo: usize, hi: usize) -> Self::Seq<'_> {
        // Pairing with the absolute index range keeps enumeration
        // correct on any subrange.
        // SAFETY: contract forwarded unchanged to the base source.
        (lo..hi).zip(unsafe { self.base.range_seq(lo, hi) })
    }
}
