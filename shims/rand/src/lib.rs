//! Offline stand-in for the small slice of the `rand` crate API this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over primitive ranges.
//!
//! The container image has no crates.io access, so the workspace vendors
//! this shim as a path dependency. The generator is SplitMix64 — not the
//! ChaCha stream of the real `StdRng`, but every consumer in this
//! repository only relies on *seeded determinism* (same seed ⇒ same
//! stream), never on matching the upstream byte stream.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit output stream.
pub trait RngCore {
    /// Next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers (blanket-implemented for every
/// [`RngCore`], mirroring the upstream design).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Uniform sample of the whole type (only `f64` in `[0,1)` and
    /// integer types are supported).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Types samplable without an explicit range.
pub trait Standard: Sized {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty f64 sample range");
        // Inclusive upper end: scale by 2^53 buckets including the top.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty integer sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator standing in for the upstream `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    pub mod mock {
        use super::super::RngCore;

        /// Deterministic arithmetic-progression generator matching the
        /// upstream `rand::rngs::mock::StepRng` semantics: yields
        /// `initial`, `initial + increment`, ... with wrapping.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            next: u64,
            increment: u64,
        }

        impl StepRng {
            /// A generator starting at `initial`, stepping by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    next: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.next;
                self.next = self.next.wrapping_add(self.increment);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn f64_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&y));
        }
    }

    #[test]
    fn integer_ranges_cover_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn streams_differ_across_seeds() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }
}
