//! Offline stand-in for the slice of the `criterion` API this
//! workspace's benches use: `criterion_group!`/`criterion_main!`,
//! benchmark groups with throughput annotations, and `Bencher::iter`.
//!
//! Measurement is deliberately simple — per benchmark it runs a short
//! warm-up, then `sample_size` timed samples (each auto-batched to at
//! least ~1 ms) and reports the median time per iteration plus achieved
//! throughput. Good enough to rank kernels on one machine; not a
//! statistics engine.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration annotation used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier: function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", sample_size, None, id.into(), f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, self.sample_size, self.throughput, id.into(), f);
        self
    }

    pub fn finish(self) {}
}

/// Cargo runs `harness = false` bench targets during `cargo test` too;
/// real criterion then executes each routine exactly once. It passes
/// `--bench` only for `cargo bench`, which is when we actually measure.
fn measuring() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn run_one<F>(
    group: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    id: BenchmarkId,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        sample_size: if measuring() { sample_size } else { 0 },
        samples: Vec::new(),
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{group}/{}", id.id)
    };
    if b.samples.is_empty() {
        println!("bench {label}: no samples");
        return;
    }
    b.samples
        .sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let median = b.samples[b.samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => format!(", {:.3} GB/s", n as f64 / median / 1e9),
        Some(Throughput::Elements(n)) => format!(", {:.3} Melem/s", n as f64 / median / 1e6),
        None => String::new(),
    };
    println!("bench {label}: {:.3} us/iter{rate}", median * 1e6);
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Seconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, auto-batching so each sample spans >= ~1 ms.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.sample_size == 0 {
            // Smoke-test mode (`cargo test`): run once, no timing.
            black_box(routine());
            return;
        }
        // Warm-up and batch calibration.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64();
            self.samples.push(dt / batch as f64);
        }
    }
}

/// Mirrors `criterion::criterion_group!` (both the simple and the
/// `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(8));
        g.bench_function(BenchmarkId::new("noop", 1), |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = trivial
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
